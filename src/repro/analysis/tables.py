"""Tabular rendering of the paper's table-level experiment results.

Each ``tabulate_tableN`` function accepts the corresponding experiment
function's return value (see :mod:`repro.sim.experiments`) and reduces it
to the renderer-independent :class:`~repro.analysis.model.Table` with the
same rows/columns as the paper's table.  The historical ``format_tableN``
helpers render that model as fixed-width text (the benchmark harness's
``results/*.txt`` artifacts); the report subsystem renders the same model
as markdown and LaTeX.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.model import Table


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple fixed-width text table."""
    return Table.build(headers, rows, title=title).to_text()


def tabulate_table2(summary: dict) -> Table:
    """Table 2: max / gmean WS improvement over REFpb and REFab."""
    rows = []
    for density in sorted(summary):
        for mechanism in ("darp", "sarppb", "dsarp"):
            entry = summary[density][mechanism]
            rows.append(
                [
                    f"{density}Gb",
                    mechanism.upper(),
                    f"{entry['max_refpb']:.1f}",
                    f"{entry['max_refab']:.1f}",
                    f"{entry['gmean_refpb']:.1f}",
                    f"{entry['gmean_refab']:.1f}",
                ]
            )
    return Table.build(
        ["Density", "Mechanism", "Max% vs REFpb", "Max% vs REFab",
         "Gmean% vs REFpb", "Gmean% vs REFab"],
        rows,
        title="Table 2: WS improvement of DARP/SARPpb/DSARP",
    )


def format_table2(summary: dict) -> str:
    """Table 2: max / gmean WS improvement over REFpb and REFab."""
    return tabulate_table2(summary).to_text()


def tabulate_table3(result: dict) -> Table:
    """Table 3: DSARP effect on multi-core system metrics."""
    rows = []
    for cores in sorted(result):
        entry = result[cores]
        rows.append(
            [
                cores,
                f"{entry['weighted_speedup_improvement']:.1f}",
                f"{entry['harmonic_speedup_improvement']:.1f}",
                f"{entry['maximum_slowdown_reduction']:.1f}",
                f"{entry['energy_per_access_reduction']:.1f}",
            ]
        )
    return Table.build(
        ["Cores", "WS improv. (%)", "HS improv. (%)",
         "Max-slowdown red. (%)", "Energy/access red. (%)"],
        rows,
        title="Table 3: DSARP vs REFab across core counts",
    )


def format_table3(result: dict) -> str:
    """Table 3: DSARP effect on multi-core system metrics."""
    return tabulate_table3(result).to_text()


def tabulate_table4(result: dict) -> Table:
    """Table 4: SARPpb improvement over REFpb as tFAW/tRRD vary."""
    tfaws = sorted(result)
    rows = [
        ["tFAW/tRRD (cycles)"] + [f"{t}/{max(1, t // 5)}" for t in tfaws],
        ["WS improvement (%)"] + [f"{result[t]:.1f}" for t in tfaws],
    ]
    return Table.build(
        ["metric"] + [str(t) for t in tfaws],
        rows,
        title="Table 4: SARPpb over REFpb vs tFAW",
    )


def format_table4(result: dict) -> str:
    """Table 4: SARPpb improvement over REFpb as tFAW/tRRD vary."""
    return tabulate_table4(result).to_text()


def tabulate_table5(result: dict) -> Table:
    """Table 5: SARPpb improvement over REFpb as subarrays per bank vary."""
    counts = sorted(result)
    rows = [["WS improvement (%)"] + [f"{result[c]:.1f}" for c in counts]]
    return Table.build(
        ["Subarrays-per-bank"] + [str(c) for c in counts],
        rows,
        title="Table 5: effect of subarrays per bank",
    )


def format_table5(result: dict) -> str:
    """Table 5: SARPpb improvement over REFpb as subarrays per bank vary."""
    return tabulate_table5(result).to_text()


def tabulate_table6(result: dict) -> Table:
    """Table 6: DSARP improvement at 64 ms retention."""
    rows = []
    for density in sorted(result):
        entry = result[density]
        rows.append(
            [
                f"{density}Gb",
                f"{entry['max_refpb']:.1f}",
                f"{entry['max_refab']:.1f}",
                f"{entry['gmean_refpb']:.1f}",
                f"{entry['gmean_refab']:.1f}",
            ]
        )
    return Table.build(
        ["Density", "Max% vs REFpb", "Max% vs REFab",
         "Gmean% vs REFpb", "Gmean% vs REFab"],
        rows,
        title="Table 6: DSARP improvement with 64 ms retention",
    )


def format_table6(result: dict) -> str:
    """Table 6: DSARP improvement at 64 ms retention."""
    return tabulate_table6(result).to_text()
