"""Plain-text table rendering of experiment results.

Each ``format_tableN`` function accepts the corresponding experiment
function's return value (see :mod:`repro.sim.experiments`) and renders it
with the same rows/columns as the paper's table, so the benchmark harness
output can be compared side-by-side with the publication.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple fixed-width text table."""
    columns = len(headers)
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(headers[i])) for i in range(columns)]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(headers[i]).ljust(widths[i]) for i in range(columns))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in str_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def format_table2(summary: dict) -> str:
    """Table 2: max / gmean WS improvement over REFpb and REFab."""
    rows = []
    for density in sorted(summary):
        for mechanism in ("darp", "sarppb", "dsarp"):
            entry = summary[density][mechanism]
            rows.append(
                [
                    f"{density}Gb",
                    mechanism.upper(),
                    f"{entry['max_refpb']:.1f}",
                    f"{entry['max_refab']:.1f}",
                    f"{entry['gmean_refpb']:.1f}",
                    f"{entry['gmean_refab']:.1f}",
                ]
            )
    return format_table(
        ["Density", "Mechanism", "Max% vs REFpb", "Max% vs REFab",
         "Gmean% vs REFpb", "Gmean% vs REFab"],
        rows,
        title="Table 2: WS improvement of DARP/SARPpb/DSARP",
    )


def format_table3(result: dict) -> str:
    """Table 3: DSARP effect on multi-core system metrics."""
    rows = []
    for cores in sorted(result):
        entry = result[cores]
        rows.append(
            [
                cores,
                f"{entry['weighted_speedup_improvement']:.1f}",
                f"{entry['harmonic_speedup_improvement']:.1f}",
                f"{entry['maximum_slowdown_reduction']:.1f}",
                f"{entry['energy_per_access_reduction']:.1f}",
            ]
        )
    return format_table(
        ["Cores", "WS improv. (%)", "HS improv. (%)",
         "Max-slowdown red. (%)", "Energy/access red. (%)"],
        rows,
        title="Table 3: DSARP vs REFab across core counts",
    )


def format_table4(result: dict) -> str:
    """Table 4: SARPpb improvement over REFpb as tFAW/tRRD vary."""
    tfaws = sorted(result)
    rows = [
        ["tFAW/tRRD (cycles)"] + [f"{t}/{max(1, t // 5)}" for t in tfaws],
        ["WS improvement (%)"] + [f"{result[t]:.1f}" for t in tfaws],
    ]
    return format_table(
        ["metric"] + [str(t) for t in tfaws],
        rows,
        title="Table 4: SARPpb over REFpb vs tFAW",
    )


def format_table5(result: dict) -> str:
    """Table 5: SARPpb improvement over REFpb as subarrays per bank vary."""
    counts = sorted(result)
    rows = [["WS improvement (%)"] + [f"{result[c]:.1f}" for c in counts]]
    return format_table(
        ["Subarrays-per-bank"] + [str(c) for c in counts],
        rows,
        title="Table 5: effect of subarrays per bank",
    )


def format_table6(result: dict) -> str:
    """Table 6: DSARP improvement at 64 ms retention."""
    rows = []
    for density in sorted(result):
        entry = result[density]
        rows.append(
            [
                f"{density}Gb",
                f"{entry['max_refpb']:.1f}",
                f"{entry['max_refab']:.1f}",
                f"{entry['gmean_refpb']:.1f}",
                f"{entry['gmean_refab']:.1f}",
            ]
        )
    return format_table(
        ["Density", "Max% vs REFpb", "Max% vs REFab",
         "Gmean% vs REFpb", "Gmean% vs REFab"],
        rows,
        title="Table 6: DSARP improvement with 64 ms retention",
    )
