"""The shared tabular model behind every rendered result artifact.

A :class:`Table` is the renderer-independent form of one paper table or
figure series: a title, a header row and string cell rows.  The
``tabulate_*`` functions in :mod:`repro.analysis.tables` and
:mod:`repro.analysis.figures` reduce experiment payloads to this model
once, and every output format renders from it:

* ``to_text()``     — the fixed-width terminal/``results/*.txt`` form
  (byte-identical to the original ``format_*`` output),
* ``to_markdown()`` — a GitHub-flavored pipe table for report documents,
* ``to_latex()``    — a LaTeX ``tabular`` block ready to paste into a
  paper draft.

All three renderings are deterministic: the same payload always produces
the same bytes, which is what lets report artifacts be diffed, committed
and golden-checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: Characters that LaTeX treats specially in text mode, with their
#: escaped forms.  Backslash is handled first by the escaper itself.
_LATEX_ESCAPES = {
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
}


def latex_escape(text: str) -> str:
    """Escape a cell for LaTeX text mode."""
    out = text.replace("\\", r"\textbackslash{}")
    for char, escaped in _LATEX_ESCAPES.items():
        out = out.replace(char, escaped)
    return out


@dataclass(frozen=True)
class Table:
    """One renderer-independent table: title, headers and string rows."""

    headers: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]
    title: str = ""

    @classmethod
    def build(
        cls,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
        title: str = "",
    ) -> "Table":
        """Normalize arbitrary cell values into a string-celled table."""
        return cls(
            headers=tuple(str(header) for header in headers),
            rows=tuple(tuple(str(cell) for cell in row) for row in rows),
            title=title,
        )

    def _widths(self) -> list[int]:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def to_text(self) -> str:
        """Fixed-width text rendering (the historical ``format_table``)."""
        widths = self._widths()
        columns = len(self.headers)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(
            " | ".join(self.headers[i].ljust(widths[i]) for i in range(columns))
        )
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(columns)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavored pipe table (no title; callers emit headings)."""

        def clean(cell: str) -> str:
            return cell.replace("|", "\\|")

        lines = [
            "| " + " | ".join(clean(header) for header in self.headers) + " |",
            "|" + "|".join("---" for _ in self.headers) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(clean(cell) for cell in row) + " |")
        return "\n".join(lines)

    def to_latex(self) -> str:
        """LaTeX ``tabular`` block with an escaped caption comment."""
        columns = "l" * len(self.headers)
        lines = []
        if self.title:
            lines.append(f"% {self.title}")
        lines.append(f"\\begin{{tabular}}{{{columns}}}")
        lines.append(
            "  " + " & ".join(latex_escape(h) for h in self.headers) + " \\\\"
        )
        lines.append("  \\hline")
        for row in self.rows:
            lines.append(
                "  " + " & ".join(latex_escape(cell) for cell in row) + " \\\\"
            )
        lines.append("\\end{tabular}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Series:
    """One named numeric series for plotting (paired with x labels)."""

    name: str
    values: tuple = ()


@dataclass(frozen=True)
class Chart:
    """Renderer-independent chart data: x labels plus named series.

    ``kind`` is a hint for the plot backend (``"line"`` or ``"bar"``);
    values may contain ``None`` for missing points (skipped by plots).
    """

    title: str
    x_labels: tuple[str, ...]
    series: tuple[Series, ...]
    kind: str = "line"
    y_label: str = ""

    @classmethod
    def build(
        cls,
        title: str,
        x_labels: Sequence[object],
        series: dict,
        kind: str = "line",
        y_label: str = "",
    ) -> "Chart":
        return cls(
            title=title,
            x_labels=tuple(str(label) for label in x_labels),
            series=tuple(
                Series(name=str(name), values=tuple(values))
                for name, values in series.items()
            ),
            kind=kind,
            y_label=y_label,
        )


__all__ = ["Chart", "Series", "Table", "latex_escape"]
