"""Formatting of experiment results into paper-style tables and series."""

from repro.analysis.figures import (
    format_figure12,
    format_figure13,
    format_figure14,
    format_figure15,
    format_figure16,
    format_figure5,
    format_figure6,
    format_figure7,
)
from repro.analysis.tables import (
    format_table,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
)

__all__ = [
    "format_table",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_table5",
    "format_table6",
    "format_figure5",
    "format_figure6",
    "format_figure7",
    "format_figure12",
    "format_figure13",
    "format_figure14",
    "format_figure15",
    "format_figure16",
]
