"""Tabular rendering of the paper's figure-level data series.

Each ``tabulate_figureN`` function accepts the corresponding experiment
function's return value (see :mod:`repro.sim.experiments`) and reduces the
same series the paper plots to one or more
:class:`~repro.analysis.model.Table` blocks.  The historical
``format_figureN`` helpers render those blocks as fixed-width text for
terminal output or ``results/*.txt`` artifacts; the report subsystem
renders the same model as markdown, LaTeX and plots.
"""

from __future__ import annotations

from repro.analysis.model import Table
from repro.analysis.tables import format_table  # noqa: F401  (re-export)


def tabulate_figure5(points) -> Table:
    """Figure 5: refresh latency (tRFCab) trend vs density."""
    rows = []
    for point in points:
        present = f"{point.present_ns:.0f}" if point.present_ns is not None else "-"
        rows.append(
            [
                point.density_gb,
                present,
                f"{point.projection1_ns:.0f}",
                f"{point.projection2_ns:.0f}",
            ]
        )
    return Table.build(
        ["Density (Gb)", "Present (ns)", "Projection 1 (ns)", "Projection 2 (ns)"],
        rows,
        title="Figure 5: refresh latency (tRFCab) trend",
    )


def format_figure5(points) -> str:
    """Figure 5: refresh latency (tRFCab) trend vs density."""
    return tabulate_figure5(points).to_text()


def tabulate_figure6(result: dict) -> Table:
    """Figure 6: % performance loss of REFab vs the ideal, by category."""
    densities = sorted(next(iter(result.values())).keys())
    rows = []
    for category in sorted(k for k in result if k >= 0):
        rows.append(
            [f"{category}%"] + [f"{result[category][d]:.1f}" for d in densities]
        )
    rows.append(["Mean"] + [f"{result[-1][d]:.1f}" for d in densities])
    return Table.build(
        ["Intensive share"] + [f"{d}Gb loss (%)" for d in densities],
        rows,
        title="Figure 6: performance loss due to REFab",
    )


def format_figure6(result: dict) -> str:
    """Figure 6: % performance loss of REFab vs the ideal, by category."""
    return tabulate_figure6(result).to_text()


def tabulate_figure7(result: dict) -> Table:
    """Figure 7: % performance loss of REFab and REFpb vs the ideal."""
    rows = []
    for density in sorted(result):
        rows.append(
            [
                f"{density}Gb",
                f"{result[density]['refab']:.1f}",
                f"{result[density]['refpb']:.1f}",
            ]
        )
    return Table.build(
        ["Density", "REFab loss (%)", "REFpb loss (%)"],
        rows,
        title="Figure 7: performance loss due to REFab and REFpb",
    )


def format_figure7(result: dict) -> str:
    """Figure 7: % performance loss of REFab and REFpb vs the ideal."""
    return tabulate_figure7(result).to_text()


def tabulate_figure12(sweep: dict) -> list[Table]:
    """Figure 12: per-workload WS normalized to REFab (one block per density)."""
    blocks = []
    for density in sorted(sweep):
        per_workload = sweep[density]
        mechanisms = sorted(next(iter(per_workload.values())).keys())
        rows = []
        for name in sorted(per_workload):
            rows.append(
                [name] + [f"{per_workload[name][m]:.3f}" for m in mechanisms]
            )
        blocks.append(
            Table.build(
                ["Workload"] + mechanisms,
                rows,
                title=f"Figure 12 ({density}Gb): WS normalized to REFab",
            )
        )
    return blocks


def format_figure12(sweep: dict) -> str:
    """Figure 12: per-workload WS normalized to REFab."""
    return "\n\n".join(block.to_text() for block in tabulate_figure12(sweep))


def tabulate_figure13(result: dict) -> Table:
    """Figure 13: average WS improvement over REFab for all mechanisms."""
    mechanisms = list(next(iter(result.values())).keys())
    rows = []
    for density in sorted(result):
        rows.append(
            [f"{density}Gb"] + [f"{result[density][m]:+.1f}" for m in mechanisms]
        )
    return Table.build(
        ["Density"] + mechanisms,
        rows,
        title="Figure 13: average WS improvement over REFab (%)",
    )


def format_figure13(result: dict) -> str:
    """Figure 13: average WS improvement over REFab for all mechanisms."""
    return tabulate_figure13(result).to_text()


def tabulate_figure14(result: dict) -> Table:
    """Figure 14: energy per access for all mechanisms."""
    mechanisms = list(next(iter(result.values())).keys())
    rows = []
    for density in sorted(result):
        rows.append(
            [f"{density}Gb"] + [f"{result[density][m]:.1f}" for m in mechanisms]
        )
    return Table.build(
        ["Density"] + mechanisms,
        rows,
        title="Figure 14: energy per access (nJ)",
    )


def format_figure14(result: dict) -> str:
    """Figure 14: energy per access for all mechanisms."""
    return tabulate_figure14(result).to_text()


def tabulate_figure15(result: dict) -> Table:
    """Figure 15: DSARP gains over REFab / REFpb by memory intensity."""
    categories = sorted(result)
    densities = sorted(next(iter(result.values())).keys())
    rows = []
    for category in categories:
        for density in densities:
            entry = result[category][density]
            rows.append(
                [
                    f"{category}%",
                    f"{density}Gb",
                    f"{entry['vs_refab']:+.1f}",
                    f"{entry['vs_refpb']:+.1f}",
                ]
            )
    return Table.build(
        ["Intensive share", "Density", "vs REFab (%)", "vs REFpb (%)"],
        rows,
        title="Figure 15: DSARP improvement by memory intensity",
    )


def format_figure15(result: dict) -> str:
    """Figure 15: DSARP gains over REFab / REFpb by memory intensity."""
    return tabulate_figure15(result).to_text()


def tabulate_figure16(result: dict) -> Table:
    """Figure 16: WS normalized to REFab for FGR / AR / DSARP."""
    mechanisms = list(next(iter(result.values())).keys())
    rows = []
    for density in sorted(result):
        rows.append(
            [f"{density}Gb"] + [f"{result[density][m]:.3f}" for m in mechanisms]
        )
    return Table.build(
        ["Density"] + mechanisms,
        rows,
        title="Figure 16: WS normalized to REFab (FGR / AR / DSARP)",
    )


def format_figure16(result: dict) -> str:
    """Figure 16: WS normalized to REFab for FGR / AR / DSARP."""
    return tabulate_figure16(result).to_text()
