"""DRAM rank model: a group of banks sharing activation-rate constraints.

The rank enforces the power-delivery constraints tRRD (minimum spacing
between ACTIVATEs) and tFAW (at most four ACTIVATEs per rolling window),
tracks rank-level all-bank refresh occupancy, and serializes per-bank
refreshes (the LPDDR standard disallows REFpb operations from overlapping
with each other within a rank, Section 2.2.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.dram.bank import Bank


@dataclass
class Rank:
    """State of a single DRAM rank."""

    index: int
    banks: list[Bank]

    #: Earliest cycle an ACTIVATE may be issued anywhere in the rank (tRRD).
    next_act: int = 0
    #: Timestamps of the most recent ACTIVATEs, for the tFAW window.
    act_history: deque = field(default_factory=lambda: deque(maxlen=4))
    #: Cycle at which the in-progress all-bank refresh (if any) finishes.
    refab_until: int = 0
    #: Cycle at which the in-progress per-bank refresh (if any) finishes;
    #: REFpb commands within a rank may not overlap.
    pb_refresh_until: int = 0

    # -- statistics -------------------------------------------------------
    refab_count: int = 0
    refpb_count: int = 0

    #: Struct-of-arrays mirror and this rank's ``(channel, rank)`` slot in
    #: it (see :class:`~repro.dram.scoreboard.TimingScoreboard`); ``None``
    #: for standalone ranks built by unit tests.
    _sb: object = None
    _sb_i: tuple = ()

    def bank(self, index: int) -> Bank:
        return self.banks[index]

    # -- refresh state ----------------------------------------------------
    def is_under_all_bank_refresh(self, cycle: int) -> bool:
        return cycle < self.refab_until

    def is_under_per_bank_refresh(self, cycle: int) -> bool:
        return cycle < self.pb_refresh_until

    def is_refreshing(self, cycle: int) -> bool:
        """True when any refresh operation is in progress in this rank."""
        return self.is_under_all_bank_refresh(cycle) or self.is_under_per_bank_refresh(
            cycle,
        )

    # -- activation-rate constraints --------------------------------------
    def can_activate(self, cycle: int, trrd: int, tfaw: int) -> bool:
        """Check the rank-level tRRD/tFAW constraints for an ACTIVATE."""
        if cycle < self.next_act:
            return False
        if len(self.act_history) == self.act_history.maxlen:
            oldest = self.act_history[0]
            if cycle < oldest + tfaw:
                return False
        return True

    def record_activate(self, cycle: int, trrd: int) -> None:
        """Record an issued ACTIVATE for tRRD/tFAW accounting."""
        self.next_act = max(self.next_act, cycle + trrd)
        self.act_history.append(cycle)
        sb = self._sb
        if sb is not None:
            i = self._sb_i
            sb.next_act[i] = self.next_act
            if len(self.act_history) == self.act_history.maxlen:
                sb.faw_start[i] = self.act_history[0]

    # -- refresh transitions ----------------------------------------------
    def start_all_bank_refresh(
        self,
        cycle: int,
        duration: int,
        sarp_enabled: bool,
    ) -> None:
        """Begin an all-bank refresh: every bank refreshes concurrently."""
        self.refab_until = cycle + duration
        self.refab_count += 1
        if self._sb is not None:
            self._sb.refab_until[self._sb_i] = self.refab_until
        for bank in self.banks:
            bank.do_refresh(cycle, duration, sarp_enabled)

    def start_per_bank_refresh(
        self, cycle: int, bank_index: int, duration: int, sarp_enabled: bool
    ) -> None:
        """Begin a per-bank refresh on one bank."""
        self.pb_refresh_until = cycle + duration
        self.refpb_count += 1
        if self._sb is not None:
            self._sb.pb_until[self._sb_i] = self.pb_refresh_until
        self.banks[bank_index].do_refresh(cycle, duration, sarp_enabled)

    def tick(self, cycle: int) -> None:
        """Clear expired refresh markers on the rank's banks."""
        for bank in self.banks:
            bank.end_refresh_if_done(cycle)

    # -- event horizon (cycle-skipping kernel) -----------------------------
    def next_event_cycle(self, now: int, tfaw: int) -> "int | None":
        """Earliest cycle after ``now`` at which rank-level state can change.

        Covers the rank's own timing windows (tRRD spacing, the tFAW
        rolling window, refresh completions) and every bank's scoreboard.
        ``tfaw`` must be the window *currently in force* — under SARP the
        device passes the inflated value while the rank refreshes, and the
        refresh-completion candidates below cover the reversion to the
        base value.  (``next_act`` needs no such care: it was recorded as
        an absolute cycle using the tRRD in force at issue time.)
        """
        candidates = [
            deadline
            for deadline in (self.next_act, self.refab_until, self.pb_refresh_until)
            if deadline > now
        ]
        if len(self.act_history) == self.act_history.maxlen:
            deadline = self.act_history[0] + tfaw
            if deadline > now:
                candidates.append(deadline)
        for bank in self.banks:
            bank_event = bank.next_event_cycle(now)
            if bank_event is not None:
                candidates.append(bank_event)
        return min(candidates) if candidates else None

    # -- convenience ------------------------------------------------------
    def all_banks_precharged(self, cycle: int) -> bool:
        """True when every bank is precharged and able to accept a refresh."""
        return all(
            bank.open_row is None and not bank.is_refreshing(cycle)
            for bank in self.banks
        )

    def open_banks(self) -> list[Bank]:
        """Banks that currently have an open row."""
        return [bank for bank in self.banks if bank.open_row is not None]
