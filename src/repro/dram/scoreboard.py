"""Struct-of-arrays timing scoreboard mirroring the bank/rank deadlines.

The event kernel's horizon reductions ("earliest deadline after ``now``
anywhere in the device") used to walk every :class:`~repro.dram.bank.Bank`
and :class:`~repro.dram.rank.Rank` object per query, paying Python
attribute/loop overhead per bank.  The scoreboard keeps the same deadlines
in dense numpy arrays so a horizon query is one vectorized min-reduction.

Ownership: the per-object scalar fields remain authoritative — ``can_issue``
and the schedulers read single deadlines far more often than the horizon
reduces over all of them, and a Python attribute load beats a numpy scalar
index.  Every bank/rank mutator *writes through* to its mirror slot, so the
arrays are exact copies by construction (pinned by a sync audit in the test
suite).  Standalone banks/ranks built by unit tests have no scoreboard
attached and skip the mirror writes entirely.

Array layout: one ``(BANK_FIELDS, channels, ranks, banks)`` block for the
bank deadlines (field views are aliases into it, so the reduction scans a
single contiguous block) and a ``(RANK_FIELDS, channels, ranks)`` block for
the rank-level activation/refresh windows.  The tFAW rolling window is
mirrored as ``faw_start`` — the oldest timestamp of a *full* four-ACT
history, or ``FAW_EMPTY`` while the window cannot constrain — because the
deadline it implies depends on the tFAW in force at query time (SARP
inflates it while the rank refreshes), so the addition happens per query.
"""

from __future__ import annotations

import numpy as np

#: Bank-deadline field indices within the bank block.
BANK_T_ACT, BANK_T_RD, BANK_T_WR, BANK_T_PRE, BANK_REFRESH_UNTIL = range(5)
BANK_FIELDS = 5

#: Rank-field indices within the rank block.
RANK_NEXT_ACT, RANK_REFAB_UNTIL, RANK_PB_UNTIL, RANK_FAW_START = range(4)
RANK_FIELDS = 4

#: ``faw_start`` value while the activation history is not yet full: far
#: enough in the past that ``FAW_EMPTY + tFAW`` can never exceed ``now``.
FAW_EMPTY = np.int64(-(2**40))


class TimingScoreboard:
    """Dense mirror of every bank/rank timing deadline in one device."""

    def __init__(self, channels: int, ranks: int, banks: int):
        self.shape = (channels, ranks, banks)
        self._bank = np.zeros((BANK_FIELDS, channels, ranks, banks), dtype=np.int64)
        self._rank = np.zeros((RANK_FIELDS, channels, ranks), dtype=np.int64)
        self._rank[RANK_FAW_START].fill(FAW_EMPTY)
        # Field views (aliases into the blocks) for the write-through paths.
        self.t_act = self._bank[BANK_T_ACT]
        self.t_rd = self._bank[BANK_T_RD]
        self.t_wr = self._bank[BANK_T_WR]
        self.t_pre = self._bank[BANK_T_PRE]
        self.refresh_until = self._bank[BANK_REFRESH_UNTIL]
        self.next_act = self._rank[RANK_NEXT_ACT]
        self.refab_until = self._rank[RANK_REFAB_UNTIL]
        self.pb_until = self._rank[RANK_PB_UNTIL]
        self.faw_start = self._rank[RANK_FAW_START]

    # -- attachment ---------------------------------------------------------
    def attach(self, device) -> None:
        """Wire every bank/rank of ``device`` to its mirror slot."""
        for ch, rk, rank in device.iter_ranks():
            rank._sb = self
            rank._sb_i = (ch, rk)
            for bank in rank.banks:
                bank._sb = self
                bank._sb_i = (ch, rk, bank.index)

    # -- vectorized horizon reductions --------------------------------------
    def min_bank_deadline_after(self, now: int, channel: "int | None" = None):
        """Earliest bank-scoreboard deadline strictly after ``now``.

        Returns ``None`` when every deadline has already passed.  The five
        deadline fields live in one contiguous block, so this is a single
        masked min-reduction regardless of bank count.
        """
        block = self._bank if channel is None else self._bank[:, channel]
        ahead = block[block > now]
        if ahead.size == 0:
            return None
        return int(ahead.min())

    def rank_deadlines_after(self, now: int, channel: int) -> list[int]:
        """Rank-level ``next_act``/refresh-completion deadlines after ``now``
        for one channel (the tFAW window is handled by the caller, which
        knows the per-rank window in force)."""
        block = self._rank[:RANK_FAW_START, channel]
        ahead = block[block > now]
        return [int(v) for v in ahead]

    def resync(self, device) -> None:
        """Recopy every authoritative deadline into the mirrors.

        The simulation never needs this — the mutators write through — but
        tests (and debugging sessions) that poke bank/rank fields directly
        must call it before querying a vectorized horizon.
        """
        for ch, rk, bk, bank in device.iter_banks():
            i = (ch, rk, bk)
            self.t_act[i] = bank.t_act
            self.t_rd[i] = bank.t_rd
            self.t_wr[i] = bank.t_wr
            self.t_pre[i] = bank.t_pre
            self.refresh_until[i] = bank.refresh_until
        for ch, rk, rank in device.iter_ranks():
            i = (ch, rk)
            self.next_act[i] = rank.next_act
            self.refab_until[i] = rank.refab_until
            self.pb_until[i] = rank.pb_refresh_until
            history = rank.act_history
            self.faw_start[i] = (
                history[0] if len(history) == history.maxlen else FAW_EMPTY
            )

    # -- audit --------------------------------------------------------------
    def verify_against(self, device) -> list[str]:
        """Mismatches between the mirrors and the authoritative objects.

        Returns human-readable descriptions (empty when in sync); used by
        the differential test suite to pin the write-through invariant.
        """
        problems = []
        for ch, rk, bk, bank in device.iter_banks():
            expected = {
                "t_act": bank.t_act,
                "t_rd": bank.t_rd,
                "t_wr": bank.t_wr,
                "t_pre": bank.t_pre,
                "refresh_until": bank.refresh_until,
            }
            for name, value in expected.items():
                mirrored = int(getattr(self, name)[ch, rk, bk])
                if mirrored != value:
                    problems.append(
                        f"bank ({ch},{rk},{bk}) {name}: object={value} mirror={mirrored}"
                    )
        for ch, rk, rank in device.iter_ranks():
            history = rank.act_history
            faw = (
                history[0] if len(history) == history.maxlen else int(FAW_EMPTY)
            )
            expected = {
                "next_act": rank.next_act,
                "refab_until": rank.refab_until,
                "pb_until": rank.pb_refresh_until,
                "faw_start": faw,
            }
            for name, value in expected.items():
                mirrored = int(getattr(self, name)[ch, rk])
                if mirrored != value:
                    problems.append(
                        f"rank ({ch},{rk}) {name}: object={value} mirror={mirrored}"
                    )
        return problems
