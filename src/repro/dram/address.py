"""Physical-address to DRAM-location mapping.

The mapper interleaves consecutive cache lines across channels (to spread
bandwidth), then across columns within a row, then banks, then ranks, and
finally rows.  This is the conventional row-interleaved mapping used by
FR-FCFS studies; it maximizes row-buffer locality for streaming access
patterns while spreading independent streams across banks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram_config import DRAMOrganization


def _log2(value: int, name: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class PhysicalLocation:
    """Decoded DRAM coordinates of a physical address."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    def bank_key(self) -> tuple[int, int, int]:
        """Key identifying the bank (channel, rank, bank)."""
        return (self.channel, self.rank, self.bank)


class AddressMapper:
    """Bidirectional mapping between physical addresses and DRAM locations.

    Bit layout from least to most significant:
    ``[cacheline offset][channel][column][bank][rank][row]``.
    """

    def __init__(self, organization: DRAMOrganization):
        self.organization = organization
        self._offset_bits = _log2(organization.cacheline_bytes, "cacheline_bytes")
        self._channel_bits = _log2(organization.channels, "channels")
        self._column_bits = _log2(organization.columns_per_row, "columns_per_row")
        self._bank_bits = _log2(organization.banks_per_rank, "banks_per_rank")
        self._rank_bits = _log2(organization.ranks_per_channel, "ranks_per_channel")
        self._row_bits = _log2(organization.rows_per_bank, "rows_per_bank")

        self._channel_shift = self._offset_bits
        self._column_shift = self._channel_shift + self._channel_bits
        self._bank_shift = self._column_shift + self._column_bits
        self._rank_shift = self._bank_shift + self._bank_bits
        self._row_shift = self._rank_shift + self._rank_bits

    @property
    def address_bits(self) -> int:
        """Number of meaningful address bits."""
        return self._row_shift + self._row_bits

    @property
    def capacity_bytes(self) -> int:
        return 1 << self.address_bits

    def decode(self, address: int) -> PhysicalLocation:
        """Decode a physical byte address into DRAM coordinates."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        address &= self.capacity_bytes - 1
        channel = (address >> self._channel_shift) & (
            (1 << self._channel_bits) - 1
        )
        column = (address >> self._column_shift) & ((1 << self._column_bits) - 1)
        bank = (address >> self._bank_shift) & ((1 << self._bank_bits) - 1)
        rank = (address >> self._rank_shift) & ((1 << self._rank_bits) - 1)
        row = (address >> self._row_shift) & ((1 << self._row_bits) - 1)
        return PhysicalLocation(
            channel=channel, rank=rank, bank=bank, row=row, column=column
        )

    def encode(self, location: PhysicalLocation) -> int:
        """Encode DRAM coordinates back into a (line-aligned) byte address."""
        return (
            (location.row << self._row_shift)
            | (location.rank << self._rank_shift)
            | (location.bank << self._bank_shift)
            | (location.column << self._column_shift)
            | (location.channel << self._channel_shift)
        )

    def subarray_of(self, location: PhysicalLocation) -> int:
        """Subarray group index of a location's row."""
        return self.organization.subarray_of_row(location.row)
