"""DRAM command types and the command record issued by the controller."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommandType(enum.Enum):
    """DRAM commands the memory controller can place on the command bus.

    The classification flags (``is_column``, ``is_read``, ...) are plain
    attributes precomputed once below rather than properties: they sit on
    the innermost scheduling loops, where a property call plus set
    membership per query is measurable.
    """

    ACT = "activate"
    RD = "read"
    WR = "write"
    RDA = "read_autoprecharge"
    WRA = "write_autoprecharge"
    PRE = "precharge"
    REFAB = "refresh_all_bank"
    REFPB = "refresh_per_bank"


for _member in CommandType:
    #: True for column (data-transferring) commands.
    _member.is_column = _member.name in ("RD", "WR", "RDA", "WRA")
    _member.is_read = _member.name in ("RD", "RDA")
    _member.is_write = _member.name in ("WR", "WRA")
    _member.is_refresh = _member.name in ("REFAB", "REFPB")
    _member.autoprecharges = _member.name in ("RDA", "WRA")
del _member


@dataclass(slots=True)
class Command:
    """A single DRAM command targeting a location in the hierarchy.

    ``REFAB`` commands target a rank (``bank`` is ignored); ``REFPB``
    commands target a bank; ``ACT`` carries a row; column commands carry a
    column within the bank's open row.  ``request`` links the command back
    to the memory request it serves (None for refreshes and precharges).
    """

    kind: CommandType
    channel: int
    rank: int
    bank: int = 0
    row: int = 0
    column: int = 0
    request: Optional[object] = None
    #: Optional refresh-duration override in DRAM cycles.  Used by the
    #: adaptive-refresh policy to issue fine-granularity sub-refreshes whose
    #: latency differs from the configured tRFC.
    duration: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Command({self.kind.name}, ch={self.channel}, rk={self.rank}, "
            f"bk={self.bank}, row={self.row}, col={self.column})"
        )
