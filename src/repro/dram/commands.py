"""DRAM command types and the command record issued by the controller."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommandType(enum.Enum):
    """DRAM commands the memory controller can place on the command bus."""

    ACT = "activate"
    RD = "read"
    WR = "write"
    RDA = "read_autoprecharge"
    WRA = "write_autoprecharge"
    PRE = "precharge"
    REFAB = "refresh_all_bank"
    REFPB = "refresh_per_bank"

    @property
    def is_column(self) -> bool:
        """True for column (data-transferring) commands."""
        return self in {
            CommandType.RD,
            CommandType.WR,
            CommandType.RDA,
            CommandType.WRA,
        }

    @property
    def is_read(self) -> bool:
        return self in {CommandType.RD, CommandType.RDA}

    @property
    def is_write(self) -> bool:
        return self in {CommandType.WR, CommandType.WRA}

    @property
    def is_refresh(self) -> bool:
        return self in {CommandType.REFAB, CommandType.REFPB}

    @property
    def autoprecharges(self) -> bool:
        return self in {CommandType.RDA, CommandType.WRA}


@dataclass
class Command:
    """A single DRAM command targeting a location in the hierarchy.

    ``REFAB`` commands target a rank (``bank`` is ignored); ``REFPB``
    commands target a bank; ``ACT`` carries a row; column commands carry a
    column within the bank's open row.  ``request`` links the command back
    to the memory request it serves (None for refreshes and precharges).
    """

    kind: CommandType
    channel: int
    rank: int
    bank: int = 0
    row: int = 0
    column: int = 0
    request: Optional[object] = None
    #: Optional refresh-duration override in DRAM cycles.  Used by the
    #: adaptive-refresh policy to issue fine-granularity sub-refreshes whose
    #: latency differs from the configured tRFC.
    duration: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Command({self.kind.name}, ch={self.channel}, rk={self.rank}, "
            f"bk={self.bank}, row={self.row}, col={self.column})"
        )
