"""Cycle-level DRAM device model.

The model implements the DDR3-1333 command/timing behaviour the paper's
mechanisms interact with: banks with activate/read/write/precharge state
machines, rank-level tRRD/tFAW activation constraints, a half-duplex data
bus with read/write turnaround penalties, all-bank (REFab) and per-bank
(REFpb) refresh commands, and the SARP modifications that allow a bank to
serve accesses to idle subarrays while another subarray is being refreshed.
"""

from repro.dram.address import AddressMapper, PhysicalLocation
from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType
from repro.dram.device import DeviceStats, DRAMDevice
from repro.dram.power_integrity import (
    SARP_ALL_BANK_SCALE,
    SARP_PER_BANK_SCALE,
    power_overhead_faw,
    sarp_timing_scale,
)
from repro.dram.rank import Rank
from repro.dram.subarray import Subarray

__all__ = [
    "Command",
    "CommandType",
    "AddressMapper",
    "PhysicalLocation",
    "Subarray",
    "Bank",
    "Rank",
    "Channel",
    "DRAMDevice",
    "DeviceStats",
    "power_overhead_faw",
    "sarp_timing_scale",
    "SARP_ALL_BANK_SCALE",
    "SARP_PER_BANK_SCALE",
]
