"""DRAM channel model: ranks sharing a command bus and half-duplex data bus.

The channel arbitrates the shared data bus: each column command occupies the
bus for a burst of ``tBL`` cycles after its CAS latency, and switching the
bus direction costs the tWTR (write-to-read) or tRTW (read-to-write)
turnaround penalty.  The write-batching behaviour the paper's DARP
mechanism exploits exists precisely to amortize this turnaround cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.rank import Rank
from repro.stats import StatsSchema, StatsStruct, register_schema


@dataclass
class ChannelStats(StatsStruct):
    """Measurement counters owned by one channel.

    Owning the counters (instead of spreading bare attributes over the
    channel) lets the simulator's warmup reset call a single
    :meth:`reset` (schema-driven, so new counters added here can never be
    silently missed by the measurement-window reset).
    """

    SCHEMA = register_schema(
        StatsSchema("channel", fields=("read_bursts", "write_bursts", "busy_cycles"))
    )

    read_bursts: int = 0
    write_bursts: int = 0
    busy_cycles: int = 0


@dataclass
class Channel:
    """State of a single DRAM channel."""

    index: int
    ranks: list[Rank]

    #: Cycle until which the data bus is occupied by a burst.
    bus_busy_until: int = 0
    #: End cycle of the most recent read data burst.
    last_read_burst_end: int = -(10**9)
    #: End cycle of the most recent write data burst.
    last_write_burst_end: int = -(10**9)

    #: Measurement counters (reset together at the end of warmup).
    stats: ChannelStats = field(default_factory=ChannelStats)

    def rank(self, index: int) -> Rank:
        return self.ranks[index]

    # -- statistics accessors (kept for call-site brevity) ------------------
    @property
    def read_bursts(self) -> int:
        return self.stats.read_bursts

    @property
    def write_bursts(self) -> int:
        return self.stats.write_bursts

    @property
    def busy_cycles(self) -> int:
        return self.stats.busy_cycles

    # -- data-bus arbitration ----------------------------------------------
    def can_read_burst(self, command_cycle: int, timings) -> bool:
        """Check that a read issued at ``command_cycle`` can use the bus."""
        burst_start = command_cycle + timings.tCL
        if burst_start < self.bus_busy_until:
            return False
        # Write-to-read turnaround: the read burst must not start before the
        # previous write burst has cleared the bus by tWTR cycles.
        if burst_start < self.last_write_burst_end + timings.tWTR:
            return False
        return True

    def can_write_burst(self, command_cycle: int, timings) -> bool:
        """Check that a write issued at ``command_cycle`` can use the bus."""
        burst_start = command_cycle + timings.tCWL
        if burst_start < self.bus_busy_until:
            return False
        # Read-to-write turnaround.
        if burst_start < self.last_read_burst_end + timings.tRTW:
            return False
        return True

    def occupy_read_burst(self, command_cycle: int, timings) -> int:
        """Reserve the bus for a read burst; returns the burst end cycle."""
        burst_start = command_cycle + timings.tCL
        burst_end = burst_start + timings.tBL
        self.bus_busy_until = burst_end
        self.last_read_burst_end = burst_end
        self.stats.read_bursts += 1
        self.stats.busy_cycles += timings.tBL
        return burst_end

    def occupy_write_burst(self, command_cycle: int, timings) -> int:
        """Reserve the bus for a write burst; returns the burst end cycle."""
        burst_start = command_cycle + timings.tCWL
        burst_end = burst_start + timings.tBL
        self.bus_busy_until = burst_end
        self.last_write_burst_end = burst_end
        self.stats.write_bursts += 1
        self.stats.busy_cycles += timings.tBL
        return burst_end

    def tick(self, cycle: int) -> None:
        """Advance per-cycle rank bookkeeping."""
        for rank in self.ranks:
            rank.tick(cycle)

    # -- event horizon (cycle-skipping kernel) -----------------------------
    def bus_deadlines(self, now: int, timings) -> list[int]:
        """Command-cycle deadlines after ``now`` at which a blocked burst
        can clear one of the bus constraints.

        A column command issued at cycle ``c`` reaches the bus ``tCL`` (or
        ``tCWL``) cycles later, so the first command cycle clearing a bus
        constraint is that constraint's bus deadline minus the command
        type's CAS latency.  Reads and writes see different latencies, so
        both exact deadlines are listed per constraint — a merged bound
        would be either unsound (too late for one type) or could fall
        into the past and be filtered while the other type's true flip is
        still ahead.  Single source of truth for this arithmetic: the
        scheduler's demand horizon uses it too.
        """
        return [
            deadline
            for deadline in (
                self.bus_busy_until - timings.tCL,
                self.bus_busy_until - timings.tCWL,
                self.last_write_burst_end + timings.tWTR - timings.tCL,
                self.last_read_burst_end + timings.tRTW - timings.tCWL,
            )
            if deadline > now
        ]

    def next_event_cycle(self, now: int, timings, tfaw_of_rank=None) -> "int | None":
        """Earliest cycle after ``now`` at which channel state can change:
        the bus deadlines plus every rank's timing windows.

        ``tfaw_of_rank`` maps ``(rank, now)`` to the tFAW window *currently
        in force* (the device passes its bound accessor, which returns the
        SARP-inflated value while the rank refreshes); it defaults to the
        base timing.
        """
        candidates = self.bus_deadlines(now, timings)
        for rank in self.ranks:
            tfaw = timings.tFAW if tfaw_of_rank is None else tfaw_of_rank(rank, now)
            rank_event = rank.next_event_cycle(now, tfaw)
            if rank_event is not None:
                candidates.append(rank_event)
        return min(candidates) if candidates else None

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles the data bus carried a burst."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.stats.busy_cycles / elapsed_cycles
