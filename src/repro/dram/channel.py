"""DRAM channel model: ranks sharing a command bus and half-duplex data bus.

The channel arbitrates the shared data bus: each column command occupies the
bus for a burst of ``tBL`` cycles after its CAS latency, and switching the
bus direction costs the tWTR (write-to-read) or tRTW (read-to-write)
turnaround penalty.  The write-batching behaviour the paper's DARP
mechanism exploits exists precisely to amortize this turnaround cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.rank import Rank


@dataclass
class Channel:
    """State of a single DRAM channel."""

    index: int
    ranks: list[Rank]

    #: Cycle until which the data bus is occupied by a burst.
    bus_busy_until: int = 0
    #: End cycle of the most recent read data burst.
    last_read_burst_end: int = -(10**9)
    #: End cycle of the most recent write data burst.
    last_write_burst_end: int = -(10**9)

    # -- statistics -------------------------------------------------------
    read_bursts: int = 0
    write_bursts: int = 0
    busy_cycles: int = 0

    def rank(self, index: int) -> Rank:
        return self.ranks[index]

    # -- data-bus arbitration ----------------------------------------------
    def can_read_burst(self, command_cycle: int, timings) -> bool:
        """Check that a read issued at ``command_cycle`` can use the bus."""
        burst_start = command_cycle + timings.tCL
        if burst_start < self.bus_busy_until:
            return False
        # Write-to-read turnaround: the read burst must not start before the
        # previous write burst has cleared the bus by tWTR cycles.
        if burst_start < self.last_write_burst_end + timings.tWTR:
            return False
        return True

    def can_write_burst(self, command_cycle: int, timings) -> bool:
        """Check that a write issued at ``command_cycle`` can use the bus."""
        burst_start = command_cycle + timings.tCWL
        if burst_start < self.bus_busy_until:
            return False
        # Read-to-write turnaround.
        if burst_start < self.last_read_burst_end + timings.tRTW:
            return False
        return True

    def occupy_read_burst(self, command_cycle: int, timings) -> int:
        """Reserve the bus for a read burst; returns the burst end cycle."""
        burst_start = command_cycle + timings.tCL
        burst_end = burst_start + timings.tBL
        self.bus_busy_until = burst_end
        self.last_read_burst_end = burst_end
        self.read_bursts += 1
        self.busy_cycles += timings.tBL
        return burst_end

    def occupy_write_burst(self, command_cycle: int, timings) -> int:
        """Reserve the bus for a write burst; returns the burst end cycle."""
        burst_start = command_cycle + timings.tCWL
        burst_end = burst_start + timings.tBL
        self.bus_busy_until = burst_end
        self.last_write_burst_end = burst_end
        self.write_bursts += 1
        self.busy_cycles += timings.tBL
        return burst_end

    def tick(self, cycle: int) -> None:
        """Advance per-cycle rank bookkeeping."""
        for rank in self.ranks:
            rank.tick(cycle)

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles the data bus carried a burst."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.busy_cycles / elapsed_cycles
