"""The DRAM device: command legality checking and state updates.

The device owns the channel/rank/bank hierarchy and exposes two operations
to the memory controller: :meth:`DRAMDevice.can_issue` (is this command
legal right now, given every timing constraint?) and
:meth:`DRAMDevice.issue` (apply the command's effects and report when it
completes).  The SARP modifications of Section 4.3 are implemented here:

* an ACTIVATE to a refreshing bank is legal if (and only if) SARP is
  enabled and the target row lies in a subarray other than the one being
  refreshed;
* while a refresh is in progress in a rank, SARP inflates tFAW and tRRD by
  the power-overhead factor of Equation (1) (2.1x for all-bank refresh,
  13.8 % for per-bank refresh).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram_config import DRAMConfig
from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType
from repro.dram.power_integrity import scaled_tfaw_trrd
from repro.dram.rank import Rank
from repro.dram.scoreboard import TimingScoreboard
from repro.stats import StatsSchema, StatsStruct, register_schema


@dataclass
class DeviceStats(StatsStruct):
    """Aggregate command counts for the whole device."""

    SCHEMA = register_schema(
        StatsSchema(
            "device",
            fields=(
                "activates",
                "reads",
                "writes",
                "precharges",
                "all_bank_refreshes",
                "per_bank_refreshes",
                "subarray_conflicts",
            ),
        )
    )

    activates: int = 0
    reads: int = 0
    writes: int = 0
    precharges: int = 0
    all_bank_refreshes: int = 0
    per_bank_refreshes: int = 0
    #: Accesses that found their target subarray under refresh (SARP metric).
    subarray_conflicts: int = 0

    @property
    def column_commands(self) -> int:
        return self.reads + self.writes


class DRAMDevice:
    """Cycle-level DRAM device honoring DDR3 timing constraints."""

    def __init__(self, config: DRAMConfig, sarp_enabled: bool = False):
        self.config = config
        self.timings = config.timings
        self.organization = config.organization
        self.sarp_enabled = sarp_enabled
        #: Activation-window limits, precomputed per refresh context: the
        #: base JEDEC pair and the two SARP-inflated variants (Equations
        #: 2/3 are pure functions of the config, so the hot legality and
        #: horizon paths just pick the pair in force).
        self._base_tfaw_trrd = (config.timings.tFAW, config.timings.tRRD)
        self._sarp_tfaw_trrd = {
            all_bank: scaled_tfaw_trrd(
                config.timings.tFAW, config.timings.tRRD, all_bank
            )
            for all_bank in (False, True)
        }
        self.stats = DeviceStats()
        #: Optional :class:`~repro.obs.trace.CommandTracer`, installed by
        #: :class:`~repro.controller.memory_controller.MemorySystem` so
        #: SARP conflict accounting can be traced; ``None`` when off.
        self.tracer = None
        self.channels: list[Channel] = []
        org = config.organization
        for ch in range(org.channels):
            ranks = []
            for rk in range(org.ranks_per_channel):
                banks = [
                    Bank(
                        index=bk,
                        rows=org.rows_per_bank,
                        subarrays_per_bank=org.subarrays_per_bank,
                        rows_per_refresh=config.rows_per_refresh,
                    )
                    for bk in range(org.banks_per_rank)
                ]
                ranks.append(Rank(index=rk, banks=banks))
            self.channels.append(Channel(index=ch, ranks=ranks))
        #: Struct-of-arrays mirror of every timing deadline; the bank/rank
        #: mutators write through to it, and the horizon queries below
        #: reduce over it instead of walking the object hierarchy.
        self.scoreboard = TimingScoreboard(
            org.channels, org.ranks_per_channel, org.banks_per_rank
        )
        self.scoreboard.attach(self)

    # -- hierarchy accessors -----------------------------------------------
    def channel(self, index: int) -> Channel:
        return self.channels[index]

    def rank(self, channel: int, rank: int) -> Rank:
        return self.channels[channel].ranks[rank]

    def bank(self, channel: int, rank: int, bank: int) -> Bank:
        return self.channels[channel].ranks[rank].banks[bank]

    def iter_ranks(self):
        """Yield (channel_index, rank_index, rank) triples."""
        for channel in self.channels:
            for rank in channel.ranks:
                yield channel.index, rank.index, rank

    def iter_banks(self):
        """Yield (channel_index, rank_index, bank_index, bank) tuples."""
        for channel in self.channels:
            for rank in channel.ranks:
                for bank in rank.banks:
                    yield channel.index, rank.index, bank.index, bank

    # -- per-cycle maintenance ----------------------------------------------
    def tick(self, cycle: int) -> None:
        """Clear expired refresh markers."""
        for channel in self.channels:
            channel.tick(cycle)

    # -- event horizon (cycle-skipping kernel) --------------------------------
    def next_event_cycle_for_channel(self, index: int, now: int) -> "int | None":
        """Earliest cycle after ``now`` at which one channel's timing state
        can change.

        The bank deadlines come from one vectorized min-reduction over the
        struct-of-arrays scoreboard; only the rank-level windows need a
        (tiny) per-rank walk, because the tFAW deadline depends on the
        window *currently in force* — the SARP-inflated value while the
        rank refreshes — so it cannot be precomputed into the mirror.
        ``Channel.next_event_cycle`` remains the object-walking reference
        this reduction is audited against.
        """
        channel = self.channels[index]
        candidates = channel.bus_deadlines(now, self.timings)
        bank_event = self.scoreboard.min_bank_deadline_after(now, channel=index)
        if bank_event is not None:
            candidates.append(bank_event)
        for rank in channel.ranks:
            for deadline in (rank.next_act, rank.refab_until, rank.pb_refresh_until):
                if deadline > now:
                    candidates.append(deadline)
            history = rank.act_history
            if len(history) == history.maxlen:
                deadline = history[0] + self.tfaw_in_force(rank, now)
                if deadline > now:
                    candidates.append(deadline)
        return min(candidates) if candidates else None

    def next_event_cycle(self, now: int) -> "int | None":
        """Earliest cycle after ``now`` at which any timing window expires.

        With the demand queues frozen (no command issued, no request
        enqueued or retired), every ``can_issue`` outcome is a monotone
        function of the cycle number that can only flip when one of the
        bank/rank/channel scoreboard deadlines passes.  The minimum over
        those deadlines therefore bounds how far the event kernel may
        advance in one jump without missing a state change.  The bank
        deadlines of *all* channels reduce in one vectorized pass.
        """
        candidates = []
        bank_event = self.scoreboard.min_bank_deadline_after(now)
        if bank_event is not None:
            candidates.append(bank_event)
        for channel in self.channels:
            candidates.extend(channel.bus_deadlines(now, self.timings))
            for rank in channel.ranks:
                for deadline in (
                    rank.next_act,
                    rank.refab_until,
                    rank.pb_refresh_until,
                ):
                    if deadline > now:
                        candidates.append(deadline)
                history = rank.act_history
                if len(history) == history.maxlen:
                    deadline = history[0] + self.tfaw_in_force(rank, now)
                    if deadline > now:
                        candidates.append(deadline)
        return min(candidates) if candidates else None

    # -- effective activation-rate limits ------------------------------------
    def effective_tfaw_trrd(self, rank: Rank, cycle: int) -> tuple[int, int]:
        """tFAW/tRRD in force at ``cycle``, inflated under SARP while a
        refresh runs in ``rank``.

        Public single owner of the SARP activation-window inflation: the
        scheduler's demand horizon and the device's own legality checks
        must agree on the window in force, so both call this accessor.
        """
        if self.sarp_enabled and rank.is_refreshing(cycle):
            return self._sarp_tfaw_trrd[rank.is_under_all_bank_refresh(cycle)]
        return self._base_tfaw_trrd

    def tfaw_in_force(self, rank: Rank, cycle: int) -> int:
        """Just the tFAW half of :meth:`effective_tfaw_trrd` (horizon walks)."""
        return self.effective_tfaw_trrd(rank, cycle)[0]

    # -- legality -------------------------------------------------------------
    def can_issue(self, command: Command, cycle: int) -> bool:
        """Return True when ``command`` satisfies every timing constraint."""
        kind = command.kind
        channel = self.channels[command.channel]
        rank = channel.ranks[command.rank]
        timings = self.timings

        if kind is CommandType.ACT:
            bank = rank.banks[command.bank]
            if bank.open_row is not None:
                return False
            if cycle < bank.t_act:
                return False
            # Refresh interactions.
            if rank.is_under_all_bank_refresh(cycle):
                if not self.sarp_enabled:
                    return False
                if bank.refresh_conflicts_with(cycle, command.row):
                    return False
            if bank.is_refreshing(cycle):
                if not self.sarp_enabled:
                    return False
                if bank.refresh_conflicts_with(cycle, command.row):
                    return False
            tfaw, trrd = self.effective_tfaw_trrd(rank, cycle)
            return rank.can_activate(cycle, trrd, tfaw)

        if kind.is_column:
            bank = rank.banks[command.bank]
            if bank.open_row is None or bank.open_row != command.row:
                return False
            if kind.is_read:
                if cycle < bank.t_rd:
                    return False
                return channel.can_read_burst(cycle, timings)
            if cycle < bank.t_wr:
                return False
            return channel.can_write_burst(cycle, timings)

        if kind is CommandType.PRE:
            bank = rank.banks[command.bank]
            if bank.open_row is None:
                return False
            if bank.is_refreshing(cycle) and not self.sarp_enabled:
                return False
            return cycle >= bank.t_pre

        if kind is CommandType.REFPB:
            bank = rank.banks[command.bank]
            if bank.open_row is not None:
                return False
            if bank.is_refreshing(cycle):
                return False
            if rank.is_under_all_bank_refresh(cycle):
                return False
            # The LPDDR standard disallows overlapping REFpb within a rank.
            if rank.is_under_per_bank_refresh(cycle):
                return False
            return cycle >= bank.t_act

        if kind is CommandType.REFAB:
            if rank.is_refreshing(cycle):
                return False
            if not rank.all_banks_precharged(cycle):
                return False
            return all(cycle >= bank.t_act for bank in rank.banks)

        raise ValueError(f"unknown command type {kind!r}")

    # -- issue ------------------------------------------------------------------
    def issue(self, command: Command, cycle: int) -> int:
        """Apply ``command`` and return its completion cycle.

        For column commands the completion cycle is the end of the data
        burst (data available for reads, data written for writes); for other
        commands it is the cycle at which their latency expires.
        """
        if not self.can_issue(command, cycle):
            raise ValueError(f"illegal command at cycle {cycle}: {command!r}")
        kind = command.kind
        channel = self.channels[command.channel]
        rank = channel.ranks[command.rank]
        timings = self.timings

        if kind is CommandType.ACT:
            bank = rank.banks[command.bank]
            tfaw, trrd = self.effective_tfaw_trrd(rank, cycle)
            bank.do_activate(cycle, command.row, timings)
            rank.record_activate(cycle, trrd)
            self.stats.activates += 1
            return cycle + timings.tRCD

        if kind.is_read:
            bank = rank.banks[command.bank]
            burst_end = channel.occupy_read_burst(cycle, timings)
            bank.do_read(cycle, timings, autoprecharge=kind.autoprecharges)
            self.stats.reads += 1
            return burst_end

        if kind.is_write:
            bank = rank.banks[command.bank]
            burst_end = channel.occupy_write_burst(cycle, timings)
            bank.do_write(cycle, timings, autoprecharge=kind.autoprecharges)
            self.stats.writes += 1
            return burst_end

        if kind is CommandType.PRE:
            bank = rank.banks[command.bank]
            bank.do_precharge(cycle, timings)
            self.stats.precharges += 1
            return cycle + timings.tRP

        if kind is CommandType.REFPB:
            duration = command.duration or timings.tRFCpb
            rank.start_per_bank_refresh(
                cycle, command.bank, duration, self.sarp_enabled
            )
            self.stats.per_bank_refreshes += 1
            return cycle + duration

        if kind is CommandType.REFAB:
            duration = command.duration or timings.tRFCab
            rank.start_all_bank_refresh(cycle, duration, self.sarp_enabled)
            self.stats.all_bank_refreshes += 1
            return cycle + duration

        raise ValueError(f"unknown command type {kind!r}")

    # -- SARP helpers ------------------------------------------------------------
    def record_subarray_conflict(self, command: Command, count: int = 1) -> None:
        """Record that a demand access was blocked by a refreshing subarray.

        ``count`` lets the event kernel account a whole span of skipped
        cycles at once: a conflict that held during an idle cycle holds
        identically for every cycle of the skipped span.
        """
        bank = self.bank(command.channel, command.rank, command.bank)
        bank.record_subarray_conflict(command.row, count)
        self.stats.subarray_conflicts += count
        if self.tracer is not None:
            # cycle=-1: conflicts are charged to spans, not instants, and
            # the count rides in the record's ``done`` slot.
            self.tracer.decision(
                "SARP_CONFLICT",
                -1,
                command.channel,
                command.rank,
                command.bank,
                command.row,
                count,
            )

    # -- verification helpers ------------------------------------------------------
    def refresh_counts_per_bank(self) -> dict[tuple[int, int, int], int]:
        """Refresh commands received by every bank (for integrity checks)."""
        return {
            (ch, rk, bk): bank.refreshes
            for ch, rk, bk, bank in self.iter_banks()
        }
