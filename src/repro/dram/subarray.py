"""Subarray bookkeeping used by the SARP mechanism.

A DRAM bank physically consists of 32-64 subarrays; following the paper
(footnote 4) we group them into ``subarrays_per_bank`` subarray groups and
refer to each group simply as a subarray.  Refreshing a row only occupies
the subarray containing that row; SARP exploits this by allowing accesses
to the other subarrays of a refreshing bank.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Subarray:
    """Per-subarray statistics and refresh-row bookkeeping."""

    index: int
    rows: int
    #: Number of refresh operations that targeted this subarray.
    refreshes: int = 0
    #: Number of activations (demand accesses) served by this subarray.
    activations: int = 0
    #: Number of accesses that were blocked because this subarray was
    #: being refreshed (a subarray conflict).
    refresh_conflicts: int = 0

    def record_refresh(self) -> None:
        self.refreshes += 1

    def record_activation(self) -> None:
        self.activations += 1

    def record_conflict(self, count: int = 1) -> None:
        self.refresh_conflicts += count


def build_subarrays(subarrays_per_bank: int, rows_per_bank: int) -> list[Subarray]:
    """Create the subarray groups for one bank."""
    if subarrays_per_bank <= 0:
        raise ValueError("subarrays_per_bank must be positive")
    if rows_per_bank % subarrays_per_bank:
        raise ValueError(
            "rows_per_bank must be divisible by subarrays_per_bank "
            f"({rows_per_bank} % {subarrays_per_bank} != 0)"
        )
    rows_per_subarray = rows_per_bank // subarrays_per_bank
    return [
        Subarray(index=i, rows=rows_per_subarray) for i in range(subarrays_per_bank)
    ]
