"""Power-integrity timing scaling used by SARP (Section 4.3.3).

Activating rows draws significant current, so DDR standards bound the
activation rate with tRRD (minimum spacing between two ACTIVATEs) and tFAW
(at most four ACTIVATEs per rolling window).  SARP performs demand
activations while a refresh (itself a sequence of internal activations) is
in progress, so it inflates both parameters during refresh by the power
overhead factor of Equation (1):

    PowerOverheadFAW = (4 * I_ACT + I_REF) / (4 * I_ACT)

Using the Micron 8 Gb DDR3 IDD values the paper reports a 2.1x inflation
during all-bank refresh and 13.8 % during per-bank refresh (a per-bank
refresh draws roughly 8x less current than an all-bank refresh).
"""

from __future__ import annotations

#: Inflation of tFAW/tRRD while an all-bank refresh is in progress (paper value).
SARP_ALL_BANK_SCALE = 2.1

#: Inflation of tFAW/tRRD while a per-bank refresh is in progress (paper value).
SARP_PER_BANK_SCALE = 1.138


def power_overhead_faw(i_act_ma: float, i_ref_ma: float) -> float:
    """Equation (1): power overhead of refreshing during a four-ACT window.

    Parameters are the current drawn by one ACTIVATE and by the concurrent
    refresh operation (both in mA, or any consistent unit).
    """
    if i_act_ma <= 0:
        raise ValueError("i_act_ma must be positive")
    if i_ref_ma < 0:
        raise ValueError("i_ref_ma must be non-negative")
    return (4.0 * i_act_ma + i_ref_ma) / (4.0 * i_act_ma)


def sarp_timing_scale(all_bank: bool) -> float:
    """Timing inflation factor applied to tFAW and tRRD during refresh.

    ``all_bank=True`` corresponds to SARP on all-bank refresh (2.1x);
    ``all_bank=False`` to SARP on per-bank refresh (1.138x).
    """
    return SARP_ALL_BANK_SCALE if all_bank else SARP_PER_BANK_SCALE


def scaled_tfaw_trrd(tfaw: int, trrd: int, all_bank: bool) -> tuple[int, int]:
    """Equations (2) and (3): tFAW and tRRD enforced during refresh by SARP."""
    scale = sarp_timing_scale(all_bank)
    return int(round(tfaw * scale)), int(round(trrd * scale))
