"""DRAM bank state machine.

A bank tracks its open row, the earliest cycles at which each command type
may legally be issued (a timing scoreboard), and its refresh state: whether
a refresh is in progress, which subarray that refresh occupies, and the
internal refresh row counter (DARP requires a separate row counter per bank
because the number of postponed/pulled-in refreshes differs across banks,
Section 4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dram.subarray import Subarray, build_subarrays


@dataclass
class Bank:
    """State of a single DRAM bank."""

    index: int
    rows: int
    subarrays_per_bank: int
    rows_per_refresh: int

    #: Currently open (activated) row, or None when precharged.
    open_row: Optional[int] = None
    #: Earliest cycle an ACTIVATE may be issued to this bank.
    t_act: int = 0
    #: Earliest cycle a column read may be issued.
    t_rd: int = 0
    #: Earliest cycle a column write may be issued.
    t_wr: int = 0
    #: Earliest cycle a precharge may be issued.
    t_pre: int = 0
    #: Cycle at which the current refresh (if any) finishes.
    refresh_until: int = 0
    #: Subarray occupied by the in-progress refresh (None if not refreshing).
    refreshing_subarray: Optional[int] = None
    #: Internal refresh row counter (next row to refresh in this bank).
    refresh_row_counter: int = 0
    #: Bumped by every state transition (``do_*``); the schedulers' frozen
    #: window analysis memoizes per-bank classification keyed on this, so
    #: only banks touched since the last install are re-analyzed.
    stamp: int = 0

    # -- statistics -------------------------------------------------------
    activations: int = 0
    reads: int = 0
    writes: int = 0
    precharges: int = 0
    refreshes: int = 0
    rows_refreshed: int = 0

    subarrays: list[Subarray] = field(default_factory=list)

    #: Struct-of-arrays mirror (:class:`~repro.dram.scoreboard.TimingScoreboard`)
    #: and this bank's ``(channel, rank, bank)`` slot in it.  ``None`` for
    #: standalone banks (unit tests); the device attaches the mirror at
    #: construction, and every timing mutator writes through to it so the
    #: event kernel's horizon reductions can run vectorized.
    _sb: object = None
    _sb_i: tuple = ()

    def __post_init__(self) -> None:
        if not self.subarrays:
            self.subarrays = build_subarrays(self.subarrays_per_bank, self.rows)

    # -- helpers ----------------------------------------------------------
    @property
    def rows_per_subarray(self) -> int:
        return self.rows // self.subarrays_per_bank

    def subarray_of(self, row: int) -> int:
        """Subarray group containing ``row``."""
        return row // self.rows_per_subarray

    def is_refreshing(self, cycle: int) -> bool:
        """True while a refresh operation occupies this bank."""
        return cycle < self.refresh_until

    def is_idle(self, cycle: int) -> bool:
        """True when the bank has no open row and no refresh in progress."""
        return self.open_row is None and not self.is_refreshing(cycle)

    def refresh_conflicts_with(self, cycle: int, row: int) -> bool:
        """True if accessing ``row`` at ``cycle`` collides with the refresh.

        Under SARP this is the *subarray conflict* check: only accesses to
        the subarray currently being refreshed have to wait.
        """
        if not self.is_refreshing(cycle):
            return False
        return self.refreshing_subarray == self.subarray_of(row)

    # -- state transitions (invoked by the device) ------------------------
    def do_activate(self, cycle: int, row: int, timings) -> None:
        """Apply an ACTIVATE command's effects on the bank scoreboard."""
        self.stamp += 1
        self.open_row = row
        self.t_rd = cycle + timings.tRCD
        self.t_wr = cycle + timings.tRCD
        self.t_pre = max(self.t_pre, cycle + timings.tRAS)
        self.t_act = max(self.t_act, cycle + timings.tRC)
        self.activations += 1
        self.subarrays[self.subarray_of(row)].record_activation()
        sb = self._sb
        if sb is not None:
            i = self._sb_i
            sb.t_rd[i] = self.t_rd
            sb.t_wr[i] = self.t_wr
            sb.t_pre[i] = self.t_pre
            sb.t_act[i] = self.t_act

    def do_read(self, cycle: int, timings, autoprecharge: bool) -> int:
        """Apply a column read; returns the cycle the data burst completes."""
        self.stamp += 1
        burst_end = cycle + timings.tCL + timings.tBL
        self.t_pre = max(self.t_pre, cycle + timings.tRTP)
        self.reads += 1
        if autoprecharge:
            self.open_row = None
            self.t_act = max(self.t_act, cycle + timings.tRTP + timings.tRP)
            self.precharges += 1
        sb = self._sb
        if sb is not None:
            i = self._sb_i
            sb.t_pre[i] = self.t_pre
            if autoprecharge:
                sb.t_act[i] = self.t_act
        return burst_end

    def do_write(self, cycle: int, timings, autoprecharge: bool) -> int:
        """Apply a column write; returns the cycle the data burst completes."""
        self.stamp += 1
        burst_end = cycle + timings.tCWL + timings.tBL
        self.t_pre = max(self.t_pre, burst_end + timings.tWR)
        self.writes += 1
        if autoprecharge:
            self.open_row = None
            self.t_act = max(self.t_act, burst_end + timings.tWR + timings.tRP)
            self.precharges += 1
        sb = self._sb
        if sb is not None:
            i = self._sb_i
            sb.t_pre[i] = self.t_pre
            if autoprecharge:
                sb.t_act[i] = self.t_act
        return burst_end

    def do_precharge(self, cycle: int, timings) -> None:
        """Apply an explicit precharge."""
        self.stamp += 1
        self.open_row = None
        self.t_act = max(self.t_act, cycle + timings.tRP)
        self.precharges += 1
        sb = self._sb
        if sb is not None:
            sb.t_act[self._sb_i] = self.t_act

    def do_refresh(self, cycle: int, duration: int, sarp_enabled: bool) -> None:
        """Start a refresh operation of ``duration`` cycles on this bank.

        Without SARP the bank is unavailable for the whole duration; with
        SARP only the subarray containing the refresh row counter is
        occupied and the bank may still activate rows in other subarrays.
        """
        self.stamp += 1
        subarray = self.subarray_of(self.refresh_row_counter)
        self.refresh_until = cycle + duration
        self.refreshing_subarray = subarray
        self.refresh_row_counter = (
            self.refresh_row_counter + self.rows_per_refresh
        ) % self.rows
        self.refreshes += 1
        self.rows_refreshed += self.rows_per_refresh
        self.subarrays[subarray].record_refresh()
        if not sarp_enabled:
            self.t_act = max(self.t_act, cycle + duration)
        sb = self._sb
        if sb is not None:
            i = self._sb_i
            sb.refresh_until[i] = self.refresh_until
            if not sarp_enabled:
                sb.t_act[i] = self.t_act

    def end_refresh_if_done(self, cycle: int) -> None:
        """Clear the refreshing-subarray marker once the refresh completes."""
        if self.refreshing_subarray is not None and cycle >= self.refresh_until:
            self.refreshing_subarray = None

    def record_subarray_conflict(self, row: int, count: int = 1) -> None:
        """Record that an access to ``row`` was blocked by a refresh."""
        self.subarrays[self.subarray_of(row)].record_conflict(count)

    # -- event horizon (cycle-skipping kernel) -----------------------------
    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` at which a timing window of this
        bank expires.

        The scoreboard deadlines (``t_act``/``t_rd``/``t_wr``/``t_pre``)
        and the refresh-completion cycle are the only times at which a
        command that is illegal now can become legal without any other
        state change, so they bound how far the event kernel may safely
        skip.  Deadlines already in the past are irrelevant: the
        conditions they guard are monotone in the cycle number.
        """
        candidates = [
            deadline
            for deadline in (
                self.t_act,
                self.t_rd,
                self.t_wr,
                self.t_pre,
                self.refresh_until,
            )
            if deadline > now
        ]
        return min(candidates) if candidates else None
