"""Memory controller: request queues, pluggable scheduling, write batching.

One :class:`ChannelController` exists per DRAM channel.  Each DRAM cycle it
issues at most one command, chosen with the following priority (mirroring
the DARP scheduling algorithm of Figure 8):

1. a *mandatory* refresh command from the refresh policy (a refresh that can
   no longer be postponed, or a policy-initiated proactive refresh),
2. a demand command selected by the configured scheduler policy (see
   :mod:`repro.controller.policies`; FR-FCFS by default), restricted to
   writes while the channel is in writeback (write-drain) mode,
3. an *opportunistic* refresh command from the refresh policy (a postponed
   or pulled-in refresh to an idle bank).

The demand-scheduling layer is pluggable exactly like the refresh layer:
``ControllerConfig.scheduler`` names a registered
:class:`~repro.controller.policies.SchedulerPolicy`, and
``ControllerConfig.page_policy`` selects closed- or open-row page
management shared by every scheduler.
"""

from repro.controller.memory_controller import (
    ChannelController,
    ControllerStats,
    MemorySystem,
)
from repro.controller.policies import (
    FRFCFSScheduler,
    SchedulerPolicy,
    create_scheduler,
    scheduler_names,
)
from repro.controller.queues import RequestQueues
from repro.controller.request import MemRequest
from repro.controller.write_drain import WriteDrainState

__all__ = [
    "ChannelController",
    "ControllerStats",
    "MemorySystem",
    "FRFCFSScheduler",
    "SchedulerPolicy",
    "create_scheduler",
    "scheduler_names",
    "RequestQueues",
    "MemRequest",
    "WriteDrainState",
]
