"""Memory controller: request queues, FR-FCFS scheduling and write batching.

One :class:`ChannelController` exists per DRAM channel.  Each DRAM cycle it
issues at most one command, chosen with the following priority (mirroring
the DARP scheduling algorithm of Figure 8):

1. a *mandatory* refresh command from the refresh policy (a refresh that can
   no longer be postponed, or a policy-initiated proactive refresh),
2. a demand command selected by FR-FCFS (column hits first, then the oldest
   activate/precharge), restricted to writes while the channel is in
   writeback (write-drain) mode,
3. an *opportunistic* refresh command from the refresh policy (a postponed
   or pulled-in refresh to an idle bank).
"""

from repro.controller.request import MemRequest
from repro.controller.queues import RequestQueues
from repro.controller.write_drain import WriteDrainState
from repro.controller.frfcfs import FRFCFSScheduler
from repro.controller.memory_controller import ChannelController, MemorySystem

__all__ = [
    "MemRequest",
    "RequestQueues",
    "WriteDrainState",
    "FRFCFSScheduler",
    "ChannelController",
    "MemorySystem",
]
