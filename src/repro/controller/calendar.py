"""Calendar queue of controller wake-up cycles for the event kernel.

The event kernel's whole-system skip asks, on every provably idle cycle,
"when can any channel controller act again?".  Answering by re-deriving
each controller's horizon per query costs a scan that grows with channel
count and runs on the hottest idle path.  The calendar inverts the
direction: controllers *post* their wake-up cycle whenever it changes (a
window install, an issue, a queue mutation), and the query side reads the
earliest live posting in amortized O(1).

The structure is a calendar keyed by absolute wake-up cycle with lazy
invalidation: each slot (controller) has at most one *live* posting; a
min-heap orders all postings ever made, and superseded entries are
discarded when they surface at the heap head.  A slot that cannot promise
any horizon — draw mode, a deferred enqueue batch, an uncached window —
*pins* the calendar instead, which clamps every query to ``now + 1``
(step one cycle; never skip).  Pinning is also the universal safe
fallback: a query that finds a live posting in the past returns
``now + 1`` rather than trusting it, so a stale posting can cost a wasted
step but never an unsound skip.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional


class WakeCalendar:
    """Earliest-wake-cycle calendar over a fixed set of slots.

    ``post(slot, cycle)`` records that the slot cannot act before
    ``cycle`` (``None``: no self-scheduled event at all); ``pin(slot)``
    withdraws any such promise until the next post.  ``earliest(now)``
    returns the soonest cycle any slot may act, ``None`` when no slot has
    one, or ``now + 1`` when a pin (or a defensive fallback) forbids
    skipping.
    """

    __slots__ = ("_posted", "_pins", "_heap")

    def __init__(self, slots: int):
        #: Per-slot live posting: the wake cycle, or None (no event /
        #: pinned — disambiguated by membership in ``_pins``).
        self._posted: list[Optional[int]] = [None] * slots
        #: Slots currently refusing to promise a horizon.  All slots
        #: start pinned: nothing is known before the first install.
        self._pins = set(range(slots))
        #: Min-heap of (cycle, slot) postings; entries whose cycle no
        #: longer matches the slot's live posting are stale and dropped
        #: lazily at the head.
        self._heap: list[tuple[int, int]] = []

    def post(self, slot: int, cycle: Optional[int]) -> None:
        """Record the slot's current wake cycle, superseding prior posts."""
        self._pins.discard(slot)
        if self._posted[slot] == cycle:
            return
        self._posted[slot] = cycle
        if cycle is not None:
            heappush(self._heap, (cycle, slot))

    def pin(self, slot: int) -> None:
        """Withdraw the slot's promise: queries step one cycle at a time."""
        self._pins.add(slot)

    def earliest(self, now: int) -> Optional[int]:
        """Earliest cycle any slot may act after ``now`` (None: no event)."""
        if self._pins:
            return now + 1
        heap = self._heap
        posted = self._posted
        while heap:
            cycle, slot = heap[0]
            if posted[slot] != cycle:
                heappop(heap)
                continue
            if cycle <= now:
                # A live posting in the past should be impossible (every
                # posting is refreshed by the tick that precedes a
                # query); never skip on one.
                return now + 1
            return cycle
        return None
