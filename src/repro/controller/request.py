"""Memory request record exchanged between cores, caches and the controller."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.dram.address import PhysicalLocation

_request_ids = itertools.count()


@dataclass(slots=True)
class MemRequest:
    """A single DRAM read or write request.

    Reads are demand cache-line fills on behalf of a core (latency
    critical); writes are dirty-line writebacks from the last-level cache
    (not latency critical, Section 4.2.2).
    """

    address: int
    is_write: bool
    location: PhysicalLocation
    core_id: int = 0
    arrival_cycle: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Cycle at which the DRAM data burst for this request completed.
    completion_cycle: Optional[int] = None

    @property
    def is_read(self) -> bool:
        return not self.is_write

    @property
    def bank_key(self) -> tuple[int, int]:
        """(rank, bank) within the request's channel."""
        return (self.location.rank, self.location.bank)

    @property
    def channel(self) -> int:
        return self.location.channel

    @property
    def row(self) -> int:
        return self.location.row

    def latency(self) -> Optional[int]:
        """Queueing + service latency in DRAM cycles, if completed."""
        if self.completion_cycle is None:
            return None
        return self.completion_cycle - self.arrival_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "WR" if self.is_write else "RD"
        loc = self.location
        return (
            f"MemRequest({kind}, core={self.core_id}, ch={loc.channel}, "
            f"rk={loc.rank}, bk={loc.bank}, row={loc.row}, col={loc.column})"
        )
