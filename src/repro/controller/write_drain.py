"""Write-batching (writeback mode) state machine.

Modern controllers buffer DRAM writes and drain them in batches to amortize
the half-duplex bus turnaround penalty.  The channel enters *writeback mode*
when the write queue exceeds a high watermark and keeps draining writes
(while refusing to serve reads) until the queue falls to the low watermark
(32 in the paper's configuration, Table 1).  DARP's write-refresh
parallelization schedules per-bank refreshes during exactly these intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.controller_config import ControllerConfig


@dataclass
class WriteDrainState:
    """Hysteresis state machine controlling writeback mode."""

    config: ControllerConfig
    in_drain: bool = False
    #: Number of writeback-mode episodes entered.
    episodes: int = 0
    #: Total cycles spent in writeback mode.
    drain_cycles: int = 0

    def update(self, write_queue_occupancy: int, read_queue_occupancy: int) -> bool:
        """Advance the state machine for this cycle; returns ``in_drain``.

        Writeback mode starts when the write queue reaches the high
        watermark; it ends when occupancy drops to the low watermark.  If
        the read queue is empty the controller also drains writes
        opportunistically (this keeps light workloads from deadlocking on a
        full write queue without ever reaching the watermark), but such
        opportunistic draining does not count as writeback mode.
        """
        if self.in_drain:
            if write_queue_occupancy <= self.config.write_low_watermark:
                self.in_drain = False
            else:
                self.drain_cycles += 1
        elif write_queue_occupancy >= self.config.write_high_watermark:
            self.in_drain = True
            self.episodes += 1
            self.drain_cycles += 1
        return self.in_drain

    def skip_cycles(self, write_queue_occupancy: int, count: int) -> None:
        """Account ``count`` skipped idle cycles with frozen queue occupancy.

        After an :meth:`update` call the state machine is at a fixed point
        for its inputs (it never re-enters drain in the same conditions it
        just left), so the only per-cycle effect replaying ``count`` more
        updates could have is the in-drain cycle counter.
        """
        if self.in_drain and write_queue_occupancy > self.config.write_low_watermark:
            self.drain_cycles += count

    def should_serve_writes(
        self,
        write_queue_occupancy: int,
        read_queue_occupancy: int,
    ) -> bool:
        """True when the scheduler should pick from the write queue."""
        if self.in_drain:
            return True
        return read_queue_occupancy == 0 and write_queue_occupancy > 0
