"""Channel controllers and the memory system front end.

The :class:`MemorySystem` is the interface the processor side uses: it maps
physical addresses to DRAM locations, enqueues requests into the owning
channel controller, advances all controllers each DRAM cycle, and returns
completed read requests so cores can wake up their pending loads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import Optional

import repro.obs.profile as obs_profile
from repro.config.system import SystemConfig
from repro.controller.calendar import WakeCalendar
from repro.controller.policies import create_scheduler
from repro.controller.policies.frfcfs import WIN_ACT, WIN_COL
from repro.controller.queues import RequestQueues
from repro.controller.request import MemRequest
from repro.controller.write_drain import WriteDrainState
from repro.dram.address import AddressMapper
from repro.dram.commands import Command, CommandType
from repro.dram.device import DRAMDevice
from repro.stats import StatsSchema, StatsStruct, WeightedAverage, register_schema


@dataclass
class ControllerStats(StatsStruct):
    """Per-channel service statistics.

    Merging across channels goes through :attr:`SCHEMA`: the latency
    counters merge as raw totals and the average latencies are recomputed
    from the merged totals — a weighted average by construction, never a
    sum of per-channel averages.
    """

    SCHEMA = register_schema(
        StatsSchema(
            "controller",
            fields=(
                "served_reads",
                "served_writes",
                "total_read_latency",
                "total_write_latency",
                "issued_commands",
                "rejected_enqueues",
            ),
            derived=(
                WeightedAverage(
                    "average_read_latency", "total_read_latency", "served_reads"
                ),
                WeightedAverage(
                    "average_write_latency", "total_write_latency", "served_writes"
                ),
            ),
        )
    )

    served_reads: int = 0
    served_writes: int = 0
    total_read_latency: int = 0
    total_write_latency: int = 0
    issued_commands: int = 0
    rejected_enqueues: int = 0

    @property
    def average_read_latency(self) -> float:
        if not self.served_reads:
            return 0.0
        return self.total_read_latency / self.served_reads

    @property
    def average_write_latency(self) -> float:
        if not self.served_writes:
            return 0.0
        return self.total_write_latency / self.served_writes


class ChannelController:
    """Memory controller for one DRAM channel."""

    def __init__(
        self,
        channel_id: int,
        config: SystemConfig,
        device: DRAMDevice,
        refresh_policy,
        tracer=None,
    ):
        self.channel_id = channel_id
        self.config = config
        self.device = device
        #: Optional :class:`~repro.obs.trace.CommandTracer`.  ``None`` when
        #: tracing is off, so the hot-path cost is one identity check.
        self.tracer = tracer
        org = config.dram.organization
        bank_keys = [
            (rank, bank)
            for rank in range(org.ranks_per_channel)
            for bank in range(org.banks_per_rank)
        ]
        self.queues = RequestQueues(
            config.controller.read_queue_entries,
            config.controller.write_queue_entries,
            bank_keys,
        )
        self.drain = WriteDrainState(config.controller)
        self.scheduler = create_scheduler(config.controller.scheduler, self)
        self.refresh_policy = refresh_policy
        self.refresh_policy.bind(self)
        self.stats = ControllerStats()
        self._pending_reads: list[tuple[int, int, MemRequest]] = []
        #: True when the most recent :meth:`tick` issued a DRAM command.
        #: The event kernel uses it to detect system-wide no-op cycles.
        self.last_tick_issued = False
        #: Retirement counters for read/write requests.  Cores blocked on a
        #: full queue sleep until the matching counter changes (queue space
        #: can appear in no other way).
        self.read_retires = 0
        self.write_retires = 0
        #: Event-kernel scheduling cache: cycles strictly below
        #: ``_sleep_until`` are provably scheduling no-ops as long as the
        #: request queues keep ``_sleep_queue_version``.  ``None`` means
        #: "no self-scheduled event at all"; 0 means "not cached".
        self._sleep_until: Optional[int] = 0
        self._sleep_queue_version = -1
        #: When the frozen window expires exactly at a *demand* ready cycle
        #: — strictly before every policy/refresh deadline it is clamped by
        #: — the expiry tick is a fast issue: ``select``'s outcome is the
        #: first schedule entry whose ready cycle has passed, so the full
        #: pre-demand/FR-FCFS/post-demand scan is skipped.  ``None`` means
        #: the window expiry needs a reference tick.
        self._demand_wake: Optional[int] = None
        #: Refresh-walk state cached across incremental installs (policy
        #: state and untouched-bank deadlines are frozen over a licensed
        #: span): candidate banks per rank, the per-bank deadline minima,
        #: and the rank-level refresh-occupancy minimum.
        self._walk_banks: list = []
        self._walk_map: dict = {}
        self._walk_rank_min: Optional[int] = None
        #: Policy schedule cached across incremental installs: the license
        #: keeps every wake strictly below the policy's next event, so the
        #: value computed at the last full install is still exact.
        self._policy_event: Optional[int] = None
        #: In-window enqueues are *deferred*: the touched bank keys are
        #: batched here and folded into the window in one incremental
        #: install at the top of the next tick (the very next cycle — the
        #: skip horizon is pinned while a batch is pending), so a burst of
        #: same-cycle enqueues re-evaluates the window once, not per core.
        self._dirty_keys: Optional[list] = None
        self._dirty_version = -1
        #: Wake calendar shared across the memory system (bound by
        #: :class:`MemorySystem`); every event tick ends by posting this
        #: controller's wake-up cycle so :meth:`MemorySystem
        #: .next_skip_event` answers in O(1) instead of rescanning.
        self.calendar = None
        #: While True, window cycles are *draw ticks*: the refresh policy
        #: consumes randomness (and may issue) every cycle, so the fast
        #: path must call its real ``post_demand`` instead of skipping it.
        self._draw_mode = False
        #: Which hook issued the last tick's command ("pre" / "demand" /
        #: "post" / None); pre-demand issues block window installation
        #: because ``pre_demand`` may act again next cycle ungated (its
        #: early return leaves later options untried this cycle).
        self._issue_source: Optional[str] = None

    # -- request intake -----------------------------------------------------
    def can_accept(self, is_write: bool) -> bool:
        if is_write:
            return not self.queues.write_full()
        return not self.queues.read_full()

    def enqueue(self, request: MemRequest) -> bool:
        """Enqueue a request; returns False (and drops it) if the queue is full."""
        queues = self.queues
        if not queues.can_accept(request):
            self.stats.rejected_enqueues += 1
            return False
        version = queues.version
        live = self._sleep_until != 0 and (
            version == self._sleep_queue_version
            or (self._dirty_keys is not None and version == self._dirty_version)
        )
        queues.enqueue(request)
        if self.calendar is not None:
            # The cached wake no longer covers the new request; forbid
            # whole-system skips until the next tick re-posts.
            self.calendar.pin(self.channel_id)
        if live:
            self._enqueue_update(request)
        else:
            self._dirty_keys = None
        return True

    def _enqueue_update(self, request: MemRequest) -> None:
        """Fold an in-window enqueue into the frozen window incrementally.

        An enqueue only touches one bank's demand queue; for policies that
        certify enqueues cannot *add* pre-demand options
        (:meth:`RefreshPolicy.enqueue_preserves_window` — demand arriving
        can only make banks non-idle, removing refresh opportunities), the
        rest of the frozen-window proof still holds, so the new request is
        spliced into the persistent candidate set and the window
        re-evaluated in place of the reference tick the version mismatch
        would otherwise force.  Two extra guards mirror the post-issue
        install: the write-drain state must remain at a fixed point with
        the new occupancy, and the policy must not be per-cycle stateful.
        Declining is always sound — the version mismatch then falls back
        to a full reference tick.

        The splice itself is *deferred*: the bank key joins
        :attr:`_dirty_keys` and the batch is drained in one incremental
        install at the top of the next tick, which is always the very
        next cycle (cores only enqueue on cycles they are active, and
        :meth:`skip_horizon` pins the horizon while a batch is pending),
        so same-cycle enqueues from several cores cost one window
        evaluation instead of one each.
        """
        policy = self.refresh_policy
        if not policy.enqueue_preserves_window():
            self._dirty_keys = None
            return
        occupancy = self.queues.write_count
        cfg = self.config.controller
        if self.drain.in_drain:
            if occupancy <= cfg.write_low_watermark:
                self._dirty_keys = None
                return
        elif occupancy >= cfg.write_high_watermark:
            self._dirty_keys = None
            return
        keys = self._dirty_keys
        if keys is None:
            self._dirty_keys = [request.bank_key]
        else:
            keys.append(request.bank_key)
        self._dirty_version = self.queues.version

    # -- state queries used by refresh policies ------------------------------
    @property
    def in_writeback_mode(self) -> bool:
        return self.drain.in_drain

    def demand_count(self, rank: int, bank: int) -> int:
        return self.queues.demand_count((rank, bank))

    def rank_demand_count(self, rank: int) -> int:
        return self.queues.rank_demand_count(rank)

    # -- per-cycle operation ---------------------------------------------------
    def tick(self, cycle: int) -> list[MemRequest]:
        """Advance one DRAM cycle; returns reads whose data arrived."""
        completed = self._pop_completed_reads(cycle)
        self.drain.update(self.queues.write_count, self.queues.read_count)
        self.last_tick_issued = True

        command = self.refresh_policy.pre_demand(cycle)
        if command is not None:
            self._issue_source = "pre"
            self._issue(command, cycle)
            return completed

        selection = self.scheduler.select(cycle)
        if selection is not None:
            command, request = selection
            self._issue_source = "demand"
            done = self._issue(command, cycle)
            if command.kind.is_column and request is not None:
                self._retire_request(request, done)
            return completed

        command = self.refresh_policy.post_demand(cycle)
        if command is not None:
            self._issue_source = "post"
            self._issue(command, cycle)
            return completed
        self._issue_source = None
        self.last_tick_issued = False
        return completed

    # -- internals ----------------------------------------------------------------
    def _issue(self, command: Command, cycle: int) -> int:
        done = self.device.issue(command, cycle)
        self.stats.issued_commands += 1
        if self.tracer is not None:
            self.tracer.command(command, cycle, done)
        return done

    def _retire_request(self, request: MemRequest, completion_cycle: int) -> None:
        self.queues.remove(request)
        request.completion_cycle = completion_cycle
        if request.is_write:
            self.stats.served_writes += 1
            self.write_retires += 1
            self.stats.total_write_latency += completion_cycle - request.arrival_cycle
        else:
            self.stats.served_reads += 1
            self.read_retires += 1
            self.stats.total_read_latency += completion_cycle - request.arrival_cycle
            heapq.heappush(
                self._pending_reads,
                (completion_cycle, request.request_id, request),
            )

    def _pop_completed_reads(self, cycle: int) -> list[MemRequest]:
        completed = []
        while self._pending_reads and self._pending_reads[0][0] <= cycle:
            _, _, request = heapq.heappop(self._pending_reads)
            completed.append(request)
        return completed

    def has_outstanding_work(self) -> bool:
        """True while any request is queued or awaiting completion."""
        return bool(self.queues.total_demand() or self._pending_reads)

    # -- cycle-skipping kernel support ------------------------------------------
    def tick_event(self, cycle: int) -> list[MemRequest]:
        """Event-kernel tick: identical behaviour to :meth:`tick`, faster.

        While a frozen *sleep window* holds, scheduling is a pure function
        of the cycle number: the fast path skips the whole pre-demand /
        FR-FCFS / post-demand scan and replays only the per-cycle side
        effects the full tick would have produced (data arrivals, the
        writeback-mode cycle counter, re-recorded SARP conflicts); in draw
        mode it additionally runs the refresh policy's real randomized
        draw each cycle.  A window is installed after *every* full tick —
        including issuing ones, where the scheduler's exact
        :meth:`~repro.controller.policies.frfcfs.FRFCFSScheduler.demand_window`
        proves readiness from the post-issue deadlines — unless a guard in
        :meth:`_install_window` forbids it.  :meth:`tick` itself is left
        untouched so the cycle kernel remains an independent reference for
        the differential suite.
        """
        keys = self._dirty_keys
        if keys is not None:
            # Drain the deferred enqueue batch: one incremental install
            # covers every enqueue since the last tick (always last
            # cycle's — the skip horizon is pinned while a batch waits),
            # re-synchronising the window with the queue version.
            self._dirty_keys = None
            if self.queues.version == self._dirty_version:
                self._compute_window(cycle - 1, dirty=keys)
        if self.queues.version == self._sleep_queue_version:
            sleep_until = self._sleep_until
            if sleep_until is None or cycle < sleep_until:
                if self._draw_mode:
                    return self._draw_tick(cycle)
                pending = self._pending_reads
                completed = (
                    self._pop_completed_reads(cycle)
                    if pending and pending[0][0] <= cycle
                    else []
                )
                drain = self.drain
                if drain.in_drain:
                    drain.skip_cycles(self.queues.write_count, 1)
                conflicts = self.scheduler.last_conflicts
                if conflicts:
                    for command in conflicts:
                        self.device.record_subarray_conflict(command)
                self.last_tick_issued = False
                self._post_wake()
                return completed
            if cycle == self._demand_wake:
                return self._fast_issue_tick(cycle)
        completed = self.tick(cycle)
        self._install_window(cycle)
        self._post_wake()
        return completed

    def _post_wake(self) -> None:
        """Post this controller's wake-up cycle to the shared calendar.

        Runs at the end of every event tick, so the calendar is always
        fresh when the kernel queries it (queries only happen on cycles
        where every tick was a no-op).  A controller that cannot promise
        a horizon — draw mode, a pending enqueue batch, an uncached
        window — pins the calendar instead, forcing single-cycle steps.
        """
        calendar = self.calendar
        if calendar is None:
            return
        if (
            self._draw_mode
            or self._sleep_until == 0
            or self._dirty_keys is not None
            or self.queues.version != self._sleep_queue_version
        ):
            calendar.pin(self.channel_id)
            return
        wake = self._sleep_until
        pending = self._pending_reads
        if pending:
            arrival = pending[0][0]
            if wake is None or arrival < wake:
                wake = arrival
        calendar.post(self.channel_id, wake)

    def _fast_issue_tick(self, cycle: int) -> list[MemRequest]:
        """Window expiry at a licensed demand-ready cycle: issue directly.

        The frozen window proved every scheduling hook idle through the
        window, the expiry cycle is strictly earlier than every policy /
        refresh-walk / conflict-expiry deadline, and the queues kept their
        version — so at this cycle ``pre_demand`` is still a no-op and
        ``select``'s outcome is fully determined by the stashed schedule:
        the first candidate (in probe order) whose exact ready cycle has
        passed issues, and the failing conflicting activates probed before
        it record their subarray conflicts.  Replaying that outcome from
        :attr:`~repro.controller.policies.base.SchedulerPolicy
        .window_schedule` skips the whole pre-demand / FR-FCFS /
        post-demand scan (``post_demand`` never runs on an issuing tick in
        the reference kernel, so no randomness is consumed even in draw
        mode).
        """
        scheduler = self.scheduler
        winner_pos = -1
        for pos, ready in enumerate(scheduler.window_ready):
            if ready <= cycle:
                winner_pos = pos
                break
        if winner_pos < 0:
            # Defensive: the license guarantees a ready candidate, but a
            # reference tick is always sound.
            completed = self.tick(cycle)
            self._install_window(cycle)
            return completed
        completed = self._pop_completed_reads(cycle)
        self.drain.update(self.queues.write_count, self.queues.read_count)
        conflicts: list[Command] = []
        for pos, expiry, conflict in scheduler.window_conflicts:
            if pos < winner_pos and expiry > cycle:
                self.device.record_subarray_conflict(conflict)
                conflicts.append(conflict)
        scheduler.last_conflicts = conflicts
        entry = scheduler.window_schedule[winner_pos]
        req = entry[2]
        kind = entry[3]
        rank_i = entry[6]
        bank_i = entry[7]
        if kind == WIN_COL:
            command = scheduler._column_command(req, scheduler.window_writes)
        elif kind == WIN_ACT:
            command = Command(
                kind=CommandType.ACT,
                channel=self.channel_id,
                rank=rank_i,
                bank=bank_i,
                row=req.row,
                request=req,
            )
        else:
            command = Command(
                kind=CommandType.PRE,
                channel=self.channel_id,
                rank=rank_i,
                bank=bank_i,
            )
        scheduler.note_issue(command)
        self._issue_source = "demand"
        self.last_tick_issued = True
        done = self._issue(command, cycle)
        if kind == WIN_COL:
            self._retire_request(req, done)
        self._install_window(cycle, dirty=((rank_i, bank_i),))
        self._post_wake()
        return completed

    def _draw_tick(self, cycle: int) -> list[MemRequest]:
        """Window cycle for a policy that draws randomness every idle cycle.

        The window proves pre-demand and demand scheduling are no-ops, but
        DARP's ``post_demand`` still draws a random pool bank per rank and
        may issue a refresh; running the real hook keeps the RNG stream —
        and any resulting issue — bit-identical to the reference kernel.
        An issue ends the frozen span exactly like a full issuing tick.
        """
        pending = self._pending_reads
        completed = (
            self._pop_completed_reads(cycle)
            if pending and pending[0][0] <= cycle
            else []
        )
        drain = self.drain
        if drain.in_drain:
            drain.skip_cycles(self.queues.write_count, 1)
        conflicts = self.scheduler.last_conflicts
        if conflicts:
            for command in conflicts:
                self.device.record_subarray_conflict(command)
        command = self.refresh_policy.post_demand(cycle)
        if command is not None:
            self._issue_source = "post"
            self._issue(command, cycle)
            self.last_tick_issued = True
            self._install_window(cycle)
            self._post_wake()
        else:
            self.last_tick_issued = False
        return completed

    def _install_window(self, cycle: int, dirty=None) -> None:
        """Cache the frozen sleep window opening at ``cycle``.

        After a *no-op* tick every window is sound: the tick itself proved
        all scheduling hooks idle, and they stay idle until a watched
        deadline passes.  After an *issuing* tick three extra guards
        apply, each covering a way the issue could enable an action at
        ``cycle + 1`` that no deadline gates:

        * the policy must opt in (:attr:`RefreshPolicy
          .supports_post_issue_freeze`) — per-cycle-stateful policies need
          the reference tick;
        * a pre-demand issue always voids the window: ``pre_demand``
          returned early, so untried options (another forced bank, a
          precharge) may be legal immediately;
        * the write-drain state must be at a fixed point — a retired write
          can put occupancy past a watermark, flipping writeback mode on
          the very next ``update``.
        """
        if self.last_tick_issued:
            if (
                self._issue_source == "pre"
                or not self.refresh_policy.supports_post_issue_freeze
            ):
                self._sleep_until = 0
                self._demand_wake = None
                return
            occupancy = self.queues.write_count
            cfg = self.config.controller
            if self.drain.in_drain:
                if occupancy <= cfg.write_low_watermark:
                    self._sleep_until = 0
                    self._demand_wake = None
                    return
            elif occupancy >= cfg.write_high_watermark:
                self._sleep_until = 0
                self._demand_wake = None
                return
        profiler = obs_profile.ACTIVE
        if profiler is None:
            self._compute_window(cycle, dirty)
            return
        start = perf_counter()
        try:
            self._compute_window(cycle, dirty)
        finally:
            profiler.add("controller.horizon_scan", perf_counter() - start)

    def _compute_window(self, now: int, dirty=None) -> None:
        """Earliest cycle after ``now`` at which this channel's scheduling
        outcome can change without a queue mutation (``None``: never).

        Combines the three sources of self-scheduled change: the refresh
        policy's own schedule, the exact demand window the scheduler
        derives from its frozen candidate set (including the SARP conflict
        set to replay each window cycle), and the timing state of banks
        the policy is currently trying to refresh (their activity windows,
        refresh completions, and — for open banks — the precharge that
        must clear them first).
        """
        policy = self.refresh_policy
        if dirty is None:
            policy_event = policy.next_scheduled_event(now)
            if policy_event is not None and policy_event <= now:
                policy_event = None
            self._policy_event = policy_event
        else:
            # The license placed every wake strictly before the policy's
            # next event, so the value cached at the last full install is
            # still exact (and still strictly in the future).
            policy_event = self._policy_event

        demand_event, conflicts = self.scheduler.demand_window(now, dirty)

        # Refresh candidates need their bank free of activity (t_act,
        # refresh markers) or a precharge first (t_pre); column deadlines
        # can never gate a refresh.  Rank-level refresh occupancy gates
        # the legality of further refreshes in the rank.  The candidate
        # lists — and every deadline of an *untouched* bank — are frozen
        # across a licensed fast issue or in-window enqueue (``dirty``
        # set): the license puts the wake strictly before every walked
        # deadline, so none can have passed.  Incremental installs
        # therefore refresh only the dirty bank's slot in the cached
        # per-bank walk minima instead of re-walking every bank.
        channel = self.device.channels[self.channel_id]
        ranks = channel.ranks
        if dirty is None:
            walk_banks = [
                policy.refresh_candidate_banks(rank_index)
                for rank_index in range(len(ranks))
            ]
            self._walk_banks = walk_banks
            walk_map: dict = {}
            rank_vals = []
            for rank_index, rank in enumerate(ranks):
                refresh_banks = walk_banks[rank_index]
                if not refresh_banks:
                    continue
                if rank.refab_until > now:
                    rank_vals.append(rank.refab_until)
                if rank.pb_refresh_until > now:
                    rank_vals.append(rank.pb_refresh_until)
                banks = rank.banks
                for bank_index in refresh_banks:
                    bank = banks[bank_index]
                    slot = None
                    if bank.t_act > now:
                        slot = bank.t_act
                    until = bank.refresh_until
                    if until > now and (slot is None or until < slot):
                        slot = until
                    if bank.open_row is not None:
                        t_pre = bank.t_pre
                        if t_pre > now and (slot is None or t_pre < slot):
                            slot = t_pre
                    if slot is not None:
                        walk_map[(rank_index, bank_index)] = slot
            self._walk_map = walk_map
            self._walk_rank_min = min(rank_vals) if rank_vals else None
        else:
            walk_map = self._walk_map
            for key in dirty:
                rank_index, bank_index = key
                if bank_index not in self._walk_banks[rank_index]:
                    continue
                bank = ranks[rank_index].banks[bank_index]
                slot = None
                if bank.t_act > now:
                    slot = bank.t_act
                until = bank.refresh_until
                if until > now and (slot is None or until < slot):
                    slot = until
                if bank.open_row is not None:
                    t_pre = bank.t_pre
                    if t_pre > now and (slot is None or t_pre < slot):
                        slot = t_pre
                if slot is not None:
                    walk_map[key] = slot
                else:
                    walk_map.pop(key, None)
        other_min = policy_event
        if walk_map:
            walk_min = min(walk_map.values())
            if other_min is None or walk_min < other_min:
                other_min = walk_min
        rank_min = self._walk_rank_min
        if rank_min is not None and (other_min is None or rank_min < other_min):
            other_min = rank_min

        # Fast-issue license: when the window expires at the demand
        # horizon *strictly before* every policy/refresh deadline and
        # every recorded conflict's expiry, the expiry tick's outcome is
        # fully determined by the stashed schedule (pre-demand provably
        # still idle, conflict replay set unchanged) — provided the policy
        # tolerates post-issue freezing, since the fast issue installs the
        # next window without a reference tick.
        wake = None
        sleep_until = other_min
        if demand_event is not None:
            if sleep_until is None or demand_event < sleep_until:
                sleep_until = demand_event
            scheduler = self.scheduler
            expiry = scheduler.window_conflict_expiry
            if (
                policy.supports_post_issue_freeze
                and scheduler.window_demand_ready is not None
                and (expiry is None or demand_event < expiry)
                and (other_min is None or demand_event < other_min)
            ):
                wake = demand_event
        self._demand_wake = wake
        self._sleep_until = sleep_until
        self._sleep_queue_version = self.queues.version
        self._draw_mode = policy.wants_draw_ticks()
        # The window's conflict set is exactly what a no-op ``select``
        # would record on each window cycle; the fast path and
        # ``skip_idle_cycles`` replay it from here.
        self.scheduler.last_conflicts = conflicts

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` at which this controller's observable
        behaviour can differ from the no-op cycle just executed.

        That is the earliest of: the next pending-read data arrival (which
        wakes a core) and the refresh policy's own horizon (the next
        scheduled refresh becoming due, or a policy-specific trigger such as
        elastic refresh's idle threshold).  Device timing-window expiries
        are accounted separately by :meth:`DRAMDevice.next_event_cycle`;
        :meth:`MemorySystem.next_event_cycle` combines the two into the
        conservative reference horizon.  The event kernel's hot path uses
        the tighter cached horizons (:meth:`_local_next_event` via
        :meth:`MemorySystem.next_skip_event`) instead.
        """
        candidates = []
        if self._pending_reads:
            arrival = self._pending_reads[0][0]
            if arrival > now:
                candidates.append(arrival)
        policy_event = self.refresh_policy.next_event_cycle(now)
        if policy_event is not None and policy_event > now:
            candidates.append(policy_event)
        return min(candidates) if candidates else None

    def skip_idle_cycles(self, count: int) -> None:
        """Account ``count`` skipped cycles after a no-op tick.

        Replays exactly the per-cycle side effects the legacy kernel would
        have produced over the span: the writeback-mode cycle counter, the
        SARP subarray conflicts the scheduler re-records every stalled
        cycle, and any policy-internal accounting (DARP's random idle-bank
        draws).  Everything else is provably frozen until the next event.
        """
        self.drain.skip_cycles(self.queues.write_count, count)
        for command in self.scheduler.last_conflicts:
            self.device.record_subarray_conflict(command, count)
        self.refresh_policy.skip_cycles(count)

    def skip_horizon(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` this controller can act again.

        Only valid immediately after a :meth:`tick_event` in which this
        controller issued nothing: the cached local horizon is then fresh
        (or still valid), so the controller's next possible action is the
        earlier of that horizon and its next pending-read data arrival.
        This is the public accessor :meth:`MemorySystem.next_skip_event`
        aggregates; ``None`` means "no self-scheduled event at all".
        """
        if self._draw_mode:
            # Every window cycle consumes randomness (and may issue), so
            # whole-system skipping is off: the kernel must step cycle by
            # cycle through the (cheap) draw ticks.
            return now + 1
        if self._dirty_keys is not None:
            # A deferred enqueue batch is waiting to be folded in at the
            # next tick; the cached horizon does not cover the new
            # request, so pin the skip there.  (Other queue mutations are
            # covered by the calendar pin :meth:`enqueue` posts.)
            return now + 1
        candidates = []
        if self._pending_reads:
            arrival = self._pending_reads[0][0]
            if arrival > now:
                candidates.append(arrival)
        sleep_until = self._sleep_until
        if sleep_until is not None and sleep_until > now:
            candidates.append(sleep_until)
        return min(candidates) if candidates else None


class MemorySystem:
    """The full DRAM memory system: address mapping + all channel controllers."""

    def __init__(self, config: SystemConfig):
        # Imported lazily to keep the substrate (controller) importable
        # without the policy layer and avoid a circular import.
        from repro.core.factory import create_refresh_policy

        self.config = config
        self.mapper = AddressMapper(config.dram.organization)
        self.device = DRAMDevice(
            config.dram, sarp_enabled=config.refresh.mechanism.uses_sarp
        )
        if config.obs.trace:
            from repro.obs.trace import CommandTracer

            self.tracer = CommandTracer(config.obs.trace_buffer)
        else:
            self.tracer = None
        self.device.tracer = self.tracer
        self.controllers = [
            ChannelController(
                channel_id=ch,
                config=config,
                device=self.device,
                refresh_policy=create_refresh_policy(config, ch),
                tracer=self.tracer,
            )
            for ch in range(config.dram.organization.channels)
        ]
        #: True when the most recent :meth:`tick` issued any DRAM command.
        self.last_tick_issued = False
        #: Calendar of controller wake-up cycles: controllers post into it
        #: at the end of every event tick, and :meth:`next_skip_event`
        #: reads the earliest live posting in O(1).
        self.calendar = WakeCalendar(len(self.controllers))
        for controller in self.controllers:
            controller.calendar = self.calendar

    # -- processor-side interface ------------------------------------------------
    def controller_for(self, address: int) -> ChannelController:
        location = self.mapper.decode(address)
        return self.controllers[location.channel]

    def can_accept(self, address: int, is_write: bool) -> bool:
        return self.controller_for(address).can_accept(is_write)

    def access(
        self, address: int, is_write: bool, core_id: int, cycle: int
    ) -> Optional[MemRequest]:
        """Enqueue a request; returns it, or None if the target queue is full."""
        location = self.mapper.decode(address)
        controller = self.controllers[location.channel]
        request = MemRequest(
            address=address,
            is_write=is_write,
            location=location,
            core_id=core_id,
            arrival_cycle=cycle,
        )
        if controller.enqueue(request):
            return request
        return None

    def tick(self, cycle: int) -> list[MemRequest]:
        """Advance every controller one DRAM cycle; returns completed reads."""
        self.device.tick(cycle)
        completed: list[MemRequest] = []
        issued = False
        for controller in self.controllers:
            completed.extend(controller.tick(cycle))
            issued = issued or controller.last_tick_issued
        self.last_tick_issued = issued
        return completed

    # -- cycle-skipping kernel support ----------------------------------------
    def tick_event(self, cycle: int) -> list[MemRequest]:
        """Event-kernel tick: every controller advances via its fast path.

        The per-cycle device sweep (:meth:`DRAMDevice.tick`) only clears
        expired refresh markers lazily; every reader of those markers
        checks the refresh deadline first, so the sweep can be elided
        entirely without observable effect — the cycle kernel keeps it as
        the reference behaviour.
        """
        completed: list[MemRequest] = []
        issued = False
        for controller in self.controllers:
            completed.extend(controller.tick_event(cycle))
            issued = issued or controller.last_tick_issued
        self.last_tick_issued = issued
        return completed

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` at which any memory-side state can
        change, assuming no processor-side activity in between.

        This is the *conservative reference* horizon — every timing window
        of every bank/rank/channel plus all controller events — kept
        deliberately simple so tests can check the tighter per-controller
        horizons of the hot path against it.
        """
        candidates = []
        device_event = self.device.next_event_cycle(now)
        if device_event is not None:
            candidates.append(device_event)
        for controller in self.controllers:
            controller_event = controller.next_event_cycle(now)
            if controller_event is not None:
                candidates.append(controller_event)
        return min(candidates) if candidates else None

    def next_skip_event(self, now: int) -> Optional[int]:
        """Cheap skip horizon for the event kernel.

        Only valid immediately after a :meth:`tick_event` in which no
        controller issued a command: every controller then has posted a
        fresh wake-up cycle into the shared :class:`WakeCalendar`, so the
        earliest memory event is the calendar's earliest live posting —
        an O(1) read instead of a per-controller rescan.  The scan-based
        :meth:`ChannelController.skip_horizon` remains as the reference
        the differential suite checks the calendar against.
        """
        return self.calendar.earliest(now)

    def scan_skip_event(self, now: int) -> Optional[int]:
        """Reference skip horizon: per-controller scan (no calendar).

        Kept as the slow-but-obviously-correct counterpart of
        :meth:`next_skip_event` for differential tests; the calendar may
        legally be *tighter* pinned (return ``now + 1``) but must never
        promise a later cycle than this scan allows.
        """
        candidates = []
        for controller in self.controllers:
            horizon = controller.skip_horizon(now)
            if horizon is not None:
                candidates.append(horizon)
        return min(candidates) if candidates else None

    def skip_idle_cycles(self, count: int) -> None:
        """Account ``count`` skipped cycles on every channel controller."""
        for controller in self.controllers:
            controller.skip_idle_cycles(count)

    # -- statistics ----------------------------------------------------------------
    def merged_controller_stats(self) -> dict:
        """Cross-channel controller statistics, merged under the schema.

        The latency averages come out weighted by served request counts
        (recomputed from the merged raw totals), never summed.
        """
        return ControllerStats.merge_dicts(
            controller.stats.as_dict() for controller in self.controllers
        )

    def total_served(self) -> tuple[int, int]:
        merged = self.merged_controller_stats()
        return merged["served_reads"], merged["served_writes"]

    def refresh_policy_stats(self) -> dict:
        from repro.core.base import RefreshStats

        return RefreshStats.merge_dicts(
            controller.refresh_policy.stats_dict() for controller in self.controllers
        )

    def has_outstanding_work(self) -> bool:
        return any(c.has_outstanding_work() for c in self.controllers)
