"""Channel controllers and the memory system front end.

The :class:`MemorySystem` is the interface the processor side uses: it maps
physical addresses to DRAM locations, enqueues requests into the owning
channel controller, advances all controllers each DRAM cycle, and returns
completed read requests so cores can wake up their pending loads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.config.system import SystemConfig
from repro.controller.frfcfs import FRFCFSScheduler
from repro.controller.queues import RequestQueues
from repro.controller.request import MemRequest
from repro.controller.write_drain import WriteDrainState
from repro.dram.address import AddressMapper
from repro.dram.commands import Command, CommandType
from repro.dram.device import DRAMDevice


@dataclass
class ControllerStats:
    """Per-channel service statistics."""

    served_reads: int = 0
    served_writes: int = 0
    total_read_latency: int = 0
    total_write_latency: int = 0
    issued_commands: int = 0
    rejected_enqueues: int = 0

    @property
    def average_read_latency(self) -> float:
        if not self.served_reads:
            return 0.0
        return self.total_read_latency / self.served_reads

    @property
    def average_write_latency(self) -> float:
        if not self.served_writes:
            return 0.0
        return self.total_write_latency / self.served_writes

    def as_dict(self) -> dict:
        return {
            "served_reads": self.served_reads,
            "served_writes": self.served_writes,
            "average_read_latency": self.average_read_latency,
            "average_write_latency": self.average_write_latency,
            "issued_commands": self.issued_commands,
            "rejected_enqueues": self.rejected_enqueues,
        }


class ChannelController:
    """Memory controller for one DRAM channel."""

    def __init__(
        self,
        channel_id: int,
        config: SystemConfig,
        device: DRAMDevice,
        refresh_policy,
    ):
        self.channel_id = channel_id
        self.config = config
        self.device = device
        org = config.dram.organization
        bank_keys = [
            (rank, bank)
            for rank in range(org.ranks_per_channel)
            for bank in range(org.banks_per_rank)
        ]
        self.queues = RequestQueues(
            config.controller.read_queue_entries,
            config.controller.write_queue_entries,
            bank_keys,
        )
        self.drain = WriteDrainState(config.controller)
        self.scheduler = FRFCFSScheduler(self)
        self.refresh_policy = refresh_policy
        self.refresh_policy.bind(self)
        self.stats = ControllerStats()
        self._pending_reads: list[tuple[int, int, MemRequest]] = []

    # -- request intake -----------------------------------------------------
    def can_accept(self, is_write: bool) -> bool:
        if is_write:
            return not self.queues.write_full()
        return not self.queues.read_full()

    def enqueue(self, request: MemRequest) -> bool:
        """Enqueue a request; returns False (and drops it) if the queue is full."""
        if not self.queues.can_accept(request):
            self.stats.rejected_enqueues += 1
            return False
        self.queues.enqueue(request)
        return True

    # -- state queries used by refresh policies ------------------------------
    @property
    def in_writeback_mode(self) -> bool:
        return self.drain.in_drain

    def demand_count(self, rank: int, bank: int) -> int:
        return self.queues.demand_count((rank, bank))

    def rank_demand_count(self, rank: int) -> int:
        return self.queues.rank_demand_count(rank)

    # -- per-cycle operation ---------------------------------------------------
    def tick(self, cycle: int) -> list[MemRequest]:
        """Advance one DRAM cycle; returns reads whose data arrived."""
        completed = self._pop_completed_reads(cycle)
        self.drain.update(self.queues.write_count, self.queues.read_count)

        command = self.refresh_policy.pre_demand(cycle)
        if command is not None:
            self._issue(command, cycle)
            return completed

        selection = self.scheduler.select(cycle)
        if selection is not None:
            command, request = selection
            done = self._issue(command, cycle)
            if command.kind.is_column and request is not None:
                self._retire_request(request, done)
            return completed

        command = self.refresh_policy.post_demand(cycle)
        if command is not None:
            self._issue(command, cycle)
        return completed

    # -- internals ----------------------------------------------------------------
    def _issue(self, command: Command, cycle: int) -> int:
        done = self.device.issue(command, cycle)
        self.stats.issued_commands += 1
        return done

    def _retire_request(self, request: MemRequest, completion_cycle: int) -> None:
        self.queues.remove(request)
        request.completion_cycle = completion_cycle
        if request.is_write:
            self.stats.served_writes += 1
            self.stats.total_write_latency += completion_cycle - request.arrival_cycle
        else:
            self.stats.served_reads += 1
            self.stats.total_read_latency += completion_cycle - request.arrival_cycle
            heapq.heappush(
                self._pending_reads,
                (completion_cycle, request.request_id, request),
            )

    def _pop_completed_reads(self, cycle: int) -> list[MemRequest]:
        completed = []
        while self._pending_reads and self._pending_reads[0][0] <= cycle:
            _, _, request = heapq.heappop(self._pending_reads)
            completed.append(request)
        return completed

    def has_outstanding_work(self) -> bool:
        """True while any request is queued or awaiting completion."""
        return bool(self.queues.total_demand() or self._pending_reads)


class MemorySystem:
    """The full DRAM memory system: address mapping + all channel controllers."""

    def __init__(self, config: SystemConfig):
        # Imported lazily to keep the substrate (controller) importable
        # without the policy layer and avoid a circular import.
        from repro.core.factory import create_refresh_policy

        self.config = config
        self.mapper = AddressMapper(config.dram.organization)
        self.device = DRAMDevice(
            config.dram, sarp_enabled=config.refresh.mechanism.uses_sarp
        )
        self.controllers = [
            ChannelController(
                channel_id=ch,
                config=config,
                device=self.device,
                refresh_policy=create_refresh_policy(config, ch),
            )
            for ch in range(config.dram.organization.channels)
        ]

    # -- processor-side interface ------------------------------------------------
    def controller_for(self, address: int) -> ChannelController:
        location = self.mapper.decode(address)
        return self.controllers[location.channel]

    def can_accept(self, address: int, is_write: bool) -> bool:
        return self.controller_for(address).can_accept(is_write)

    def access(
        self, address: int, is_write: bool, core_id: int, cycle: int
    ) -> Optional[MemRequest]:
        """Enqueue a request; returns it, or None if the target queue is full."""
        location = self.mapper.decode(address)
        controller = self.controllers[location.channel]
        request = MemRequest(
            address=address,
            is_write=is_write,
            location=location,
            core_id=core_id,
            arrival_cycle=cycle,
        )
        if controller.enqueue(request):
            return request
        return None

    def tick(self, cycle: int) -> list[MemRequest]:
        """Advance every controller one DRAM cycle; returns completed reads."""
        self.device.tick(cycle)
        completed: list[MemRequest] = []
        for controller in self.controllers:
            completed.extend(controller.tick(cycle))
        return completed

    # -- statistics ----------------------------------------------------------------
    def total_served(self) -> tuple[int, int]:
        reads = sum(c.stats.served_reads for c in self.controllers)
        writes = sum(c.stats.served_writes for c in self.controllers)
        return reads, writes

    def refresh_policy_stats(self) -> dict:
        merged: dict[str, float] = {}
        for controller in self.controllers:
            for key, value in controller.refresh_policy.stats_dict().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def has_outstanding_work(self) -> bool:
        return any(c.has_outstanding_work() for c in self.controllers)
