"""Channel controllers and the memory system front end.

The :class:`MemorySystem` is the interface the processor side uses: it maps
physical addresses to DRAM locations, enqueues requests into the owning
channel controller, advances all controllers each DRAM cycle, and returns
completed read requests so cores can wake up their pending loads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import Optional

import repro.obs.profile as obs_profile
from repro.config.system import SystemConfig
from repro.controller.policies import create_scheduler
from repro.controller.queues import RequestQueues
from repro.controller.request import MemRequest
from repro.controller.write_drain import WriteDrainState
from repro.dram.address import AddressMapper
from repro.dram.commands import Command
from repro.dram.device import DRAMDevice
from repro.stats import StatsSchema, StatsStruct, WeightedAverage, register_schema


@dataclass
class ControllerStats(StatsStruct):
    """Per-channel service statistics.

    Merging across channels goes through :attr:`SCHEMA`: the latency
    counters merge as raw totals and the average latencies are recomputed
    from the merged totals — a weighted average by construction, never a
    sum of per-channel averages.
    """

    SCHEMA = register_schema(
        StatsSchema(
            "controller",
            fields=(
                "served_reads",
                "served_writes",
                "total_read_latency",
                "total_write_latency",
                "issued_commands",
                "rejected_enqueues",
            ),
            derived=(
                WeightedAverage(
                    "average_read_latency", "total_read_latency", "served_reads"
                ),
                WeightedAverage(
                    "average_write_latency", "total_write_latency", "served_writes"
                ),
            ),
        )
    )

    served_reads: int = 0
    served_writes: int = 0
    total_read_latency: int = 0
    total_write_latency: int = 0
    issued_commands: int = 0
    rejected_enqueues: int = 0

    @property
    def average_read_latency(self) -> float:
        if not self.served_reads:
            return 0.0
        return self.total_read_latency / self.served_reads

    @property
    def average_write_latency(self) -> float:
        if not self.served_writes:
            return 0.0
        return self.total_write_latency / self.served_writes


class ChannelController:
    """Memory controller for one DRAM channel."""

    def __init__(
        self,
        channel_id: int,
        config: SystemConfig,
        device: DRAMDevice,
        refresh_policy,
        tracer=None,
    ):
        self.channel_id = channel_id
        self.config = config
        self.device = device
        #: Optional :class:`~repro.obs.trace.CommandTracer`.  ``None`` when
        #: tracing is off, so the hot-path cost is one identity check.
        self.tracer = tracer
        org = config.dram.organization
        bank_keys = [
            (rank, bank)
            for rank in range(org.ranks_per_channel)
            for bank in range(org.banks_per_rank)
        ]
        self.queues = RequestQueues(
            config.controller.read_queue_entries,
            config.controller.write_queue_entries,
            bank_keys,
        )
        self.drain = WriteDrainState(config.controller)
        self.scheduler = create_scheduler(config.controller.scheduler, self)
        self.refresh_policy = refresh_policy
        self.refresh_policy.bind(self)
        self.stats = ControllerStats()
        self._pending_reads: list[tuple[int, int, MemRequest]] = []
        #: True when the most recent :meth:`tick` issued a DRAM command.
        #: The event kernel uses it to detect system-wide no-op cycles.
        self.last_tick_issued = False
        #: Retirement counters for read/write requests.  Cores blocked on a
        #: full queue sleep until the matching counter changes (queue space
        #: can appear in no other way).
        self.read_retires = 0
        self.write_retires = 0
        #: Event-kernel scheduling cache: cycles strictly below
        #: ``_sleep_until`` are provably scheduling no-ops as long as the
        #: request queues keep ``_sleep_queue_version``.  ``None`` means
        #: "no self-scheduled event at all"; 0 means "not cached".
        self._sleep_until: Optional[int] = 0
        self._sleep_queue_version = -1
        #: Whether the policy overrides the per-cycle replay hook (only
        #: DARP does); lets the fast path skip a no-op method call.
        #: Imported lazily to keep the substrate importable without the
        #: policy layer (mirrors the factory import in MemorySystem).
        from repro.core.base import RefreshPolicy

        self._policy_replays = (
            type(self.refresh_policy).skip_cycles is not RefreshPolicy.skip_cycles
        )

    # -- request intake -----------------------------------------------------
    def can_accept(self, is_write: bool) -> bool:
        if is_write:
            return not self.queues.write_full()
        return not self.queues.read_full()

    def enqueue(self, request: MemRequest) -> bool:
        """Enqueue a request; returns False (and drops it) if the queue is full."""
        if not self.queues.can_accept(request):
            self.stats.rejected_enqueues += 1
            return False
        self.queues.enqueue(request)
        return True

    # -- state queries used by refresh policies ------------------------------
    @property
    def in_writeback_mode(self) -> bool:
        return self.drain.in_drain

    def demand_count(self, rank: int, bank: int) -> int:
        return self.queues.demand_count((rank, bank))

    def rank_demand_count(self, rank: int) -> int:
        return self.queues.rank_demand_count(rank)

    # -- per-cycle operation ---------------------------------------------------
    def tick(self, cycle: int) -> list[MemRequest]:
        """Advance one DRAM cycle; returns reads whose data arrived."""
        completed = self._pop_completed_reads(cycle)
        self.drain.update(self.queues.write_count, self.queues.read_count)
        self.last_tick_issued = True

        command = self.refresh_policy.pre_demand(cycle)
        if command is not None:
            self._issue(command, cycle)
            return completed

        selection = self.scheduler.select(cycle)
        if selection is not None:
            command, request = selection
            done = self._issue(command, cycle)
            if command.kind.is_column and request is not None:
                self._retire_request(request, done)
            return completed

        command = self.refresh_policy.post_demand(cycle)
        if command is not None:
            self._issue(command, cycle)
            return completed
        self.last_tick_issued = False
        return completed

    # -- internals ----------------------------------------------------------------
    def _issue(self, command: Command, cycle: int) -> int:
        done = self.device.issue(command, cycle)
        self.stats.issued_commands += 1
        if self.tracer is not None:
            self.tracer.command(command, cycle, done)
        return done

    def _retire_request(self, request: MemRequest, completion_cycle: int) -> None:
        self.queues.remove(request)
        request.completion_cycle = completion_cycle
        if request.is_write:
            self.stats.served_writes += 1
            self.write_retires += 1
            self.stats.total_write_latency += completion_cycle - request.arrival_cycle
        else:
            self.stats.served_reads += 1
            self.read_retires += 1
            self.stats.total_read_latency += completion_cycle - request.arrival_cycle
            heapq.heappush(
                self._pending_reads,
                (completion_cycle, request.request_id, request),
            )

    def _pop_completed_reads(self, cycle: int) -> list[MemRequest]:
        completed = []
        while self._pending_reads and self._pending_reads[0][0] <= cycle:
            _, _, request = heapq.heappop(self._pending_reads)
            completed.append(request)
        return completed

    def has_outstanding_work(self) -> bool:
        """True while any request is queued or awaiting completion."""
        return bool(self.queues.total_demand() or self._pending_reads)

    # -- cycle-skipping kernel support ------------------------------------------
    def tick_event(self, cycle: int) -> list[MemRequest]:
        """Event-kernel tick: identical behaviour to :meth:`tick`, faster.

        After a tick that issued nothing, scheduling is a pure function of
        the cycle number until either the channel's next timing event or a
        queue mutation.  While that holds, this fast path skips the whole
        pre-demand / FR-FCFS / post-demand scan and replays only the
        per-cycle side effects the full tick would have produced (data
        arrivals, the writeback-mode cycle counter, re-recorded SARP
        conflicts, DARP's random draws).  :meth:`tick` itself is left
        untouched so the cycle kernel remains an independent reference for
        the differential suite.
        """
        sleep_until = self._sleep_until
        if (
            sleep_until is None or cycle < sleep_until
        ) and self.queues.version == self._sleep_queue_version:
            pending = self._pending_reads
            completed = (
                self._pop_completed_reads(cycle)
                if pending and pending[0][0] <= cycle
                else []
            )
            drain = self.drain
            if drain.in_drain:
                drain.skip_cycles(self.queues.write_count, 1)
            conflicts = self.scheduler.last_conflicts
            if conflicts:
                for command in conflicts:
                    self.device.record_subarray_conflict(command)
            if self._policy_replays:
                self.refresh_policy.skip_cycles(1)
            self.last_tick_issued = False
            return completed
        completed = self.tick(cycle)
        if self.last_tick_issued:
            self._sleep_until = 0
        else:
            self._sleep_until = self._local_next_event(cycle)
            self._sleep_queue_version = self.queues.version
        return completed

    def _local_next_event(self, now: int) -> Optional[int]:
        """Profiling wrapper around :meth:`_scan_local_next_event`.

        The horizon scan is one of the event kernel's candidate hot spots;
        when span profiling is on it shows up as ``controller.horizon_scan``
        in the ``repro profile`` table.  With profiling off the wrapper is
        a single module-attribute load plus an identity check.
        """
        profiler = obs_profile.ACTIVE
        if profiler is None:
            return self._scan_local_next_event(now)
        start = perf_counter()
        try:
            return self._scan_local_next_event(now)
        finally:
            profiler.add("controller.horizon_scan", perf_counter() - start)

    def _scan_local_next_event(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` at which this channel's scheduling
        outcome can change without a queue mutation (``None``: never).

        Combines the three sources of self-scheduled change: the refresh
        policy's own schedule, the demand-side horizon the FR-FCFS
        scheduler derives from its frozen candidate set, and the timing
        state of banks the policy is currently trying to refresh (their
        activity windows, refresh completions, and — for open banks — the
        precharge that must clear them first).
        """
        candidates = []
        policy = self.refresh_policy
        policy_event = policy.next_event_cycle(now)
        if policy_event is not None and policy_event > now:
            if policy_event == now + 1:
                # Nothing can be earlier; skip the horizon scan entirely
                # (DARP returns this whenever a random draw could issue).
                return policy_event
            candidates.append(policy_event)

        scheduler_event = self.scheduler.next_event_cycle(now)
        if scheduler_event is not None:
            candidates.append(scheduler_event)

        # Refresh candidates need their bank free of activity (t_act,
        # refresh markers) or a precharge first (t_pre); column deadlines
        # can never gate a refresh.  Rank-level refresh occupancy gates
        # the legality of further refreshes in the rank.
        channel = self.device.channels[self.channel_id]
        for rank_index, rank in enumerate(channel.ranks):
            refresh_banks = policy.refresh_candidate_banks(rank_index)
            if not refresh_banks:
                continue
            if rank.refab_until > now:
                candidates.append(rank.refab_until)
            if rank.pb_refresh_until > now:
                candidates.append(rank.pb_refresh_until)
            for bank_index in refresh_banks:
                bank = rank.banks[bank_index]
                if bank.t_act > now:
                    candidates.append(bank.t_act)
                if bank.refresh_until > now:
                    candidates.append(bank.refresh_until)
                if bank.open_row is not None and bank.t_pre > now:
                    candidates.append(bank.t_pre)
        return min(candidates) if candidates else None

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` at which this controller's observable
        behaviour can differ from the no-op cycle just executed.

        That is the earliest of: the next pending-read data arrival (which
        wakes a core) and the refresh policy's own horizon (the next
        scheduled refresh becoming due, or a policy-specific trigger such as
        elastic refresh's idle threshold).  Device timing-window expiries
        are accounted separately by :meth:`DRAMDevice.next_event_cycle`;
        :meth:`MemorySystem.next_event_cycle` combines the two into the
        conservative reference horizon.  The event kernel's hot path uses
        the tighter cached horizons (:meth:`_local_next_event` via
        :meth:`MemorySystem.next_skip_event`) instead.
        """
        candidates = []
        if self._pending_reads:
            arrival = self._pending_reads[0][0]
            if arrival > now:
                candidates.append(arrival)
        policy_event = self.refresh_policy.next_event_cycle(now)
        if policy_event is not None and policy_event > now:
            candidates.append(policy_event)
        return min(candidates) if candidates else None

    def skip_idle_cycles(self, count: int) -> None:
        """Account ``count`` skipped cycles after a no-op tick.

        Replays exactly the per-cycle side effects the legacy kernel would
        have produced over the span: the writeback-mode cycle counter, the
        SARP subarray conflicts the scheduler re-records every stalled
        cycle, and any policy-internal accounting (DARP's random idle-bank
        draws).  Everything else is provably frozen until the next event.
        """
        self.drain.skip_cycles(self.queues.write_count, count)
        for command in self.scheduler.last_conflicts:
            self.device.record_subarray_conflict(command, count)
        self.refresh_policy.skip_cycles(count)

    def skip_horizon(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` this controller can act again.

        Only valid immediately after a :meth:`tick_event` in which this
        controller issued nothing: the cached local horizon is then fresh
        (or still valid), so the controller's next possible action is the
        earlier of that horizon and its next pending-read data arrival.
        This is the public accessor :meth:`MemorySystem.next_skip_event`
        aggregates; ``None`` means "no self-scheduled event at all".
        """
        candidates = []
        if self._pending_reads:
            arrival = self._pending_reads[0][0]
            if arrival > now:
                candidates.append(arrival)
        sleep_until = self._sleep_until
        if sleep_until is not None and sleep_until > now:
            candidates.append(sleep_until)
        return min(candidates) if candidates else None


class MemorySystem:
    """The full DRAM memory system: address mapping + all channel controllers."""

    def __init__(self, config: SystemConfig):
        # Imported lazily to keep the substrate (controller) importable
        # without the policy layer and avoid a circular import.
        from repro.core.factory import create_refresh_policy

        self.config = config
        self.mapper = AddressMapper(config.dram.organization)
        self.device = DRAMDevice(
            config.dram, sarp_enabled=config.refresh.mechanism.uses_sarp
        )
        if config.obs.trace:
            from repro.obs.trace import CommandTracer

            self.tracer = CommandTracer(config.obs.trace_buffer)
        else:
            self.tracer = None
        self.device.tracer = self.tracer
        self.controllers = [
            ChannelController(
                channel_id=ch,
                config=config,
                device=self.device,
                refresh_policy=create_refresh_policy(config, ch),
                tracer=self.tracer,
            )
            for ch in range(config.dram.organization.channels)
        ]
        #: True when the most recent :meth:`tick` issued any DRAM command.
        self.last_tick_issued = False

    # -- processor-side interface ------------------------------------------------
    def controller_for(self, address: int) -> ChannelController:
        location = self.mapper.decode(address)
        return self.controllers[location.channel]

    def can_accept(self, address: int, is_write: bool) -> bool:
        return self.controller_for(address).can_accept(is_write)

    def access(
        self, address: int, is_write: bool, core_id: int, cycle: int
    ) -> Optional[MemRequest]:
        """Enqueue a request; returns it, or None if the target queue is full."""
        location = self.mapper.decode(address)
        controller = self.controllers[location.channel]
        request = MemRequest(
            address=address,
            is_write=is_write,
            location=location,
            core_id=core_id,
            arrival_cycle=cycle,
        )
        if controller.enqueue(request):
            return request
        return None

    def tick(self, cycle: int) -> list[MemRequest]:
        """Advance every controller one DRAM cycle; returns completed reads."""
        self.device.tick(cycle)
        completed: list[MemRequest] = []
        issued = False
        for controller in self.controllers:
            completed.extend(controller.tick(cycle))
            issued = issued or controller.last_tick_issued
        self.last_tick_issued = issued
        return completed

    # -- cycle-skipping kernel support ----------------------------------------
    def tick_event(self, cycle: int) -> list[MemRequest]:
        """Event-kernel tick: every controller advances via its fast path.

        The per-cycle device sweep (:meth:`DRAMDevice.tick`) only clears
        expired refresh markers lazily; every reader of those markers
        checks the refresh deadline first, so the sweep can be elided
        entirely without observable effect — the cycle kernel keeps it as
        the reference behaviour.
        """
        completed: list[MemRequest] = []
        issued = False
        for controller in self.controllers:
            completed.extend(controller.tick_event(cycle))
            issued = issued or controller.last_tick_issued
        self.last_tick_issued = issued
        return completed

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` at which any memory-side state can
        change, assuming no processor-side activity in between.

        This is the *conservative reference* horizon — every timing window
        of every bank/rank/channel plus all controller events — kept
        deliberately simple so tests can check the tighter per-controller
        horizons of the hot path against it.
        """
        candidates = []
        device_event = self.device.next_event_cycle(now)
        if device_event is not None:
            candidates.append(device_event)
        for controller in self.controllers:
            controller_event = controller.next_event_cycle(now)
            if controller_event is not None:
                candidates.append(controller_event)
        return min(candidates) if candidates else None

    def next_skip_event(self, now: int) -> Optional[int]:
        """Cheap skip horizon for the event kernel.

        Only valid immediately after a :meth:`tick_event` in which no
        controller issued a command: every controller then holds a fresh
        (or still-valid) local horizon, so the earliest memory event is
        the minimum of those horizons and the next pending read arrival —
        no device rescan required.
        """
        candidates = []
        for controller in self.controllers:
            horizon = controller.skip_horizon(now)
            if horizon is not None:
                candidates.append(horizon)
        return min(candidates) if candidates else None

    def skip_idle_cycles(self, count: int) -> None:
        """Account ``count`` skipped cycles on every channel controller."""
        for controller in self.controllers:
            controller.skip_idle_cycles(count)

    # -- statistics ----------------------------------------------------------------
    def merged_controller_stats(self) -> dict:
        """Cross-channel controller statistics, merged under the schema.

        The latency averages come out weighted by served request counts
        (recomputed from the merged raw totals), never summed.
        """
        return ControllerStats.merge_dicts(
            controller.stats.as_dict() for controller in self.controllers
        )

    def total_served(self) -> tuple[int, int]:
        merged = self.merged_controller_stats()
        return merged["served_reads"], merged["served_writes"]

    def refresh_policy_stats(self) -> dict:
        from repro.core.base import RefreshStats

        return RefreshStats.merge_dicts(
            controller.refresh_policy.stats_dict() for controller in self.controllers
        )

    def has_outstanding_work(self) -> bool:
        return any(c.has_outstanding_work() for c in self.controllers)
