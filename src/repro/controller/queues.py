"""Per-bank request queues of a channel controller.

The controller keeps separate read and write queues (64 entries each in the
paper's configuration).  Requests are stored per bank to make FR-FCFS
scheduling and DARP's per-bank occupancy monitoring cheap: DARP refreshes
the bank with the fewest pending demand requests.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.controller.request import MemRequest


class RequestQueues:
    """Read and write request queues for one channel, organized per bank."""

    def __init__(
        self,
        read_entries: int,
        write_entries: int,
        bank_keys: Iterable[tuple[int, int]],
    ):
        self.read_entries = read_entries
        self.write_entries = write_entries
        self.bank_keys = list(bank_keys)
        self.reads: dict[tuple[int, int], deque[MemRequest]] = {
            key: deque() for key in self.bank_keys
        }
        self.writes: dict[tuple[int, int], deque[MemRequest]] = {
            key: deque() for key in self.bank_keys
        }
        self.read_count = 0
        self.write_count = 0
        #: Bumped on every enqueue/remove; the event kernel uses it to
        #: detect that a controller's scheduling inputs are unchanged.
        self.version = 0
        #: Per-bank mutation counters (same events as :attr:`version`); the
        #: schedulers' frozen window analysis memoizes per-bank work keyed
        #: on these, so a retire only re-analyzes the bank it touched.
        self.bank_versions: dict[tuple[int, int], int] = {
            key: 0 for key in self.bank_keys
        }
        #: Per-bank total demand occupancy, and a version that bumps only
        #: when some bank's occupancy crosses zero.  Consumers that depend
        #: solely on bank *idleness* (DARP's refresh pools) key their
        #: caches on this instead of :attr:`version`, so mid-queue churn
        #: does not invalidate them.
        self.demand_counts: dict[tuple[int, int], int] = {
            key: 0 for key in self.bank_keys
        }
        self.idle_version = 0

    # -- capacity ---------------------------------------------------------
    def read_full(self) -> bool:
        return self.read_count >= self.read_entries

    def write_full(self) -> bool:
        return self.write_count >= self.write_entries

    def can_accept(self, request: MemRequest) -> bool:
        return not (self.write_full() if request.is_write else self.read_full())

    # -- enqueue / dequeue -------------------------------------------------
    def enqueue(self, request: MemRequest) -> None:
        """Add a request; the caller must have checked :meth:`can_accept`."""
        key = request.bank_key
        self.version += 1
        self.bank_versions[key] += 1
        counts = self.demand_counts
        if counts[key] == 0:
            self.idle_version += 1
        counts[key] += 1
        if request.is_write:
            self.writes[key].append(request)
            self.write_count += 1
        else:
            self.reads[key].append(request)
            self.read_count += 1

    def remove(self, request: MemRequest) -> None:
        """Remove a serviced request from its queue."""
        key = request.bank_key
        self.version += 1
        self.bank_versions[key] += 1
        counts = self.demand_counts
        counts[key] -= 1
        if counts[key] == 0:
            self.idle_version += 1
        if request.is_write:
            self.writes[key].remove(request)
            self.write_count -= 1
        else:
            self.reads[key].remove(request)
            self.read_count -= 1

    # -- occupancy queries (used by FR-FCFS, DARP and Elastic refresh) -----
    def demand_count(self, bank_key: tuple[int, int]) -> int:
        """Pending demand (read + write) requests for one bank."""
        return self.demand_counts[bank_key]

    def read_count_for(self, bank_key: tuple[int, int]) -> int:
        return len(self.reads[bank_key])

    def write_count_for(self, bank_key: tuple[int, int]) -> int:
        return len(self.writes[bank_key])

    def rank_demand_count(self, rank: int) -> int:
        """Pending demand requests targeting any bank of ``rank``."""
        return sum(
            self.demand_count(key) for key in self.bank_keys if key[0] == rank
        )

    def rank_read_count(self, rank: int) -> int:
        return sum(
            len(self.reads[key]) for key in self.bank_keys if key[0] == rank
        )

    def idle_banks(self, rank: Optional[int] = None) -> list[tuple[int, int]]:
        """Banks with no pending demand requests (optionally within a rank)."""
        keys = (
            self.bank_keys
            if rank is None
            else [k for k in self.bank_keys if k[0] == rank]
        )
        return [key for key in keys if self.demand_count(key) == 0]

    def bank_with_fewest_demands(self, rank: int) -> tuple[int, int]:
        """Bank of ``rank`` with the lowest demand-queue occupancy.

        Used by DARP's write-refresh parallelization (Algorithm 1): the bank
        with the fewest pending requests is the best refresh candidate
        during writeback mode.
        """
        candidates = [key for key in self.bank_keys if key[0] == rank]
        return min(candidates, key=self.demand_count)

    def pending_row_hit(
        self,
        bank_key: tuple[int, int],
        row: int,
        writes: bool,
    ) -> bool:
        """True if any queued request for ``bank_key`` targets ``row``."""
        queue = self.writes[bank_key] if writes else self.reads[bank_key]
        return any(req.row == row for req in queue)

    def total_demand(self) -> int:
        return self.read_count + self.write_count

    def oldest(self, bank_key: tuple[int, int], writes: bool) -> Optional[MemRequest]:
        """Oldest queued request of the given type for a bank, if any."""
        queue = self.writes[bank_key] if writes else self.reads[bank_key]
        return queue[0] if queue else None
