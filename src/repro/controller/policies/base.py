"""Base class and registry for demand-scheduling policies.

A scheduler policy is bound to one
:class:`~repro.controller.memory_controller.ChannelController` and decides,
each DRAM cycle, which demand command (if any) the channel issues.  The
interface deliberately mirrors :class:`repro.core.base.RefreshPolicy` — the
refresh layer has been pluggable since the factory in
:mod:`repro.core.factory`; this module gives the demand-scheduling layer
the same shape so schedulers, page policies and refresh mechanisms can be
swept independently.

Every policy must satisfy the event-kernel contract:

* :meth:`SchedulerPolicy.select` proposes at most one command per cycle and
  leaves :attr:`SchedulerPolicy.last_conflicts` holding exactly the SARP
  subarray conflicts that cycle recorded (the event kernel replays them for
  every skipped cycle);
* :meth:`SchedulerPolicy.next_event_cycle` reports the earliest cycle after
  ``now`` at which the policy's scheduling outcome can change without a
  queue mutation — the demand horizon that licenses the controller to
  sleep.  Waking early is safe; waking late breaks bit-identity with the
  reference cycle kernel (enforced by ``tests/test_kernel_equivalence.py``).

The *page-management* policy is orthogonal to scheduling and shared by all
schedulers through :meth:`SchedulerPolicy._column_command`: under the
closed-row policy a column command auto-precharges unless another queued
request targets the same row; under the open-row policy rows are kept open
until a conflict (or a scheduler-specific cap) forces a close.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar, Optional

from repro.config.controller_config import PAGE_POLICY_OPEN
from repro.dram.commands import Command, CommandType

if TYPE_CHECKING:
    from repro.controller.request import MemRequest


class SchedulerPolicy(abc.ABC):
    """Interface every demand-scheduling policy implements."""

    #: Registry name; implementations set this and decorate themselves with
    #: :func:`register_scheduler`.
    name: ClassVar[str] = ""

    #: Whether this policy reads ``ControllerConfig.row_hit_cap``.  The
    #: config fingerprint omits the knob for policies that ignore it, so
    #: sweeping a ``row_hit_cap`` axis under e.g. plain FR-FCFS does not
    #: re-simulate (and separately cache) bit-identical configurations.
    uses_row_hit_cap: ClassVar[bool] = False

    def __init__(self, controller):
        self.controller = controller
        #: SARP subarray conflicts recorded during the most recent
        #: :meth:`select` call.  When a cycle turns out to be a system-wide
        #: no-op, the event kernel replays exactly these conflicts for every
        #: skipped cycle (the candidate set and refresh state are frozen, so
        #: each skipped cycle would have recorded the identical conflicts).
        self.last_conflicts: list[Command] = []
        #: Frozen-window analysis stashed by ``demand_window`` (schedulers
        #: that implement it): the candidate schedule in exact probe order
        #: as ``(ready, kind, request)`` tuples, the conflicts with their
        #: probe position and expiry, the queue map in force, and the raw
        #: ready/expiry minima.  The controller's fast-issue path replays
        #: ``select``'s outcome from these without re-probing the device.
        self.window_schedule: list = []
        self.window_ready: list = []
        self.window_conflicts: list = []
        self.window_writes: bool = False
        self.window_demand_ready: Optional[int] = None
        self.window_conflict_expiry: Optional[int] = None
        #: Per-bank memo of the frozen-window classification, keyed by
        #: bank key; each slot holds ``(queue_version, bank_stamp, writes,
        #: value)`` so only banks touched since the previous window are
        #: re-analyzed.
        self._window_memo: dict = {}
        #: Persistent frozen candidate set in exact probe order (the hit
        #: and row segments, each sorted by age), the per-bank index into
        #: it, the queue map it was built from, and whether it is exact
        #: (untruncated — splicing requires it).  Maintained by
        #: ``_rebuild_entries`` / ``_splice_entry`` on schedulers that
        #: implement ``demand_window``.
        self._win_hits: list = []
        self._win_rows: list = []
        self._win_by_bank: dict = {}
        self._win_writes_key: Optional[bool] = None
        self._win_exact: bool = False

    def note_issue(self, command: Command) -> None:
        """Bookkeeping hook for every demand command this scheduler issues.

        Called by :meth:`select` (via its implementations) and by the
        controller's fast-issue path, so scheduler-internal per-issue state
        (e.g. the capped variant's row-hit streaks) stays identical no
        matter which path issued the command.  The base policy keeps no
        such state.
        """

    # -- per-cycle scheduling -------------------------------------------------
    @abc.abstractmethod
    def select(self, cycle: int) -> Optional[tuple[Command, Optional["MemRequest"]]]:
        """Choose the demand command to issue this cycle, if any.

        Returns ``(command, request)`` where ``request`` is the request a
        column command retires (``None`` for row commands), or ``None``
        when no demand command can issue.
        """

    # -- event horizon (cycle-skipping kernel) --------------------------------
    @abc.abstractmethod
    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` at which demand scheduling can change
        without a queue mutation (``None``: never)."""

    # -- shared command construction ------------------------------------------
    def _probe_column_command(self, request: "MemRequest") -> Command:
        """A keep-open column command used only for the legality check.

        ``can_issue`` treats RD/RDA (and WR/WRA) identically — the
        autoprecharge flag changes the command's *effects*, not its
        legality — so the probe avoids :meth:`_another_hit_pending`'s
        queue scan for candidates that cannot issue anyway.  The kind is
        keyed off the request itself: hit candidates always come from the
        queue map matching the serve-writes mode.
        """
        loc = request.location
        return Command(
            kind=CommandType.WR if request.is_write else CommandType.RD,
            channel=loc.channel,
            rank=loc.rank,
            bank=loc.bank,
            row=loc.row,
            column=loc.column,
            request=request,
        )

    def _column_command(self, request: "MemRequest", writes: bool) -> Command:
        """Build the column command serving ``request``.

        Under the closed-row page policy the command auto-precharges unless
        another queued request targets the same row, in which case the row
        is kept open so the follow-up request gets a row hit.  Under the
        open-row policy rows are always kept open.
        """
        ctl = self.controller
        keep_open = (
            ctl.config.controller.page_policy == PAGE_POLICY_OPEN
            or self._another_hit_pending(request)
        )
        if request.is_write:
            kind = CommandType.WR if keep_open else CommandType.WRA
        else:
            kind = CommandType.RD if keep_open else CommandType.RDA
        loc = request.location
        return Command(
            kind=kind,
            channel=loc.channel,
            rank=loc.rank,
            bank=loc.bank,
            row=loc.row,
            column=loc.column,
            request=request,
        )

    def _another_hit_pending(self, request: "MemRequest") -> bool:
        """True if a different queued request targets the same bank and row."""
        queues = self.controller.queues
        key = request.bank_key
        for queue in (queues.reads[key], queues.writes[key]):
            for other in queue:
                if other is not request and other.row == request.row:
                    return True
        return False


#: Registered scheduler policies, keyed by :attr:`SchedulerPolicy.name`.
_SCHEDULERS: dict[str, type[SchedulerPolicy]] = {}


def register_scheduler(cls: type[SchedulerPolicy]) -> type[SchedulerPolicy]:
    """Class decorator adding a policy to the registry."""
    if not cls.name:
        raise ValueError(f"scheduler policy {cls.__name__} declares no name")
    if cls.name in _SCHEDULERS:
        raise ValueError(f"a scheduler policy named {cls.name!r} is already registered")
    _SCHEDULERS[cls.name] = cls
    return cls


def scheduler_names() -> tuple[str, ...]:
    """Names of every registered scheduler policy, sorted."""
    return tuple(sorted(_SCHEDULERS))


def scheduler_class(name: str) -> type[SchedulerPolicy]:
    """Look up a policy class; unknown names list the alternatives."""
    try:
        return _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler policy {name!r}; registered: "
            f"{', '.join(sorted(_SCHEDULERS))}"
        ) from None


def create_scheduler(name: str, controller) -> SchedulerPolicy:
    """Instantiate the named policy bound to ``controller``."""
    return scheduler_class(name)(controller)


def scheduler_descriptions() -> dict[str, str]:
    """One-line description per registered policy (docstring first line)."""
    return {
        name: next(iter((cls.__doc__ or "").strip().splitlines()), "").rstrip(".")
        for name, cls in sorted(_SCHEDULERS.items())
    }
