"""FR-FCFS with a per-bank cap on consecutive row hits (forced close).

Identical to FR-FCFS until a bank has served
:attr:`~repro.config.controller_config.ControllerConfig.row_hit_cap`
consecutive column hits from its open row; the bank's further hits are
then demoted to row candidates, so the oldest queued request drives a
precharge and the row is closed.  This bounds the starvation an open-row
hit streak can inflict on older requests to other rows of the same bank —
the timeout-based close real open-page controllers implement.

The streak counters only change when a command issues, so they are frozen
across the no-op spans the event kernel skips; the demand horizon
(inherited from FR-FCFS) consults the same :meth:`_hits_allowed` hook as
candidate classification, keeping both kernels bit-identical.
"""

from __future__ import annotations

from repro.controller.policies.base import register_scheduler
from repro.controller.policies.frfcfs import FRFCFSScheduler
from repro.dram.commands import Command


@register_scheduler
class CappedRowHitScheduler(FRFCFSScheduler):
    """FR-FCFS that force-closes a row after a capped streak of row hits."""

    name = "frfcfs-cap"
    uses_row_hit_cap = True

    def __init__(self, controller):
        super().__init__(controller)
        self._cap = controller.config.controller.row_hit_cap
        #: Consecutive column hits served from each bank's currently open
        #: row; reset by any row command (or an auto-precharging column).
        self._streak: dict[tuple[int, int], int] = {}

    def _hits_allowed(self, bank_key: tuple[int, int]) -> bool:
        return self._streak.get(bank_key, 0) < self._cap

    def note_issue(self, command: Command) -> None:
        key = (command.rank, command.bank)
        if command.kind.is_column and not command.kind.autoprecharges:
            self._streak[key] = self._streak.get(key, 0) + 1
        else:
            # ACT, PRE, or an auto-precharging column: the row closes
            # (or a fresh one opens), so the streak restarts.
            self._streak[key] = 0
