"""Pluggable demand-scheduling policies for the channel controller.

The scheduling layer mirrors the refresh layer's pluggability
(:mod:`repro.core.factory`): every policy subclasses
:class:`~repro.controller.policies.base.SchedulerPolicy`, registers itself
by name, and is instantiated through :func:`create_scheduler` from
``ControllerConfig.scheduler``.  Registered policies:

* ``frfcfs``     — row hits first, then oldest-first (the paper's baseline),
* ``fcfs``       — strictly oldest-first, no open-row preference,
* ``frfcfs-cap`` — FR-FCFS with a per-bank cap on consecutive row hits
  (a forced close bounding open-row starvation).

All policies honour the configured page-management policy (``closed`` /
``open``) through the shared column-command construction, and all satisfy
the event-kernel contract (``select`` / ``last_conflicts`` /
``next_event_cycle``) so every scheduler runs bit-identically under both
execution kernels.
"""

from repro.config.controller_config import PAGE_POLICY_CLOSED, PAGE_POLICY_OPEN
from repro.controller.policies.base import (
    SchedulerPolicy,
    create_scheduler,
    register_scheduler,
    scheduler_class,
    scheduler_descriptions,
    scheduler_names,
)
from repro.controller.policies.fcfs import FCFSScheduler
from repro.controller.policies.frfcfs import FRFCFSScheduler
from repro.controller.policies.frfcfs_cap import CappedRowHitScheduler

__all__ = [
    "PAGE_POLICY_CLOSED",
    "PAGE_POLICY_OPEN",
    "SchedulerPolicy",
    "create_scheduler",
    "register_scheduler",
    "scheduler_class",
    "scheduler_descriptions",
    "scheduler_names",
    "FCFSScheduler",
    "FRFCFSScheduler",
    "CappedRowHitScheduler",
]
