"""Plain FCFS scheduling: strictly oldest-first, no open-row preference.

Per bank only the oldest queued request is a candidate — a younger request
never jumps ahead inside its queue, even when it would hit the open row —
and candidates across banks are served strictly oldest-first.  The command
class serving each candidate follows from its bank's state alone: a column
access when the open row matches, a precharge when a different row is
open, an activate when the bank is closed.

This is the classic baseline FR-FCFS was introduced to beat; having it
pluggable lets sweeps quantify how much of the paper's refresh-mechanism
gains survive under a scheduler without first-ready reordering.

The implementation subclasses :class:`FRFCFSScheduler` purely to reuse its
demand-horizon bank walk (:meth:`~FRFCFSScheduler.next_event_cycle`): only
the candidate selection and the per-bank column/precharge classification
(:meth:`_wants_column`) differ, so the walk stays single-sourced and a
horizon fix can never reach one policy but miss the other.
"""

from __future__ import annotations

from typing import Optional

from repro.controller.policies.base import register_scheduler
from repro.controller.policies.frfcfs import WIN_ACT, WIN_COL, WIN_PRE, FRFCFSScheduler
from repro.controller.request import MemRequest
from repro.dram.commands import Command, CommandType


@register_scheduler
class FCFSScheduler(FRFCFSScheduler):
    """Strictly oldest-first scheduling with no open-row preference."""

    name = "fcfs"

    # -- candidate generation -------------------------------------------------
    def _select_from(
        self, cycle: int, writes: bool
    ) -> Optional[tuple[Command, Optional[MemRequest]]]:
        ctl = self.controller
        queues = ctl.queues
        device = ctl.device
        policy = ctl.refresh_policy
        channel = ctl.channel_id
        queue_map = queues.writes if writes else queues.reads
        blocks_demand = policy.blocks_demand
        ranks = device.channels[channel].ranks

        candidates: list[tuple[int, int, MemRequest]] = []
        for bank_key, queue in queue_map.items():
            if not queue:
                continue
            rank_i, bank_i = bank_key
            if blocks_demand(cycle, rank_i, bank_i):
                continue
            oldest = queue[0]
            candidates.append((oldest.arrival_cycle, oldest.request_id, oldest))

        window = ctl.config.controller.scheduling_window
        candidates.sort()
        for _, _, req in candidates[:window]:
            rank_i, bank_i = req.bank_key
            bank = ranks[rank_i].banks[bank_i]
            open_row = bank.open_row
            if open_row == req.row:
                probe = self._probe_column_command(req)
                if device.can_issue(probe, cycle):
                    return self._column_command(req, writes), req
            elif open_row is not None:
                command = Command(
                    kind=CommandType.PRE,
                    channel=channel,
                    rank=rank_i,
                    bank=bank_i,
                )
                if device.can_issue(command, cycle):
                    return command, None
            else:
                command = Command(
                    kind=CommandType.ACT,
                    channel=channel,
                    rank=rank_i,
                    bank=bank_i,
                    row=req.row,
                    request=req,
                )
                if device.can_issue(command, cycle):
                    return command, None
                if bank.refresh_conflicts_with(cycle, req.row):
                    device.record_subarray_conflict(command)
                    self.last_conflicts.append(command)
        return None

    # -- exact demand window (cycle-skipping kernel) -----------------------------
    combined_window = True

    def _classify_bank(self, bank_key, queue, bank, writes: bool):
        """FCFS classification: the head request alone decides the class."""
        rank_i, bank_i = bank_key
        device = self.controller.device
        req = queue[0]
        open_row = bank.open_row
        if open_row == req.row:
            return (
                req.arrival_cycle, req.request_id, req,
                WIN_COL, False, None, rank_i, bank_i,
                bank.t_wr if writes else bank.t_rd, 0,
            )
        if open_row is not None:
            ready = bank.t_pre
            if not device.sarp_enabled and bank.refresh_until > ready:
                ready = bank.refresh_until
            return (
                req.arrival_cycle, req.request_id, req,
                WIN_PRE, False, None, rank_i, bank_i, ready, 0,
            )
        sub = bank.refreshing_subarray
        match = sub is not None and sub == bank.subarray_of(req.row)
        command = None
        if match:
            command = Command(
                kind=CommandType.ACT,
                channel=self.controller.channel_id,
                rank=rank_i,
                bank=bank_i,
                row=req.row,
                request=req,
            )
        ready = bank.t_act
        if not device.sarp_enabled and bank.refresh_until > ready:
            ready = bank.refresh_until
        return (
            req.arrival_cycle, req.request_id, req,
            WIN_ACT, match, command, rank_i, bank_i, ready, bank.refresh_until,
        )

    # -- event horizon (cycle-skipping kernel) ----------------------------------
    def _wants_column(self, bank_key: tuple[int, int], open_row: int, queue) -> bool:
        """With the queues frozen, the bank's head request is fixed, and it
        alone decides whether the bank's frozen command class is a column
        access (head hits the open row) or a precharge (head conflicts)."""
        return queue[0].location.row == open_row
