"""FR-FCFS (first-ready, first-come-first-served) command scheduling.

Each cycle the scheduler proposes at most one demand command for its
channel.  Column commands that hit an open row are preferred over row
commands (activates/precharges); ties are broken by request age.  The
candidate set is the read queues outside writeback mode and the write
queues while the channel drains writes.

The scheduler consults the refresh policy's ``blocks_demand`` hook so that
a mandatory (non-postponable) refresh can quiesce its target rank or bank,
and it skips activates whose target subarray is currently being refreshed
(the SARP subarray-conflict check), recording the conflict for statistics.
"""

from __future__ import annotations

from bisect import insort
from typing import Optional

from repro.controller.policies.base import SchedulerPolicy, register_scheduler
from repro.controller.request import MemRequest
from repro.dram.commands import Command, CommandType

#: Command-class codes used by the frozen window schedule
#: (:attr:`FRFCFSScheduler.window_schedule`).
WIN_COL = 0
WIN_ACT = 1
WIN_PRE = 2

#: Sentinel "never ready" cycle: larger than any reachable simulation
#: cycle, so the ready-minimum reduction needs no None checks.
READY_NEVER = 1 << 62


@register_scheduler
class FRFCFSScheduler(SchedulerPolicy):
    """Row hits first, then oldest-first row commands (the paper's baseline)."""

    name = "frfcfs"

    # -- public API ---------------------------------------------------------
    def select(self, cycle: int) -> Optional[tuple[Command, Optional[MemRequest]]]:
        """Choose the demand command to issue this cycle, if any."""
        self.last_conflicts = []
        ctl = self.controller
        queues = ctl.queues
        serve_writes = ctl.drain.should_serve_writes(
            queues.write_count, queues.read_count
        )
        selection = self._select_from(cycle, writes=serve_writes)
        if selection is not None:
            self.note_issue(selection[0])
            return selection
        # While not draining, writes are only served if there are no reads at
        # all (handled above).  While draining, reads are never served: the
        # paper's writeback mode blocks reads on the whole channel.
        return None

    # -- row-hit gating (overridden by the capped variant) --------------------
    def _hits_allowed(self, bank_key: tuple[int, int]) -> bool:
        """Whether open-row hits in this bank may still be preferred.

        The base policy always prefers hits; the row-hit-capped variant
        demotes a bank's hits after a streak so older conflicting requests
        force a close.  Both :meth:`_select_from` and
        :meth:`next_event_cycle` consult this hook, keeping the demand
        horizon consistent with the frozen selection outcome.
        """
        return True

    def _wants_column(self, bank_key: tuple[int, int], open_row: int, queue) -> bool:
        """Whether the frozen candidate for this open-row bank is a column hit.

        Classification hook shared by :meth:`next_event_cycle`'s bank walk:
        with the queues frozen, this decides which deadline class the walk
        watches for the bank (column versus precharge).  FR-FCFS prefers a
        hit whenever any queued request matches the open row (and the
        row-hit gate allows it); FCFS overrides this with its head-request
        rule so the shared walk stays consistent with its selection.
        """
        return self._hits_allowed(bank_key) and any(
            request.location.row == open_row for request in queue
        )

    # -- candidate generation -------------------------------------------------
    def _select_from(
        self, cycle: int, writes: bool
    ) -> Optional[tuple[Command, Optional[MemRequest]]]:
        ctl = self.controller
        queues = ctl.queues
        device = ctl.device
        policy = ctl.refresh_policy
        channel = ctl.channel_id
        queue_map = queues.writes if writes else queues.reads
        blocks_demand = policy.blocks_demand
        ranks = device.channels[channel].ranks

        hit_candidates: list[tuple[int, int, MemRequest]] = []
        row_candidates: list[tuple[int, int, MemRequest]] = []
        for bank_key, queue in queue_map.items():
            if not queue:
                continue
            rank_i, bank_i = bank_key
            if blocks_demand(cycle, rank_i, bank_i):
                continue
            bank = ranks[rank_i].banks[bank_i]
            open_row = bank.open_row
            if open_row is not None and self._hits_allowed(bank_key):
                for req in queue:
                    if req.location.row == open_row:
                        hit_candidates.append((req.arrival_cycle, req.request_id, req))
                        break
                else:
                    # Open row does not serve any queued request: precharge.
                    oldest = queue[0]
                    row_candidates.append(
                        (oldest.arrival_cycle, oldest.request_id, oldest),
                    )
            else:
                oldest = queue[0]
                row_candidates.append((oldest.arrival_cycle, oldest.request_id, oldest))

        window = ctl.config.controller.scheduling_window

        # First-ready: column commands for open-row hits, oldest first.
        # Legality does not depend on the autoprecharge choice, so a cheap
        # probe (always keep-open) is checked first and the real command —
        # whose keep-open decision needs a queue scan — is only built for
        # the one candidate that issues.
        hit_candidates.sort()
        for _, _, req in hit_candidates[:window]:
            probe = self._probe_column_command(req)
            if device.can_issue(probe, cycle):
                command = self._column_command(req, writes)
                return command, req

        # Then row commands (activate or precharge), oldest first.
        row_candidates.sort()
        for _, _, req in row_candidates[:window]:
            rank_i, bank_i = req.bank_key
            bank = ranks[rank_i].banks[bank_i]
            if bank.open_row is None:
                command = Command(
                    kind=CommandType.ACT,
                    channel=channel,
                    rank=rank_i,
                    bank=bank_i,
                    row=req.row,
                    request=req,
                )
                if device.can_issue(command, cycle):
                    return command, None
                if bank.refresh_conflicts_with(cycle, req.row):
                    device.record_subarray_conflict(command)
                    self.last_conflicts.append(command)
            else:
                command = Command(
                    kind=CommandType.PRE,
                    channel=channel,
                    rank=rank_i,
                    bank=bank_i,
                )
                if device.can_issue(command, cycle):
                    return command, None
        return None

    # -- exact demand window (cycle-skipping kernel) -----------------------------
    #: FCFS probes one combined age-ordered window; FR-FCFS probes sorted
    #: hits first, then sorted row commands (each truncated separately).
    combined_window = False

    def _classify_bank(self, bank_key, queue, bank, writes: bool):
        """One bank's frozen candidate:
        ``(arrival, id, req, kind, sub, cmd, rank_i, bank_i, ready, refresh_until)``.

        ``sub`` is True when the candidate is an ACTIVATE into the
        subarray the bank's current refresh occupies (``cmd`` is then the
        conflict command ``select`` records while the refresh is live —
        every consumer guards on ``refresh_until``, so a stale marker of a
        finished refresh is harmless).  ``ready`` pre-folds every
        *bank-local* gate of the frozen command class (the column/act/pre
        deadline, plus the refresh end where it gates unconditionally);
        the window evaluation only combines it with the shared bus and
        rank gates, so it never touches bank objects.  That fold is sound
        under the same freeze that keeps the entry cached: the bank's
        state stamp keys the memo, and any command to the bank bumps it.
        """
        rank_i, bank_i = bank_key
        device = self.controller.device
        open_row = bank.open_row
        if open_row is not None:
            if self._hits_allowed(bank_key):
                for req in queue:
                    if req.location.row == open_row:
                        return (
                            req.arrival_cycle, req.request_id, req,
                            WIN_COL, False, None, rank_i, bank_i,
                            bank.t_wr if writes else bank.t_rd, 0,
                        )
            req = queue[0]
            ready = bank.t_pre
            if not device.sarp_enabled and bank.refresh_until > ready:
                ready = bank.refresh_until
            return (
                req.arrival_cycle, req.request_id, req,
                WIN_PRE, False, None, rank_i, bank_i, ready, 0,
            )
        req = queue[0]
        sub = bank.refreshing_subarray
        match = sub is not None and sub == bank.subarray_of(req.row)
        command = None
        if match:
            command = Command(
                kind=CommandType.ACT,
                channel=self.controller.channel_id,
                rank=rank_i,
                bank=bank_i,
                row=req.row,
                request=req,
            )
        ready = bank.t_act
        if not device.sarp_enabled and bank.refresh_until > ready:
            ready = bank.refresh_until
        return (
            req.arrival_cycle, req.request_id, req,
            WIN_ACT, match, command, rank_i, bank_i, ready, bank.refresh_until,
        )

    def _rebuild_entries(self, now: int, writes: bool) -> None:
        """Rebuild the persistent frozen candidate set in exact probe order.

        Stores ``[(arrival, id, req, kind, sub, cmd)]`` split into the hit
        and row segments exactly as :meth:`_select_from` probes them.
        With the queues, refresh blocking and bank open rows frozen, these
        are exactly the candidates ``select`` probes — in the order it
        probes them — and the only command class it would try per bank,
        so the first entry whose ready cycle has passed is the command
        ``select`` would issue.  Per-bank classification (the row-hit scan
        and conflict command) is memoized keyed on the bank's queue
        version and state stamp; only the refresh-blocking test and the
        sort run fresh.

        The set persists between installs: a fast issue (or an in-window
        enqueue) changes a single bank, so its entry is re-spliced by
        :meth:`_splice_entry` instead of rebuilding everything.
        """
        ctl = self.controller
        queues = ctl.queues
        queue_map = queues.writes if writes else queues.reads
        bank_versions = queues.bank_versions
        blocks_demand = ctl.refresh_policy.blocks_demand
        ranks = ctl.device.channels[ctl.channel_id].ranks
        memo = self._window_memo
        combined = self.combined_window
        by_bank: dict = {}
        hits: list = []
        rows: list = []
        for bank_key, queue in queue_map.items():
            if not queue:
                continue
            rank_i, bank_i = bank_key
            if blocks_demand(now, rank_i, bank_i):
                continue
            bank = ranks[rank_i].banks[bank_i]
            qv = bank_versions[bank_key]
            stamp = bank.stamp
            slot = memo.get(bank_key)
            if slot is not None and slot[0] == qv and slot[1] == stamp and slot[2] == writes:
                value = slot[3]
            else:
                value = self._classify_bank(bank_key, queue, bank, writes)
                memo[bank_key] = (qv, stamp, writes, value)
            by_bank[bank_key] = value
            if combined or value[3] != WIN_COL:
                rows.append(value)
            else:
                hits.append(value)
        window = ctl.config.controller.scheduling_window
        rows.sort()
        hits.sort()
        # With one candidate per bank the scheduling window almost never
        # truncates; when it does, the persistent set stops being the
        # exact probe set after a mutation, so splicing is disabled.
        exact = len(rows) <= window and len(hits) <= window
        if not exact:
            del rows[window:]
            del hits[window:]
        self._win_hits = hits
        self._win_rows = rows
        self._win_by_bank = by_bank
        self._win_writes_key = writes
        self._win_exact = exact

    def _splice_entry(self, now: int, bank_key, writes: bool) -> None:
        """Re-derive one bank's entry inside the persistent candidate set.

        Only sound while every *other* bank's candidate is provably
        unchanged — i.e. after a licensed fast issue to ``bank_key`` (the
        license puts the wake strictly before every deadline that could
        change another bank's classification or blocking) or an in-window
        enqueue to it.  Tuple order is (arrival, id, ...) with unique
        request ids, so the sort never compares request objects.
        """
        combined = self.combined_window
        by_bank = self._win_by_bank
        old = by_bank.pop(bank_key, None)
        if old is not None:
            if combined or old[3] != WIN_COL:
                self._win_rows.remove(old)
            else:
                self._win_hits.remove(old)
        ctl = self.controller
        queues = ctl.queues
        queue = (queues.writes if writes else queues.reads)[bank_key]
        if not queue:
            return
        rank_i, bank_i = bank_key
        if ctl.refresh_policy.blocks_demand(now, rank_i, bank_i):
            return
        bank = ctl.device.channels[ctl.channel_id].ranks[rank_i].banks[bank_i]
        value = self._classify_bank(bank_key, queue, bank, writes)
        self._window_memo[bank_key] = (
            queues.bank_versions[bank_key],
            bank.stamp,
            writes,
            value,
        )
        by_bank[bank_key] = value
        if combined or value[3] != WIN_COL:
            insort(self._win_rows, value)
        else:
            insort(self._win_hits, value)

    def demand_window(
        self, now: int, dirty=None
    ) -> tuple[Optional[int], list[Command]]:
        """Exact demand horizon plus the per-cycle conflict replay set.

        Returns ``(horizon, conflicts)``: ``horizon`` is the *first* cycle
        after ``now`` at which :meth:`select` could issue a command or
        change the set of SARP subarray conflicts it records (``None``
        when no candidate can ever become ready without a queue
        mutation), and ``conflicts`` is exactly the conflict set a no-op
        ``select`` records on every cycle in ``(now, horizon)``.

        Unlike the pooled-deadline :meth:`next_event_cycle` (kept as the
        conservative reference), this computes each candidate's exact
        ready cycle — the max over every gate ``can_issue`` checks for its
        frozen command class — so the controller can install a sleep
        window immediately after an *issuing* tick, where stale pooled
        deadlines would already lie in the past and prove nothing.

        Side effect: the per-candidate analysis is stashed for the
        controller's fast-issue path (:attr:`window_schedule`, the frozen
        entries in probe order, with :attr:`window_ready` holding their
        exact ready cycles as a parallel list of ints — split so each
        install appends plain integers instead of building a tuple per
        entry; :attr:`window_conflicts`, each conflict with its probe
        position and expiry; :attr:`window_writes` and the raw
        :attr:`window_demand_ready` / :attr:`window_conflict_expiry`
        minima).

        ``dirty`` names the single bank a licensed fast issue (or
        in-window enqueue) touched: the persistent candidate set is then
        spliced instead of rebuilt, and only the ready-cycle evaluation
        runs over the full set.
        """
        ctl = self.controller
        queues = ctl.queues
        device = ctl.device
        timings = device.timings
        serve_writes = ctl.drain.should_serve_writes(
            queues.write_count, queues.read_count
        )
        if dirty is None or serve_writes != self._win_writes_key or not self._win_exact:
            self._rebuild_entries(now, serve_writes)
        else:
            for bank_key in dirty:
                self._splice_entry(now, bank_key, serve_writes)
        hits = self._win_hits
        entries = hits + self._win_rows if hits else self._win_rows
        ready_list: list = []
        detail: list = []
        self.window_schedule = entries
        self.window_ready = ready_list
        self.window_conflicts = detail
        self.window_writes = serve_writes
        first = now + 1
        if not entries:
            self.window_demand_ready = None
            self.window_conflict_expiry = None
            return None, []
        channel = device.channels[ctl.channel_id]
        ranks = channel.ranks
        sarp = device.sarp_enabled
        ready_min = READY_NEVER
        conflicts: list[Command] = []
        conflict_expiry: Optional[int] = None

        # Shared-bus gates in command-cycle space (single source of the
        # arithmetic: Channel.bus_deadlines documents the derivation).
        if serve_writes:
            bus_ready = max(
                channel.bus_busy_until - timings.tCWL,
                channel.last_read_burst_end + timings.tRTW - timings.tCWL,
            )
        else:
            bus_ready = max(
                channel.bus_busy_until - timings.tCL,
                channel.last_write_burst_end + timings.tWTR - timings.tCL,
            )
        # Rank-level ACT gates (activation window, refresh end) are shared
        # by every ACT candidate of the rank; computed once per rank.
        rank_act_gate: dict[int, int] = {}

        append_ready = ready_list.append
        for pos, entry in enumerate(entries):
            kind = entry[3]
            ready = entry[8]
            if kind == WIN_COL:
                if bus_ready > ready:
                    ready = bus_ready
            elif kind == WIN_ACT:
                # ``select`` records a conflict (under every mechanism) for
                # a failing ACT whose target subarray is the one being
                # refreshed — every cycle until the refresh completes,
                # after which the replay set changes (window clamp below).
                refresh_until = entry[9]
                if entry[4] and refresh_until > first:
                    conflict_cmd = entry[5]
                    conflicts.append(conflict_cmd)
                    detail.append((pos, refresh_until, conflict_cmd))
                    if (
                        conflict_expiry is None
                        or refresh_until < conflict_expiry
                    ):
                        conflict_expiry = refresh_until
                    # Only an access into the refreshing subarray is gated
                    # under SARP (the unconditional non-SARP refresh gate
                    # is pre-folded into ``ready`` at classify time).
                    if sarp and refresh_until > ready:
                        ready = refresh_until
                rank_i = entry[6]
                gate = rank_act_gate.get(rank_i)
                if gate is None:
                    rank = ranks[rank_i]
                    gate = rank.next_act
                    if not sarp and rank.refab_until > gate:
                        gate = rank.refab_until
                    history = rank.act_history
                    if len(history) == history.maxlen:
                        oldest = history[0]
                        tfaw_now = device.tfaw_in_force(rank, first)
                        refresh_end = max(rank.refab_until, rank.pb_refresh_until)
                        if refresh_end > first:
                            # SARP-inflated window while the rank refreshes:
                            # legal inside the refresh if the inflated window
                            # expires first, otherwise at the later of the
                            # refresh end and the base window (piecewise).
                            inflated = oldest + tfaw_now
                            if inflated < refresh_end:
                                faw_ready = inflated
                            else:
                                faw_ready = max(refresh_end, oldest + timings.tFAW)
                        else:
                            faw_ready = oldest + tfaw_now
                        if faw_ready > gate:
                            gate = faw_ready
                    rank_act_gate[rank_i] = gate
                if gate > ready:
                    ready = gate
            append_ready(ready)
            if ready < ready_min:
                ready_min = ready

        self.window_demand_ready = ready_min
        self.window_conflict_expiry = conflict_expiry
        horizon = ready_min if ready_min > first else first
        if conflict_expiry is not None and conflict_expiry < horizon:
            horizon = conflict_expiry
        return horizon, conflicts

    # -- event horizon (cycle-skipping kernel) ----------------------------------
    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` at which demand scheduling can change
        without a queue mutation (``None``: never).

        Mirrors :meth:`_select_from` exactly: for each bank holding queued
        demand in the queue map currently in force (and not quiesced by
        the refresh policy), the command class FR-FCFS would try — column
        hit, precharge, or activate — is frozen along with the queues, so
        only that class's gating deadline is watched, plus the shared-bus
        deadlines and the rank activation windows where an ACTIVATE is
        wanted.  Stale deadlines of untouched banks cannot flip any
        ``can_issue`` outcome the frozen tick evaluated.
        """
        ctl = self.controller
        queues = ctl.queues
        device = ctl.device
        policy = ctl.refresh_policy
        timings = device.timings
        channel = device.channels[ctl.channel_id]
        serve_writes = ctl.drain.should_serve_writes(
            queues.write_count, queues.read_count
        )
        queue_map = queues.writes if serve_writes else queues.reads
        demand_keys = [key for key, queue in queue_map.items() if queue]
        if not demand_keys:
            return None
        candidates = channel.bus_deadlines(now, timings)
        by_rank: dict[int, list[int]] = {}
        for rank_index, bank_index in demand_keys:
            by_rank.setdefault(rank_index, []).append(bank_index)
        for rank_index, bank_indices in by_rank.items():
            rank = channel.ranks[rank_index]
            # Rank-level refresh occupancy gates demand to the rank (and,
            # under SARP, inflates its activation windows).
            if rank.refab_until > now:
                candidates.append(rank.refab_until)
            if rank.pb_refresh_until > now:
                candidates.append(rank.pb_refresh_until)
            need_activate = False
            for bank_index in bank_indices:
                if policy.blocks_demand(now, rank_index, bank_index):
                    continue
                bank = rank.banks[bank_index]
                open_row = bank.open_row
                if open_row is None:
                    need_activate = True
                    if bank.t_act > now:
                        candidates.append(bank.t_act)
                    if bank.refresh_until > now:
                        candidates.append(bank.refresh_until)
                elif self._wants_column(
                    (rank_index, bank_index),
                    open_row,
                    queue_map[(rank_index, bank_index)],
                ):
                    deadline = bank.t_wr if serve_writes else bank.t_rd
                    if deadline > now:
                        candidates.append(deadline)
                else:
                    if bank.t_pre > now:
                        candidates.append(bank.t_pre)
                    if bank.refresh_until > now:
                        candidates.append(bank.refresh_until)
            if need_activate:
                tfaw, _ = device.effective_tfaw_trrd(rank, now)
                if rank.next_act > now:
                    candidates.append(rank.next_act)
                if len(rank.act_history) == rank.act_history.maxlen:
                    deadline = rank.act_history[0] + tfaw
                    if deadline > now:
                        candidates.append(deadline)
        return min(candidates) if candidates else None
