"""FR-FCFS (first-ready, first-come-first-served) command scheduling.

Each cycle the scheduler proposes at most one demand command for its
channel.  Column commands that hit an open row are preferred over row
commands (activates/precharges); ties are broken by request age.  The
candidate set is the read queues outside writeback mode and the write
queues while the channel drains writes.

The scheduler consults the refresh policy's ``blocks_demand`` hook so that
a mandatory (non-postponable) refresh can quiesce its target rank or bank,
and it skips activates whose target subarray is currently being refreshed
(the SARP subarray-conflict check), recording the conflict for statistics.
"""

from __future__ import annotations

from typing import Optional

from repro.controller.policies.base import SchedulerPolicy, register_scheduler
from repro.controller.request import MemRequest
from repro.dram.commands import Command, CommandType


@register_scheduler
class FRFCFSScheduler(SchedulerPolicy):
    """Row hits first, then oldest-first row commands (the paper's baseline)."""

    name = "frfcfs"

    # -- public API ---------------------------------------------------------
    def select(self, cycle: int) -> Optional[tuple[Command, Optional[MemRequest]]]:
        """Choose the demand command to issue this cycle, if any."""
        self.last_conflicts = []
        ctl = self.controller
        queues = ctl.queues
        serve_writes = ctl.drain.should_serve_writes(
            queues.write_count, queues.read_count
        )
        selection = self._select_from(cycle, writes=serve_writes)
        if selection is not None:
            return selection
        # While not draining, writes are only served if there are no reads at
        # all (handled above).  While draining, reads are never served: the
        # paper's writeback mode blocks reads on the whole channel.
        return None

    # -- row-hit gating (overridden by the capped variant) --------------------
    def _hits_allowed(self, bank_key: tuple[int, int]) -> bool:
        """Whether open-row hits in this bank may still be preferred.

        The base policy always prefers hits; the row-hit-capped variant
        demotes a bank's hits after a streak so older conflicting requests
        force a close.  Both :meth:`_select_from` and
        :meth:`next_event_cycle` consult this hook, keeping the demand
        horizon consistent with the frozen selection outcome.
        """
        return True

    def _wants_column(self, bank_key: tuple[int, int], open_row: int, queue) -> bool:
        """Whether the frozen candidate for this open-row bank is a column hit.

        Classification hook shared by :meth:`next_event_cycle`'s bank walk:
        with the queues frozen, this decides which deadline class the walk
        watches for the bank (column versus precharge).  FR-FCFS prefers a
        hit whenever any queued request matches the open row (and the
        row-hit gate allows it); FCFS overrides this with its head-request
        rule so the shared walk stays consistent with its selection.
        """
        return self._hits_allowed(bank_key) and any(
            request.location.row == open_row for request in queue
        )

    # -- candidate generation -------------------------------------------------
    def _select_from(
        self, cycle: int, writes: bool
    ) -> Optional[tuple[Command, Optional[MemRequest]]]:
        ctl = self.controller
        queues = ctl.queues
        device = ctl.device
        policy = ctl.refresh_policy
        channel = ctl.channel_id
        queue_map = queues.writes if writes else queues.reads
        blocks_demand = policy.blocks_demand
        ranks = device.channels[channel].ranks

        hit_candidates: list[tuple[int, int, MemRequest]] = []
        row_candidates: list[tuple[int, int, MemRequest]] = []
        for bank_key, queue in queue_map.items():
            if not queue:
                continue
            rank_i, bank_i = bank_key
            if blocks_demand(cycle, rank_i, bank_i):
                continue
            bank = ranks[rank_i].banks[bank_i]
            open_row = bank.open_row
            if open_row is not None and self._hits_allowed(bank_key):
                for req in queue:
                    if req.location.row == open_row:
                        hit_candidates.append((req.arrival_cycle, req.request_id, req))
                        break
                else:
                    # Open row does not serve any queued request: precharge.
                    oldest = queue[0]
                    row_candidates.append(
                        (oldest.arrival_cycle, oldest.request_id, oldest),
                    )
            else:
                oldest = queue[0]
                row_candidates.append((oldest.arrival_cycle, oldest.request_id, oldest))

        window = ctl.config.controller.scheduling_window

        # First-ready: column commands for open-row hits, oldest first.
        # Legality does not depend on the autoprecharge choice, so a cheap
        # probe (always keep-open) is checked first and the real command —
        # whose keep-open decision needs a queue scan — is only built for
        # the one candidate that issues.
        hit_candidates.sort()
        for _, _, req in hit_candidates[:window]:
            probe = self._probe_column_command(req)
            if device.can_issue(probe, cycle):
                command = self._column_command(req, writes)
                return command, req

        # Then row commands (activate or precharge), oldest first.
        row_candidates.sort()
        for _, _, req in row_candidates[:window]:
            rank_i, bank_i = req.bank_key
            bank = ranks[rank_i].banks[bank_i]
            if bank.open_row is None:
                command = Command(
                    kind=CommandType.ACT,
                    channel=channel,
                    rank=rank_i,
                    bank=bank_i,
                    row=req.row,
                    request=req,
                )
                if device.can_issue(command, cycle):
                    return command, None
                if bank.refresh_conflicts_with(cycle, req.row):
                    device.record_subarray_conflict(command)
                    self.last_conflicts.append(command)
            else:
                command = Command(
                    kind=CommandType.PRE,
                    channel=channel,
                    rank=rank_i,
                    bank=bank_i,
                )
                if device.can_issue(command, cycle):
                    return command, None
        return None

    # -- event horizon (cycle-skipping kernel) ----------------------------------
    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` at which demand scheduling can change
        without a queue mutation (``None``: never).

        Mirrors :meth:`_select_from` exactly: for each bank holding queued
        demand in the queue map currently in force (and not quiesced by
        the refresh policy), the command class FR-FCFS would try — column
        hit, precharge, or activate — is frozen along with the queues, so
        only that class's gating deadline is watched, plus the shared-bus
        deadlines and the rank activation windows where an ACTIVATE is
        wanted.  Stale deadlines of untouched banks cannot flip any
        ``can_issue`` outcome the frozen tick evaluated.
        """
        ctl = self.controller
        queues = ctl.queues
        device = ctl.device
        policy = ctl.refresh_policy
        timings = device.timings
        channel = device.channels[ctl.channel_id]
        serve_writes = ctl.drain.should_serve_writes(
            queues.write_count, queues.read_count
        )
        queue_map = queues.writes if serve_writes else queues.reads
        demand_keys = [key for key, queue in queue_map.items() if queue]
        if not demand_keys:
            return None
        candidates = channel.bus_deadlines(now, timings)
        by_rank: dict[int, list[int]] = {}
        for rank_index, bank_index in demand_keys:
            by_rank.setdefault(rank_index, []).append(bank_index)
        for rank_index, bank_indices in by_rank.items():
            rank = channel.ranks[rank_index]
            # Rank-level refresh occupancy gates demand to the rank (and,
            # under SARP, inflates its activation windows).
            if rank.refab_until > now:
                candidates.append(rank.refab_until)
            if rank.pb_refresh_until > now:
                candidates.append(rank.pb_refresh_until)
            need_activate = False
            for bank_index in bank_indices:
                if policy.blocks_demand(now, rank_index, bank_index):
                    continue
                bank = rank.banks[bank_index]
                open_row = bank.open_row
                if open_row is None:
                    need_activate = True
                    if bank.t_act > now:
                        candidates.append(bank.t_act)
                    if bank.refresh_until > now:
                        candidates.append(bank.refresh_until)
                elif self._wants_column(
                    (rank_index, bank_index),
                    open_row,
                    queue_map[(rank_index, bank_index)],
                ):
                    deadline = bank.t_wr if serve_writes else bank.t_rd
                    if deadline > now:
                        candidates.append(deadline)
                else:
                    if bank.t_pre > now:
                        candidates.append(bank.t_pre)
                    if bank.refresh_until > now:
                        candidates.append(bank.refresh_until)
            if need_activate:
                tfaw, _ = device._effective_tfaw_trrd(rank, now)
                if rank.next_act > now:
                    candidates.append(rank.next_act)
                if len(rank.act_history) == rank.act_history.maxlen:
                    deadline = rank.act_history[0] + tfaw
                    if deadline > now:
                        candidates.append(deadline)
        return min(candidates) if candidates else None
