"""FR-FCFS (first-ready, first-come-first-served) command scheduling.

Each cycle the scheduler proposes at most one demand command for its
channel.  Column commands that hit an open row are preferred over row
commands (activates/precharges); ties are broken by request age.  The
candidate set is the read queues outside writeback mode and the write
queues while the channel drains writes.

The scheduler consults the refresh policy's ``blocks_demand`` hook so that
a mandatory (non-postponable) refresh can quiesce its target rank or bank,
and it skips activates whose target subarray is currently being refreshed
(the SARP subarray-conflict check), recording the conflict for statistics.
"""

from __future__ import annotations

from typing import Optional

from repro.controller.request import MemRequest
from repro.dram.commands import Command, CommandType


class FRFCFSScheduler:
    """FR-FCFS scheduler bound to one :class:`ChannelController`."""

    def __init__(self, controller):
        self.controller = controller

    # -- public API ---------------------------------------------------------
    def select(self, cycle: int) -> Optional[tuple[Command, Optional[MemRequest]]]:
        """Choose the demand command to issue this cycle, if any."""
        ctl = self.controller
        queues = ctl.queues
        serve_writes = ctl.drain.should_serve_writes(
            queues.write_count, queues.read_count
        )
        selection = self._select_from(cycle, writes=serve_writes)
        if selection is not None:
            return selection
        # While not draining, writes are only served if there are no reads at
        # all (handled above).  While draining, reads are never served: the
        # paper's writeback mode blocks reads on the whole channel.
        return None

    # -- candidate generation -------------------------------------------------
    def _select_from(
        self, cycle: int, writes: bool
    ) -> Optional[tuple[Command, Optional[MemRequest]]]:
        ctl = self.controller
        queues = ctl.queues
        device = ctl.device
        policy = ctl.refresh_policy
        channel = ctl.channel_id
        queue_map = queues.writes if writes else queues.reads

        hit_candidates: list[tuple[int, int, MemRequest]] = []
        row_candidates: list[tuple[int, int, MemRequest]] = []
        for bank_key, queue in queue_map.items():
            if not queue:
                continue
            rank_i, bank_i = bank_key
            if policy.blocks_demand(cycle, rank_i, bank_i):
                continue
            bank = device.bank(channel, rank_i, bank_i)
            if bank.open_row is not None:
                for req in queue:
                    if req.row == bank.open_row:
                        hit_candidates.append((req.arrival_cycle, req.request_id, req))
                        break
                else:
                    # Open row does not serve any queued request: precharge.
                    oldest = queue[0]
                    row_candidates.append((oldest.arrival_cycle, oldest.request_id, oldest))
            else:
                oldest = queue[0]
                row_candidates.append((oldest.arrival_cycle, oldest.request_id, oldest))

        window = ctl.config.controller.scheduling_window

        # First-ready: column commands for open-row hits, oldest first.
        hit_candidates.sort()
        for _, _, req in hit_candidates[:window]:
            command = self._column_command(req, writes)
            if device.can_issue(command, cycle):
                return command, req

        # Then row commands (activate or precharge), oldest first.
        row_candidates.sort()
        for _, _, req in row_candidates[:window]:
            rank_i, bank_i = req.bank_key
            bank = device.bank(channel, rank_i, bank_i)
            if bank.open_row is None:
                command = Command(
                    kind=CommandType.ACT,
                    channel=channel,
                    rank=rank_i,
                    bank=bank_i,
                    row=req.row,
                    request=req,
                )
                if device.can_issue(command, cycle):
                    return command, None
                if bank.refresh_conflicts_with(cycle, req.row):
                    device.record_subarray_conflict(command)
            else:
                command = Command(
                    kind=CommandType.PRE,
                    channel=channel,
                    rank=rank_i,
                    bank=bank_i,
                )
                if device.can_issue(command, cycle):
                    return command, None
        return None

    # -- helpers ---------------------------------------------------------------
    def _column_command(self, request: MemRequest, writes: bool) -> Command:
        """Build the column command serving ``request``.

        Under the closed-row policy the command auto-precharges unless
        another queued request targets the same row, in which case the row
        is kept open so the follow-up request gets a row hit.
        """
        ctl = self.controller
        keep_open = not ctl.config.controller.closed_row or self._another_hit_pending(request)
        if request.is_write:
            kind = CommandType.WR if keep_open else CommandType.WRA
        else:
            kind = CommandType.RD if keep_open else CommandType.RDA
        loc = request.location
        return Command(
            kind=kind,
            channel=loc.channel,
            rank=loc.rank,
            bank=loc.bank,
            row=loc.row,
            column=loc.column,
            request=request,
        )

    def _another_hit_pending(self, request: MemRequest) -> bool:
        """True if a different queued request targets the same bank and row."""
        queues = self.controller.queues
        key = request.bank_key
        for queue in (queues.reads[key], queues.writes[key]):
            for other in queue:
                if other is not request and other.row == request.row:
                    return True
        return False
