"""Backward-compatible alias for the FR-FCFS scheduler.

The scheduler implementations moved into the pluggable policy package
:mod:`repro.controller.policies`; import :class:`FRFCFSScheduler` from
there (or construct policies by name via
:func:`repro.controller.policies.create_scheduler`).
"""

from repro.controller.policies.frfcfs import FRFCFSScheduler

__all__ = ["FRFCFSScheduler"]
