"""Benchmark trend reporting over the committed ``benchmarks/history/``.

The repo commits one schema-versioned :class:`~repro.bench.run.BenchDocument`
snapshot per recorded run under ``benchmarks/history/BENCH_<stamp>.json``
(see ``repro bench run --history``).  :func:`build_trend_report` loads
that trajectory — optionally appending an uncommitted current run — and
renders, per benchmark, the wall-clock and fidelity-metric history as
markdown tables with inline unicode sparklines plus standalone SVG
sparkline files.

Drift detection reuses the exact compare gate the CI baseline check
applies (:func:`repro.bench.compare.compare_documents` with its default
thresholds and the per-record ``max_regression`` overrides): the latest
snapshot is diffed against its predecessor, and any failing entry marks
the benchmark's trend row with :data:`DRIFT_MARKER`.  The report always
prints a ``drift gate:`` verdict line so automation can grep for it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.bench.compare import Comparison, compare_documents
from repro.bench.run import BenchDocument
from repro.bench.spec import BenchError
from repro.report.plot import render_sparkline, unicode_sparkline

#: Grep-able marker attached to benchmarks whose latest snapshot fails
#: the compare gate against its predecessor.
DRIFT_MARKER = "[DRIFT]"

#: Glob for history snapshots; the embedded UTC stamp makes lexicographic
#: order chronological.
HISTORY_GLOB = "BENCH_*.json"


class TrendError(BenchError):
    """The history directory or its documents are unusable."""


def load_history(history_dir: str | Path) -> list[tuple[str, BenchDocument]]:
    """Load ``(filename, document)`` snapshots in chronological order."""
    directory = Path(history_dir)
    if not directory.is_dir():
        raise TrendError(f"history directory {directory} does not exist")
    snapshots = []
    for path in sorted(directory.glob(HISTORY_GLOB)):
        try:
            snapshots.append((path.name, BenchDocument.load(path)))
        except BenchError as error:
            raise TrendError(f"unreadable history snapshot {path.name}: {error}")
    return snapshots


@dataclass
class BenchTrend:
    """One benchmark's trajectory across the history."""

    name: str
    wall_clock_s: list = field(default_factory=list)  # float | None per snapshot
    metrics: dict = field(default_factory=dict)  # key -> [float | None]
    drift: bool = False
    drift_detail: str = ""

    @property
    def latest_wall(self) -> Optional[float]:
        present = [v for v in self.wall_clock_s if v is not None]
        return present[-1] if present else None


@dataclass
class TrendReport:
    """The assembled trajectory plus the latest-vs-previous drift verdict."""

    labels: list = field(default_factory=list)  # snapshot filenames
    tiers: list = field(default_factory=list)
    trends: list = field(default_factory=list)  # [BenchTrend]
    comparison: Optional[Comparison] = None

    @property
    def drifted(self) -> list:
        return [trend for trend in self.trends if trend.drift]

    @property
    def ok(self) -> bool:
        return not self.drifted

    def verdict_line(self) -> str:
        """The always-printed, grep-able gate line."""
        if len(self.labels) < 2:
            return (
                "drift gate: skipped "
                f"({len(self.labels)} snapshot(s); need at least 2)"
            )
        if self.ok:
            return f"drift gate: PASS ({len(self.trends)} benchmarks stable)"
        names = ", ".join(trend.name for trend in self.drifted)
        return (
            f"drift gate: FAIL ({len(self.drifted)} of {len(self.trends)} "
            f"benchmarks drifting: {names}) {DRIFT_MARKER}"
        )

    def to_markdown(self) -> str:
        lines = [
            "# Benchmark trend report",
            "",
            f"Snapshots ({len(self.labels)}, oldest first):",
            "",
        ]
        for label, tier in zip(self.labels, self.tiers):
            lines.append(f"- `{label}` (tier: {tier})")
        lines.append("")
        lines.append(f"**{self.verdict_line()}**")
        lines.append("")
        lines.append("## Wall clock")
        lines.append("")
        lines.append("| benchmark | trend | latest (s) | status |")
        lines.append("|---|---|---:|---|")
        for trend in self.trends:
            spark = unicode_sparkline(trend.wall_clock_s) or "—"
            latest = "—" if trend.latest_wall is None else f"{trend.latest_wall:.3f}"
            if trend.drift:
                status = f"{DRIFT_MARKER} {trend.drift_detail}".strip()
            else:
                status = "stable"
            lines.append(f"| {trend.name} | `{spark}` | {latest} | {status} |")
        lines.append("")
        metric_rows = [
            (trend.name, key, values)
            for trend in self.trends
            for key, values in sorted(trend.metrics.items())
        ]
        if metric_rows:
            lines.append("## Fidelity metrics")
            lines.append("")
            lines.append("| benchmark | metric | trend | latest |")
            lines.append("|---|---|---|---:|")
            for name, key, values in metric_rows:
                spark = unicode_sparkline(values) or "—"
                present = [v for v in values if v is not None]
                latest = "—" if not present else f"{present[-1]:g}"
                lines.append(f"| {name} | {key} | `{spark}` | {latest} |")
            lines.append("")
        if self.comparison is not None:
            lines.append("## Latest vs previous (compare gate)")
            lines.append("")
            lines.append(self.comparison.to_markdown())
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "schema": "repro.report.trend",
            "version": 1,
            "snapshots": list(self.labels),
            "verdict": self.verdict_line(),
            "ok": self.ok,
            "benchmarks": [
                {
                    "name": trend.name,
                    "wall_clock_s": trend.wall_clock_s,
                    "metrics": trend.metrics,
                    "drift": trend.drift,
                    "drift_detail": trend.drift_detail,
                }
                for trend in self.trends
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def build_trend_report(
    history_dir: str | Path,
    current: Optional[BenchDocument] = None,
    current_label: str = "<current run>",
) -> TrendReport:
    """Assemble the trajectory from committed history plus an optional
    uncommitted current document (appended as the newest snapshot)."""
    snapshots = load_history(history_dir)
    if current is not None:
        snapshots.append((current_label, current))
    report = TrendReport(
        labels=[label for label, _ in snapshots],
        tiers=[doc.tier for _, doc in snapshots],
    )
    names: list[str] = []
    for _, doc in snapshots:
        for name in doc.names():
            if name not in names:
                names.append(name)
    for name in sorted(names):
        trend = BenchTrend(name=name)
        for _, doc in snapshots:
            record = doc.record(name)
            trend.wall_clock_s.append(
                record.wall_clock_s if record is not None else None
            )
            if record is not None:
                for key, value in record.metrics.items():
                    trend.metrics.setdefault(key, [])
            for key in trend.metrics:
                record_value = (
                    record.metrics.get(key) if record is not None else None
                )
                column = trend.metrics[key]
                # Backfill snapshots seen before this metric first appeared.
                while len(column) < len(trend.wall_clock_s) - 1:
                    column.append(None)
                column.append(record_value)
        report.trends.append(trend)
    if len(snapshots) >= 2:
        previous, latest = snapshots[-2][1], snapshots[-1][1]
        comparison = compare_documents(previous, latest)
        report.comparison = comparison
        failing = {entry.name: entry for entry in comparison.failures}
        for trend in report.trends:
            entry = failing.get(trend.name)
            if entry is not None:
                trend.drift = True
                trend.drift_detail = f"{entry.status}: {entry.detail}".rstrip(": ")
    return report


def write_trend_report(report: TrendReport, out_dir: str | Path) -> list[Path]:
    """Write ``trend.md``, ``trend.json`` and per-benchmark sparkline SVGs."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    md_path = out / "trend.md"
    md_path.write_text(report.to_markdown() + "\n", encoding="utf-8")
    written.append(md_path)
    json_path = out / "trend.json"
    json_path.write_text(report.to_json() + "\n", encoding="utf-8")
    written.append(json_path)
    for trend in report.trends:
        svg_path = out / f"spark_{trend.name}.svg"
        svg_path.write_text(
            render_sparkline(trend.wall_clock_s), encoding="utf-8"
        )
        written.append(svg_path)
    return written
