"""Run report: traces, epoch trajectories and profiles in one document.

A simulation run leaves three kinds of observability residue behind
(PRs 6's ``repro.obs``): command **traces** (``--trace DIR``), in-trace
**epoch samples** (``--epoch-interval N``) and **profile** hot-spot
timings (``repro profile --json``).  :func:`build_run_report` stitches
them into a single human-readable document — per-trace summaries with
the structured :func:`~repro.obs.summarize.summarize_trace` sections,
epoch IPC trajectories as sparklines, and the profiler's hot-spot table
— rendered as markdown and, via a small dependency-free converter, HTML.
CI publishes the pair as a browsable artifact.
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.model import Table
from repro.obs.summarize import summarize_trace
from repro.obs.trace import read_trace
from repro.report.plot import render_sparkline, unicode_sparkline

#: Schema stamp of ``repro profile --json`` documents.
PROFILE_SCHEMA = "repro.obs.profile"


@dataclass
class TraceSection:
    """One trace file's digest inside the run report."""

    name: str
    summary: dict
    epochs: list = field(default_factory=list)  # header["epochs"] dicts
    epoch_totals: dict = field(default_factory=dict)

    @property
    def ipc_series(self) -> list:
        return [sample.get("ipc") for sample in self.epochs]


@dataclass
class RunReport:
    """Assembled run report; render with :meth:`to_markdown`."""

    title: str = "Run report"
    traces: list = field(default_factory=list)  # [TraceSection]
    profile: Optional[dict] = None  # parsed profile --json document
    notes: list = field(default_factory=list)

    def to_markdown(self) -> str:
        lines = [f"# {self.title}", ""]
        for note in self.notes:
            lines.append(f"> {note}")
            lines.append("")
        if not self.traces and self.profile is None:
            lines.append("Nothing to report: no traces or profile supplied.")
            lines.append("")
        for section in self.traces:
            lines.extend(_trace_markdown(section))
        if self.profile is not None:
            lines.extend(_profile_markdown(self.profile))
        return "\n".join(lines)

    def to_html(self) -> str:
        return markdown_to_html(self.to_markdown(), title=self.title)


def _command_table(summary: dict) -> Table:
    commands = summary.get("commands", {})
    return Table.build(
        ["command", "count"],
        [[op, count] for op, count in commands.items()],
    )


def _bank_table(summary: dict, top: int = 8) -> Table:
    utilization = summary.get("bank_utilization", {})
    ranked = sorted(utilization.items(), key=lambda kv: -kv[1]["utilization"])[:top]
    rows = [
        [key, f"{info['utilization'] * 100:.1f}%", info["commands"],
         info["busy_cycles"]]
        for key, info in ranked
    ]
    return Table.build(["bank", "busy", "commands", "busy cycles"], rows)


def _trace_markdown(section: TraceSection) -> list[str]:
    head = section.summary.get("header", {})
    overlap = section.summary.get("refresh_overlap", {})
    runs = section.summary.get("row_hit_runs", {})
    crosscheck = section.summary.get("crosscheck", {})
    lines = [
        f"## Trace: {section.name}",
        "",
        f"- workload `{head.get('workload')}` mechanism "
        f"`{head.get('mechanism')}` density {head.get('density_gb')}Gb",
        f"- cycles {head.get('cycles')} (warmup {head.get('warmup')}), "
        f"{head.get('records')} records, {head.get('dropped')} dropped",
        f"- refresh overlap: {overlap.get('refreshes_with_overlap', 0)} of "
        f"{overlap.get('refreshes', 0)} refresh windows overlapped demand "
        f"accesses ({overlap.get('same_bank_overlaps', 0)} same-bank, SARP)",
        f"- SARP subarray conflicts: {section.summary.get('sarp_conflicts', 0)}",
        f"- row-hit runs: count={runs.get('count', 0)} "
        f"mean={runs.get('mean', 0.0):.2f} max={runs.get('max', 0)}",
    ]
    if crosscheck:
        verdict = "OK" if crosscheck.get("ok", True) else "MISMATCH"
        lines.append(f"- device-counter crosscheck: **{verdict}**")
    lines.append("")
    lines.append("### Commands")
    lines.append("")
    lines.append(_command_table(section.summary).to_markdown())
    lines.append("")
    bank_table = _bank_table(section.summary)
    if bank_table.rows:
        lines.append("### Busiest banks")
        lines.append("")
        lines.append(bank_table.to_markdown())
        lines.append("")
    if section.epochs:
        ipc = section.ipc_series
        finite = [v for v in ipc if v is not None]
        lines.append("### Epoch IPC trajectory")
        lines.append("")
        lines.append(
            f"- {len(section.epochs)} epochs; IPC "
            f"min={min(finite):.4f} max={max(finite):.4f} "
            f"last={finite[-1]:.4f}" if finite else "- no IPC samples"
        )
        lines.append(f"- trend: `{unicode_sparkline(ipc)}`")
        if section.epoch_totals:
            totals = section.epoch_totals
            parts = " ".join(
                f"{key}={totals[key]}" for key in sorted(totals)
                if isinstance(totals[key], (int, float))
            )
            lines.append(f"- totals: {parts}")
        lines.append("")
    return lines


def _profile_markdown(profile: dict) -> list[str]:
    spans = profile.get("spans", {})
    rows = []
    for name, info in sorted(
        spans.items(), key=lambda kv: -kv[1].get("total_s", 0.0)
    ):
        count = info.get("count", 0)
        total = info.get("total_s", 0.0)
        per_call = total / count if count else 0.0
        rows.append(
            [name, count, f"{total:.4f}", f"{per_call * 1e3:.3f}",
             f"{info.get('max_s', 0.0) * 1e3:.3f}"]
        )
    lines = [
        "## Profile hot spots",
        "",
    ]
    experiment = profile.get("experiment")
    if experiment:
        lines.append(f"- experiment: `{experiment}`")
    engine = profile.get("engine", {})
    if engine:
        engine_line = (
            f"- engine: {engine.get('jobs', 0)} jobs, "
            f"{engine.get('simulated', 0)} simulated"
        )
        shards = engine.get("shards", 0)
        if shards:
            engine_line += f", {shards} shards ({engine.get('steals', 0)} stolen)"
        degradation = [
            f"{engine.get(field, 0)} {label}"
            for field, label in (
                ("worker_failures", "worker failures"),
                ("timeouts", "timeouts"),
                ("retries", "retries"),
            )
            if engine.get(field, 0)
        ]
        if degradation:
            engine_line += " — degraded: " + ", ".join(degradation)
        lines.append(engine_line)
    lines.append("")
    lines.append(
        Table.build(
            ["span", "calls", "total (s)", "mean (ms)", "max (ms)"], rows
        ).to_markdown()
    )
    lines.append("")
    return lines


def load_profile(path: str | Path) -> dict:
    """Load and validate a ``repro profile --json`` document."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"{path} is not a {PROFILE_SCHEMA} document "
            f"(run `repro profile --json`)"
        )
    return data


def build_run_report(
    trace_paths: Sequence[str | Path] = (),
    profile_path: Optional[str | Path] = None,
    title: str = "Run report",
) -> RunReport:
    """Summarize every trace and the optional profile into one report."""
    report = RunReport(title=title)
    for path in trace_paths:
        path = Path(path)
        header, records = read_trace(path)
        section = TraceSection(
            name=path.name,
            summary=summarize_trace(header, records),
            epochs=list(header.get("epochs", ())),
            epoch_totals=dict(header.get("epoch_totals", {})),
        )
        report.traces.append(section)
    if profile_path is not None:
        report.profile = load_profile(profile_path)
    return report


def write_run_report(report: RunReport, out_dir: str | Path) -> list[Path]:
    """Write ``report.md``, ``report.html`` and per-trace IPC sparklines."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    md_path = out / "report.md"
    md_path.write_text(report.to_markdown() + "\n", encoding="utf-8")
    written.append(md_path)
    html_path = out / "report.html"
    html_path.write_text(report.to_html(), encoding="utf-8")
    written.append(html_path)
    for section in report.traces:
        if section.epochs:
            svg_path = out / f"ipc_{Path(section.name).stem}.svg"
            svg_path.write_text(
                render_sparkline(section.ipc_series), encoding="utf-8"
            )
            written.append(svg_path)
    return written


# -- minimal markdown -> HTML ------------------------------------------------

_HTML_STYLE = """\
body { font-family: sans-serif; max-width: 60rem; margin: 2rem auto;
       padding: 0 1rem; color: #1c1c1c; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem; text-align: left; }
th { background: #f2f2f2; }
code { font-family: monospace; background: #f6f6f6; padding: 0 0.2rem; }
pre { background: #f6f6f6; padding: 0.6rem; overflow-x: auto; }
blockquote { color: #555; border-left: 3px solid #ccc; margin-left: 0;
             padding-left: 0.8rem; }
"""


def _inline(text: str) -> str:
    """Escape, then re-introduce `code` and **bold** spans."""
    escaped = _html.escape(text, quote=False)
    out = []
    # Backtick spans first (they may contain ** sequences).
    parts = escaped.split("`")
    for index, part in enumerate(parts):
        if index % 2 == 1 and index < len(parts) - (len(parts) % 2):
            out.append(f"<code>{part}</code>")
        else:
            chunks = part.split("**")
            for j, chunk in enumerate(chunks):
                if j % 2 == 1 and j < len(chunks) - (len(chunks) % 2):
                    out.append(f"<strong>{chunk}</strong>")
                else:
                    out.append(chunk)
    return "".join(out)


def markdown_to_html(markdown: str, title: str = "report") -> str:
    """Convert the restricted markdown this package emits to HTML.

    Handles headings, pipe tables, unordered lists, blockquotes and fenced
    code blocks — exactly the constructs the report renderers produce.
    Not a general markdown parser.
    """
    body: list[str] = []
    lines = markdown.splitlines()
    i = 0
    in_list = False

    def close_list() -> None:
        nonlocal in_list
        if in_list:
            body.append("</ul>")
            in_list = False

    while i < len(lines):
        line = lines[i]
        stripped = line.strip()
        if stripped.startswith("```"):
            close_list()
            i += 1
            block = []
            while i < len(lines) and not lines[i].strip().startswith("```"):
                block.append(lines[i])
                i += 1
            body.append(
                "<pre><code>"
                + _html.escape("\n".join(block), quote=False)
                + "</code></pre>"
            )
            i += 1
            continue
        if stripped.startswith("|") and i + 1 < len(lines) and set(
            lines[i + 1].strip()
        ) <= set("|-: "):
            close_list()
            header_cells = [c.strip() for c in stripped.strip("|").split("|")]
            body.append("<table><thead><tr>")
            body.extend(f"<th>{_inline(cell)}</th>" for cell in header_cells)
            body.append("</tr></thead><tbody>")
            i += 2
            while i < len(lines) and lines[i].strip().startswith("|"):
                cells = [c.strip() for c in lines[i].strip().strip("|").split("|")]
                body.append("<tr>")
                body.extend(f"<td>{_inline(cell)}</td>" for cell in cells)
                body.append("</tr>")
                i += 1
            body.append("</tbody></table>")
            continue
        if stripped.startswith("#"):
            close_list()
            level = len(stripped) - len(stripped.lstrip("#"))
            level = min(level, 6)
            body.append(
                f"<h{level}>{_inline(stripped[level:].strip())}</h{level}>"
            )
        elif stripped.startswith("- "):
            if not in_list:
                body.append("<ul>")
                in_list = True
            body.append(f"<li>{_inline(stripped[2:])}</li>")
        elif stripped.startswith("> "):
            close_list()
            body.append(f"<blockquote>{_inline(stripped[2:])}</blockquote>")
        elif stripped:
            close_list()
            body.append(f"<p>{_inline(stripped)}</p>")
        else:
            close_list()
        i += 1
    close_list()
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_html.escape(title)}</title>"
        f"<style>{_HTML_STYLE}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )
