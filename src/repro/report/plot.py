"""Dependency-free, deterministic SVG plotting for report artifacts.

The container this repo targets carries no plotting stack, so report
plots are rendered by hand as SVG: line charts, grouped bar charts and
sparklines built from the renderer-independent
:class:`~repro.analysis.model.Chart`.  Two properties matter more than
beauty:

* **No dependencies** — pure string assembly; works everywhere Python
  does.  (If matplotlib is ever added to the environment, it can render
  the same :class:`Chart` model; nothing here assumes it exists.)
* **Determinism** — the same chart data always produces the same bytes,
  so generated ``.svg`` artifacts can be committed, diffed and
  golden-checked exactly like the markdown tables.

:func:`unicode_sparkline` renders a tiny inline trend (▁▂▄█) for
markdown reports where an image would be overkill.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.model import Chart

#: Categorical palette (colorblind-safe Okabe-Ito subset).
PALETTE = (
    "#0072b2",
    "#d55e00",
    "#009e73",
    "#cc79a7",
    "#e69f00",
    "#56b4e9",
    "#f0e442",
    "#000000",
)

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (keeps output deterministic)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _finite(values) -> list[float]:
    return [v for v in values if v is not None]


def _axis_range(values: Sequence[float]) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo > 0:
        # Anchor at zero when the data is non-negative: bar heights and
        # line positions then encode magnitude, not just variation.
        lo = 0.0
    if hi == lo:
        hi = lo + 1.0
    return lo, hi


def unicode_sparkline(values: Sequence[Optional[float]]) -> str:
    """Eight-level block-character trend line for inline markdown."""
    finite = _finite(values)
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for value in values:
        if value is None:
            out.append(" ")
            continue
        if span == 0:
            out.append(_SPARK_LEVELS[3])
            continue
        level = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


class _Svg:
    """Tiny SVG element buffer."""

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self.parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'font-family="monospace" font-size="11">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]

    def text(self, x: float, y: float, content: str, **attrs: str) -> None:
        extra = "".join(
            f' {key.replace("_", "-")}="{value}"' for key, value in attrs.items()
        )
        content = (
            content.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        )
        self.parts.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}"{extra}>{content}</text>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float, stroke: str,
             width: float = 1.0, dash: str = "") -> None:
        extra = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" stroke="{stroke}" '
            f'stroke-width="{_fmt(width)}"{extra}/>'
        )

    def polyline(self, points: Sequence[tuple[float, float]], stroke: str) -> None:
        path = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self.parts.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="1.5"/>'
        )

    def circle(self, x: float, y: float, r: float, fill: str) -> None:
        self.parts.append(
            f'<circle cx="{_fmt(x)}" cy="{_fmt(y)}" r="{_fmt(r)}" fill="{fill}"/>'
        )

    def rect(self, x: float, y: float, w: float, h: float, fill: str) -> None:
        self.parts.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" '
            f'height="{_fmt(h)}" fill="{fill}"/>'
        )

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"]) + "\n"


def _frame(svg: _Svg, chart: Chart, left: float, top: float,
           right: float, bottom: float, lo: float, hi: float) -> None:
    """Axes, four horizontal gridlines with tick labels, title, y label."""
    svg.text(left, 16, chart.title, font_weight="bold")
    if chart.y_label:
        svg.text(left, top - 6, chart.y_label, fill="#555555")
    ticks = 4
    for i in range(ticks + 1):
        frac = i / ticks
        y = bottom - frac * (bottom - top)
        value = lo + frac * (hi - lo)
        svg.line(left, y, right, y, "#dddddd")
        svg.text(left - 6, y + 4, f"{value:g}", text_anchor="end", fill="#555555")
    svg.line(left, bottom, right, bottom, "#333333")
    svg.line(left, top, left, bottom, "#333333")


def _legend(svg: _Svg, chart: Chart, right: float, top: float) -> None:
    y = top
    for index, series in enumerate(chart.series):
        color = PALETTE[index % len(PALETTE)]
        svg.rect(right + 10, y - 8, 10, 10, color)
        svg.text(right + 24, y, series.name)
        y += 16


def render_chart(chart: Chart, width: int = 640, height: int = 300) -> str:
    """Render a :class:`Chart` (line or grouped bars) to SVG text."""
    legend_w = max([len(s.name) for s in chart.series], default=0) * 7 + 40
    left, top = 56.0, 32.0
    right, bottom = float(width - legend_w), float(height - 36)
    svg = _Svg(width, height)
    finite = [v for s in chart.series for v in _finite(s.values)]
    if not finite or not chart.x_labels:
        svg.text(left, height / 2, "no data")
        return svg.render()
    lo, hi = _axis_range(finite)
    _frame(svg, chart, left, top, right, bottom, lo, hi)
    _legend(svg, chart, right, top)

    def y_of(value: float) -> float:
        return bottom - (value - lo) / (hi - lo) * (bottom - top)

    n = len(chart.x_labels)
    slot = (right - left) / n
    for i, label in enumerate(chart.x_labels):
        svg.text(left + (i + 0.5) * slot, bottom + 16, label, text_anchor="middle")
    if chart.kind == "bar":
        bars = len(chart.series)
        bar_w = slot * 0.8 / max(bars, 1)
        zero = y_of(max(lo, min(0.0, hi)))
        for s_index, series in enumerate(chart.series):
            color = PALETTE[s_index % len(PALETTE)]
            for i, value in enumerate(series.values[:n]):
                if value is None:
                    continue
                x = left + (i + 0.1) * slot + s_index * bar_w
                y = y_of(value)
                svg.rect(x, min(y, zero), bar_w * 0.92, abs(zero - y), color)
    else:
        for s_index, series in enumerate(chart.series):
            color = PALETTE[s_index % len(PALETTE)]
            points = [
                (left + (i + 0.5) * slot, y_of(value))
                for i, value in enumerate(series.values[:n])
                if value is not None
            ]
            if len(points) > 1:
                svg.polyline(points, color)
            for x, y in points:
                svg.circle(x, y, 2.5, color)
    return svg.render()


def render_sparkline(
    values: Sequence[Optional[float]], width: int = 160, height: int = 36
) -> str:
    """Small standalone SVG trend line (one series, no axes)."""
    svg = _Svg(width, height)
    finite = _finite(values)
    if not finite:
        svg.text(4, height / 2, "no data")
        return svg.render()
    lo, hi = min(finite), max(finite)
    if hi == lo:
        hi = lo + 1.0
    pad = 4.0
    n = len(values)
    step = (width - 2 * pad) / max(n - 1, 1)
    points = [
        (pad + i * step, height - pad - (v - lo) / (hi - lo) * (height - 2 * pad))
        for i, v in enumerate(values)
        if v is not None
    ]
    if len(points) > 1:
        svg.polyline(points, PALETTE[0])
    if points:
        svg.circle(points[-1][0], points[-1][1], 2.5, PALETTE[1])
    return svg.render()


__all__ = [
    "PALETTE",
    "render_chart",
    "render_sparkline",
    "unicode_sparkline",
]
