"""Paper artifact generator: Tables 2-6 and Figures 5-16 from the store.

Following the SimCash ``paper_generator`` pattern, every headline artifact
of the reproduction is regenerated from data rather than copied from test
output: each :class:`PaperArtifact` names one paper table/figure, the
experiment function that produces its payload, the
:mod:`repro.analysis` tabulation that models it, and a chart extraction
for the SVG plot.  :func:`generate_paper_report` runs the experiments
through a shared (optionally store-backed)
:class:`~repro.sim.runner.ExperimentRunner`, so a **warm fingerprint-keyed
result store regenerates every artifact with zero simulations** — the
engine summary embedded in the report index proves it.

Per artifact the generator writes four files into the output directory:

* ``<name>.json`` — the canonical experiment payload (sorted keys),
* ``<name>.md``   — the markdown table(s),
* ``<name>.tex``  — a LaTeX-ready ``tabular`` block,
* ``<name>.svg``  — the plot.

Golden crosscheck: when the run's window and scale match the pinned
golden identity (the same reduced scale ``tests/golden/`` is generated
at), the freshly computed Table 2 summary and Figure 13 32 Gb row are
compared against the committed fixtures — a report that disagrees with
the pinned paper numbers fails loudly instead of silently publishing
drifted artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis import figures as fig
from repro.analysis import tables as tab
from repro.analysis.model import Chart, Table
from repro.report.plot import render_chart
from repro.sim import experiments
from repro.sim.experiments import ExperimentScale, default_scale
from repro.sim.runner import ExperimentRunner

#: The golden fixtures' identity (see ``tests/test_golden_regression.py``:
#: the fixtures are regenerated under exactly this window and scale, so
#: the crosscheck only claims disagreement when it compares like with
#: like).
GOLDEN_CYCLES = 1200
GOLDEN_WARMUP = 200
GOLDEN_SCALE = ExperimentScale(
    workloads_per_category=1, sensitivity_workloads=1, densities=(8, 32)
)

#: Golden fixture file -> how to slice the artifact payloads for it.
GOLDEN_FIXTURES = {
    "table2_summary": ("table2", lambda payload: payload),
    "figure13_32gb_row": ("figure13", lambda payload: payload.get("32")),
}


class ReportError(ValueError):
    """A report request or input document is malformed."""


def canonical(payload: object) -> object:
    """JSON round trip: int keys become strings, tuples become lists."""
    return json.loads(json.dumps(payload, sort_keys=True, default=_jsonable))


def _jsonable(value: object) -> object:
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    raise TypeError(f"not JSON-serializable: {value!r}")


def golden_dir() -> Optional[Path]:
    """The repo's ``tests/golden`` directory, or ``None`` when not in a
    source checkout (installed packages cannot crosscheck)."""
    root = Path(__file__).resolve().parents[3]
    candidate = root / "tests" / "golden"
    if (root / "pyproject.toml").exists() and candidate.is_dir():
        return candidate
    return None


# -- chart extractions -------------------------------------------------------


def _density_series(result: dict, kind: str, title: str, y_label: str) -> Chart:
    """``{density: {mechanism: value}}`` -> one series per mechanism."""
    densities = sorted(result)
    mechanisms = list(next(iter(result.values())).keys())
    return Chart.build(
        title,
        [f"{d}Gb" for d in densities],
        {m: [result[d][m] for d in densities] for m in mechanisms},
        kind=kind,
        y_label=y_label,
    )


def _chart_figure5(points) -> Chart:
    return Chart.build(
        "Figure 5: refresh latency (tRFCab) trend",
        [p.density_gb for p in points],
        {
            "present": [p.present_ns for p in points],
            "projection 1": [p.projection1_ns for p in points],
            "projection 2": [p.projection2_ns for p in points],
        },
        kind="line",
        y_label="tRFCab (ns)",
    )


def _chart_figure6(result: dict) -> Chart:
    densities = sorted(next(iter(result.values())).keys())
    categories = sorted(k for k in result if k >= 0)
    return Chart.build(
        "Figure 6: performance loss due to REFab",
        [f"{c}%" for c in categories],
        {f"{d}Gb": [result[c][d] for c in categories] for d in densities},
        kind="bar",
        y_label="WS loss (%)",
    )


def _chart_figure7(result: dict) -> Chart:
    return _density_series(
        result, "bar", "Figure 7: performance loss due to REFab and REFpb",
        "WS loss (%)"
    )


def _chart_figure12(sweep: dict) -> Chart:
    # One bar group per workload at the largest density (the paper's
    # headline panel); the per-density tables carry the full data.
    density = max(sweep)
    per_workload = sweep[density]
    mechanisms = sorted(next(iter(per_workload.values())).keys())
    names = sorted(per_workload)
    return Chart.build(
        f"Figure 12 ({density}Gb): WS normalized to REFab",
        names,
        {m: [per_workload[w][m] for w in names] for m in mechanisms},
        kind="bar",
        y_label="normalized WS",
    )


def _chart_figure13(result: dict) -> Chart:
    return _density_series(
        result, "bar", "Figure 13: average WS improvement over REFab (%)",
        "improvement (%)"
    )


def _chart_figure14(result: dict) -> Chart:
    return _density_series(
        result, "bar", "Figure 14: energy per access (nJ)", "nJ/access"
    )


def _chart_figure15(result: dict) -> Chart:
    categories = sorted(result)
    densities = sorted(next(iter(result.values())).keys())
    series = {}
    for density in densities:
        series[f"vs REFab {density}Gb"] = [
            result[c][density]["vs_refab"] for c in categories
        ]
        series[f"vs REFpb {density}Gb"] = [
            result[c][density]["vs_refpb"] for c in categories
        ]
    return Chart.build(
        "Figure 15: DSARP improvement by memory intensity",
        [f"{c}%" for c in categories],
        series,
        kind="bar",
        y_label="improvement (%)",
    )


def _chart_figure16(result: dict) -> Chart:
    return _density_series(
        result, "bar", "Figure 16: WS normalized to REFab (FGR / AR / DSARP)",
        "normalized WS"
    )


def _chart_table2(summary: dict) -> Chart:
    densities = sorted(summary)
    mechanisms = ("darp", "sarppb", "dsarp")
    return Chart.build(
        "Table 2: gmean WS improvement over REFpb (%)",
        [f"{d}Gb" for d in densities],
        {m: [summary[d][m]["gmean_refpb"] for d in densities] for m in mechanisms},
        kind="bar",
        y_label="gmean improvement (%)",
    )


def _chart_table3(result: dict) -> Chart:
    cores = sorted(result)
    keys = (
        "weighted_speedup_improvement",
        "harmonic_speedup_improvement",
        "maximum_slowdown_reduction",
        "energy_per_access_reduction",
    )
    return Chart.build(
        "Table 3: DSARP vs REFab across core counts",
        [str(c) for c in cores],
        {key: [result[c][key] for c in cores] for key in keys},
        kind="line",
        y_label="improvement (%)",
    )


def _chart_table4(result: dict) -> Chart:
    tfaws = sorted(result)
    return Chart.build(
        "Table 4: SARPpb over REFpb vs tFAW",
        [str(t) for t in tfaws],
        {"WS improvement": [result[t] for t in tfaws]},
        kind="line",
        y_label="improvement (%)",
    )


def _chart_table5(result: dict) -> Chart:
    counts = sorted(result)
    return Chart.build(
        "Table 5: effect of subarrays per bank",
        [str(c) for c in counts],
        {"WS improvement": [result[c] for c in counts]},
        kind="line",
        y_label="improvement (%)",
    )


def _chart_table6(result: dict) -> Chart:
    densities = sorted(result)
    keys = ("gmean_refpb", "gmean_refab", "max_refpb", "max_refab")
    return Chart.build(
        "Table 6: DSARP improvement with 64 ms retention",
        [f"{d}Gb" for d in densities],
        {key: [result[d][key] for d in densities] for key in keys},
        kind="bar",
        y_label="improvement (%)",
    )


# -- the artifact registry ---------------------------------------------------


def _blocks(tabulate: Callable) -> Callable[[object], list[Table]]:
    """Normalize a tabulation to a list of table blocks."""

    def wrapped(payload: object) -> list[Table]:
        result = tabulate(payload)
        return result if isinstance(result, list) else [result]

    return wrapped


@dataclass(frozen=True)
class PaperArtifact:
    """One regenerable paper artifact."""

    name: str
    title: str
    experiment: Callable
    tabulate: Callable[[object], list[Table]]
    chart: Callable[[object], Chart]
    simulates: bool = True

    def payload(self, runner: ExperimentRunner, scale: ExperimentScale) -> object:
        if not self.simulates:
            return self.experiment()
        return self.experiment(runner=runner, scale=scale)


ARTIFACTS: dict[str, PaperArtifact] = {
    artifact.name: artifact
    for artifact in (
        PaperArtifact(
            "figure5", "Figure 5: refresh latency (tRFCab) trend",
            experiments.figure5_refresh_latency_trend,
            _blocks(fig.tabulate_figure5), _chart_figure5, simulates=False,
        ),
        PaperArtifact(
            "figure6", "Figure 6: performance loss due to REFab",
            experiments.figure6_refab_performance_loss,
            _blocks(fig.tabulate_figure6), _chart_figure6,
        ),
        PaperArtifact(
            "figure7", "Figure 7: performance loss due to REFab and REFpb",
            experiments.figure7_refab_vs_refpb_loss,
            _blocks(fig.tabulate_figure7), _chart_figure7,
        ),
        PaperArtifact(
            "figure12", "Figure 12: per-workload WS normalized to REFab",
            experiments.figure12_workload_sweep,
            _blocks(fig.tabulate_figure12), _chart_figure12,
        ),
        PaperArtifact(
            "figure13", "Figure 13: average WS improvement over REFab",
            experiments.figure13_all_mechanisms,
            _blocks(fig.tabulate_figure13), _chart_figure13,
        ),
        PaperArtifact(
            "figure14", "Figure 14: energy per access",
            experiments.figure14_energy_per_access,
            _blocks(fig.tabulate_figure14), _chart_figure14,
        ),
        PaperArtifact(
            "figure15", "Figure 15: DSARP improvement by memory intensity",
            experiments.figure15_memory_intensity,
            _blocks(fig.tabulate_figure15), _chart_figure15,
        ),
        PaperArtifact(
            "figure16", "Figure 16: WS normalized to REFab (FGR / AR / DSARP)",
            experiments.figure16_fgr_comparison,
            _blocks(fig.tabulate_figure16), _chart_figure16,
        ),
        PaperArtifact(
            "table2", "Table 2: WS improvement of DARP/SARPpb/DSARP",
            experiments.table2_improvement_summary,
            _blocks(tab.tabulate_table2), _chart_table2,
        ),
        PaperArtifact(
            "table3", "Table 3: DSARP vs REFab across core counts",
            experiments.table3_core_count,
            _blocks(tab.tabulate_table3), _chart_table3,
        ),
        PaperArtifact(
            "table4", "Table 4: SARPpb over REFpb vs tFAW",
            experiments.table4_tfaw_sensitivity,
            _blocks(tab.tabulate_table4), _chart_table4,
        ),
        PaperArtifact(
            "table5", "Table 5: effect of subarrays per bank",
            experiments.table5_subarray_sensitivity,
            _blocks(tab.tabulate_table5), _chart_table5,
        ),
        PaperArtifact(
            "table6", "Table 6: DSARP improvement with 64 ms retention",
            experiments.table6_refresh_interval,
            _blocks(tab.tabulate_table6), _chart_table6,
        ),
    )
}


# -- generation --------------------------------------------------------------


@dataclass
class CrosscheckResult:
    """Verdict of one golden-fixture comparison."""

    fixture: str
    artifact: str
    status: str  # "ok" | "mismatch" | "skipped"
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "mismatch"


@dataclass
class PaperReport:
    """What :func:`generate_paper_report` produced."""

    out_dir: Path
    artifacts: list = field(default_factory=list)  # (name, [paths])
    crosschecks: list = field(default_factory=list)
    engine_summary: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(check.failed for check in self.crosschecks)


def _artifact_markdown(artifact: PaperArtifact, blocks: list[Table]) -> str:
    lines = [f"## {artifact.title}", ""]
    for block in blocks:
        if block.title and block.title != artifact.title:
            lines.append(f"### {block.title}")
            lines.append("")
        lines.append(block.to_markdown())
        lines.append("")
    lines.append(f"![{artifact.name}]({artifact.name}.svg)")
    lines.append("")
    return "\n".join(lines)


def _crosscheck_applies(runner: ExperimentRunner, scale: ExperimentScale) -> bool:
    return (
        runner.cycles == GOLDEN_CYCLES
        and runner.warmup == GOLDEN_WARMUP
        and runner.seed == 0
        and runner.scheduler is None
        and runner.page_policy is None
        and scale == GOLDEN_SCALE
    )


def crosscheck_goldens(
    payloads: dict,
    runner: ExperimentRunner,
    scale: ExperimentScale,
) -> list[CrosscheckResult]:
    """Compare freshly computed payloads against the pinned golden numbers.

    Checks are strict equality on the canonical JSON form — exactly the
    comparison ``tests/test_golden_regression.py`` makes — but only when
    the run matches the golden identity (window, seed, scale, default
    policies); any other configuration legitimately produces different
    numbers and is reported as ``skipped``.
    """
    fixtures_dir = golden_dir()
    results = []
    for fixture, (artifact_name, slicer) in GOLDEN_FIXTURES.items():
        if artifact_name not in payloads:
            continue
        if not _crosscheck_applies(runner, scale):
            results.append(
                CrosscheckResult(
                    fixture, artifact_name, "skipped",
                    "run window/scale differs from the golden identity",
                )
            )
            continue
        if fixtures_dir is None or not (fixtures_dir / f"{fixture}.json").exists():
            results.append(
                CrosscheckResult(
                    fixture, artifact_name, "skipped",
                    "golden fixtures unavailable (not a source checkout)",
                )
            )
            continue
        golden = json.loads((fixtures_dir / f"{fixture}.json").read_text())
        computed = slicer(canonical(payloads[artifact_name]))
        if computed == golden:
            results.append(CrosscheckResult(fixture, artifact_name, "ok"))
        else:
            results.append(
                CrosscheckResult(
                    fixture, artifact_name, "mismatch",
                    f"regenerated {artifact_name} disagrees with the pinned "
                    f"tests/golden/{fixture}.json; the result store is stale "
                    f"or tampered, or behavior drifted — do not publish",
                )
            )
    return results


def _index_markdown(report: PaperReport, runner: ExperimentRunner,
                    scale: ExperimentScale) -> str:
    summary = report.engine_summary
    lines = [
        "# Paper artifacts",
        "",
        f"Regenerated from the result store: {summary.get('jobs', 0)} jobs "
        f"planned — {summary.get('simulated', 0)} simulated, "
        f"{summary.get('store_hits', 0)} store hits, "
        f"{summary.get('memory_hits', 0)} memory hits.",
        "",
        f"- window: cycles={runner.cycles} warmup={runner.warmup} "
        f"seed={runner.seed}",
        f"- scale: workloads_per_category={scale.workloads_per_category} "
        f"sensitivity_workloads={scale.sensitivity_workloads} "
        f"densities={list(scale.densities)}",
        "",
        "| artifact | files |",
        "|---|---|",
    ]
    for name, paths in report.artifacts:
        files = ", ".join(f"[{p.name}]({p.name})" for p in paths)
        lines.append(f"| {name} | {files} |")
    lines.append("")
    lines.append("## Golden crosscheck")
    lines.append("")
    if not report.crosschecks:
        lines.append("- not applicable (no golden-pinned artifact requested)")
    for check in report.crosschecks:
        status = "OK" if check.status == "ok" else check.status.upper()
        detail = f" — {check.detail}" if check.detail else ""
        lines.append(f"- {check.fixture}: **{status}**{detail}")
    lines.append("")
    return "\n".join(lines)


def generate_paper_report(
    out_dir: str | Path,
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    names: Optional[Sequence[str]] = None,
    crosscheck: bool = True,
) -> PaperReport:
    """Regenerate paper artifacts into ``out_dir``; returns the report.

    ``names`` selects a subset of :data:`ARTIFACTS` (default: all).
    Simulations run only for result-store misses; a warm store (or a
    memoized runner) regenerates everything without simulating.
    """
    runner = runner if runner is not None else ExperimentRunner()
    scale = scale if scale is not None else default_scale()
    selected = list(names) if names else sorted(ARTIFACTS)
    unknown = [name for name in selected if name not in ARTIFACTS]
    if unknown:
        raise ReportError(
            f"unknown artifact(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(ARTIFACTS))}"
        )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    report = PaperReport(out_dir=out)
    payloads: dict[str, object] = {}
    for name in selected:
        artifact = ARTIFACTS[name]
        payload = artifact.payload(runner, scale)
        payloads[name] = payload
        blocks = artifact.tabulate(payload)
        paths = []
        json_path = out / f"{name}.json"
        json_path.write_text(
            json.dumps(canonical(payload), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        paths.append(json_path)
        md_path = out / f"{name}.md"
        md_path.write_text(_artifact_markdown(artifact, blocks), encoding="utf-8")
        paths.append(md_path)
        tex_path = out / f"{name}.tex"
        tex_path.write_text(
            "\n\n".join(block.to_latex() for block in blocks) + "\n",
            encoding="utf-8",
        )
        paths.append(tex_path)
        svg_path = out / f"{name}.svg"
        svg_path.write_text(render_chart(artifact.chart(payload)), encoding="utf-8")
        paths.append(svg_path)
        report.artifacts.append((name, paths))
    if crosscheck:
        report.crosschecks = crosscheck_goldens(payloads, runner, scale)
    report.engine_summary = runner.summary()
    (out / "index.md").write_text(
        _index_markdown(report, runner, scale), encoding="utf-8"
    )
    return report
