"""Report generation: paper artifacts, benchmark trends and run reports.

Three generators, all wired through ``repro report``:

* :mod:`repro.report.paper` — regenerate every Table 2-6 / Figure 5-16
  artifact (markdown, LaTeX, SVG, canonical JSON) from the
  fingerprint-keyed result store, crosschecked against the pinned golden
  fixtures;
* :mod:`repro.report.trend` — per-benchmark wall-clock and fidelity
  trajectories over the committed ``benchmarks/history/`` snapshots,
  drift-flagged by the compare gate;
* :mod:`repro.report.run` — one document stitching trace summaries,
  epoch IPC trajectories and profiler hot spots.

:mod:`repro.report.plot` renders all charts as dependency-free,
deterministic SVG (the target container has no plotting stack).
"""

from repro.report.paper import (
    ARTIFACTS,
    PaperArtifact,
    PaperReport,
    generate_paper_report,
)
from repro.report.plot import render_chart, render_sparkline, unicode_sparkline
from repro.report.run import RunReport, build_run_report, write_run_report
from repro.report.trend import (
    DRIFT_MARKER,
    TrendReport,
    build_trend_report,
    write_trend_report,
)

__all__ = [
    "ARTIFACTS",
    "DRIFT_MARKER",
    "PaperArtifact",
    "PaperReport",
    "RunReport",
    "TrendReport",
    "build_run_report",
    "build_trend_report",
    "generate_paper_report",
    "render_chart",
    "render_sparkline",
    "unicode_sparkline",
    "write_run_report",
    "write_trend_report",
]
