"""Processor front end: an out-of-order-lite core model driven by traces.

Each core retires up to ``issue_width`` instructions per CPU cycle, can run
ahead of an outstanding load by at most the instruction-window size
(128 entries), and can have at most ``mshrs_per_core`` (8) cache misses in
flight — the three parameters of Table 1 that shape memory-level
parallelism and therefore how much refresh latency can be hidden.
"""

from repro.cpu.core_model import Core, CoreStats

__all__ = ["Core", "CoreStats"]
