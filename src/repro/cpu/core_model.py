"""Trace-driven core model.

The model is a deliberately simple but faithful abstraction of the paper's
3-wide, 128-entry-window, 8-MSHR cores:

* instructions retire at up to ``issue_width`` per CPU cycle;
* a load that misses the LLC allocates an MSHR and issues a DRAM read; the
  core keeps executing younger instructions until it is
  ``instruction_window`` instructions ahead of the oldest outstanding load
  (stall-on-full-window), or until it runs out of MSHRs;
* stores never stall retirement (writes are not latency critical,
  Section 4.2.2); dirty LLC evictions become DRAM writes, with back
  pressure from a full write queue stalling the core until it drains.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cache.llc import LastLevelCache
from repro.config.cpu_config import CPUConfig
from repro.controller.request import MemRequest
from repro.stats import StatsSchema, StatsStruct, WeightedAverage, register_schema
from repro.workloads.trace import TraceEntry

#: :meth:`Core.tick` outcome: the core changed no state at all — it is
#: blocked on a memory-side event and will repeat the identical non-cycle
#: until one occurs.  (Falsy, so the return still reads as "did anything
#: change" in boolean context.)
CORE_BLOCKED = 0
#: The tick consisted purely of a full budget of non-memory (gap)
#: instructions: no fetch, no cache access, no writeback.  Such ticks can
#: be replayed in closed form by :meth:`Core.skip_gap_cycles`.
CORE_GAP = 1
#: Anything else: the core touched the memory system, its trace, or its
#: cache, so the next cycle cannot be predicted without executing it.
CORE_ACTIVE = 2


@dataclass
class CoreStats(StatsStruct):
    """Retirement and memory statistics for one core."""

    SCHEMA = register_schema(
        StatsSchema(
            "core",
            fields=(
                "instructions",
                "loads",
                "stores",
                "llc_load_misses",
                "dram_reads_issued",
                "dram_writes_issued",
                "stall_cycles",
            ),
            derived=(
                WeightedAverage(
                    "mpki", "dram_reads_issued", "instructions", scale=1000.0
                ),
            ),
        )
    )

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    llc_load_misses: int = 0
    dram_reads_issued: int = 0
    dram_writes_issued: int = 0
    stall_cycles: int = 0

    def mpki(self) -> float:
        """DRAM read requests (LLC misses) per thousand instructions."""
        if self.instructions <= 0:
            return 0.0
        return self.dram_reads_issued * 1000.0 / self.instructions


class Core:
    """One trace-driven core with its private LLC slice."""

    def __init__(
        self,
        core_id: int,
        config: CPUConfig,
        trace: Iterator[TraceEntry],
        llc: LastLevelCache,
        memory,
        address_offset: int = 0,
    ):
        self.core_id = core_id
        self.config = config
        self.trace = trace
        self.llc = llc
        self.memory = memory
        self.address_offset = address_offset
        self.stats = CoreStats()

        #: Outstanding DRAM loads: (instruction sequence number, request).
        self._pending_loads: deque[tuple[int, MemRequest]] = deque()
        self._pending_requests: dict[int, int] = {}
        #: Dirty eviction waiting for write-queue space.
        self._pending_writeback: Optional[int] = None
        #: Remaining non-memory instructions before the current trace entry.
        self._gap_remaining = 0
        self._current_entry: Optional[TraceEntry] = None
        self._executed_seq = 0
        #: Why the most recent :data:`CORE_BLOCKED` tick stalled:
        #: ``("completion",)`` — waiting for one of this core's own DRAM
        #: reads (window full, MSHRs exhausted, or a dependent load);
        #: ``("read_queue", ch)`` / ``("write_queue", ch)`` — waiting for
        #: space in channel ``ch``'s queue.  The event kernel sleeps the
        #: core until exactly that wake-up.
        self.block_reason: Optional[tuple] = None

    # -- memory completion ------------------------------------------------
    def complete_load(self, request: MemRequest) -> None:
        """Wake up the pending load served by ``request``."""
        if request.request_id not in self._pending_requests:
            return
        del self._pending_requests[request.request_id]
        self._pending_loads = deque(
            (seq, req)
            for seq, req in self._pending_loads
            if req.request_id != request.request_id
        )

    def outstanding_loads(self) -> int:
        return len(self._pending_loads)

    # -- execution ----------------------------------------------------------
    def tick(self, cycle: int) -> int:
        """Execute up to one DRAM cycle's worth of instructions.

        Returns one of :data:`CORE_BLOCKED` (no state changed at all — the
        core is waiting on a memory-side event and will repeat the
        identical non-cycle until one occurs), :data:`CORE_GAP` (the tick
        was exactly one full budget of non-memory instructions, which the
        event kernel may batch-replay), or :data:`CORE_ACTIVE` (anything
        else).  The value is truthy exactly when the core changed state,
        so boolean callers still read it as "did anything happen".
        """
        budget = self.config.insts_per_dram_cycle
        full_budget = budget
        progressed = False
        changed = False
        other_than_gap = False
        gap_retired = 0
        while budget > 0:
            writeback_was_pending = self._pending_writeback is not None
            if not self._drain_writeback(cycle):
                self.block_reason = (
                    "write_queue",
                    self.memory.controller_for(self._pending_writeback).channel_id,
                )
                break
            if writeback_was_pending:
                changed = True
                other_than_gap = True
            if self._window_full():
                self.block_reason = ("completion",)
                break
            if self._gap_remaining > 0:
                step = min(budget, self._gap_remaining, self._window_headroom())
                self._gap_remaining -= step
                self._retire(step)
                budget -= step
                gap_retired += step
                progressed = True
                continue
            if self._current_entry is None:
                self._fetch_next_entry()
                changed = True
                other_than_gap = True
                continue
            if not self._execute_memory_access(cycle):
                break
            budget -= 1
            progressed = True
            other_than_gap = True
        if not progressed:
            self.stats.stall_cycles += 1
            return CORE_ACTIVE if changed else CORE_BLOCKED
        if not other_than_gap and gap_retired == full_budget:
            return CORE_GAP
        return CORE_ACTIVE

    # -- internals ---------------------------------------------------------------
    def _retire(self, count: int) -> None:
        self.stats.instructions += count
        self._executed_seq += count

    def _window_full(self) -> bool:
        return self._window_headroom() <= 0

    def _window_headroom(self) -> int:
        """Instructions the core may still run ahead of its oldest pending load."""
        if not self._pending_loads:
            return self.config.instruction_window
        oldest_seq = self._pending_loads[0][0]
        return self.config.instruction_window - (self._executed_seq - oldest_seq)

    def _fetch_next_entry(self) -> None:
        entry = next(self.trace)
        self._current_entry = entry
        self._gap_remaining = entry.gap

    def _drain_writeback(self, cycle: int) -> bool:
        """Issue a buffered dirty eviction; False if still blocked."""
        if self._pending_writeback is None:
            return True
        address = self._pending_writeback
        if not self.memory.can_accept(address, True):
            return False
        self.memory.access(address, True, self.core_id, cycle)
        self.stats.dram_writes_issued += 1
        self._pending_writeback = None
        return True

    def _execute_memory_access(self, cycle: int) -> bool:
        """Execute the current memory instruction; False if stalled."""
        entry = self._current_entry
        address = self.address_offset + entry.address
        line_address = self.llc.line_address(address)

        if entry.is_write:
            result = self.llc.access(line_address, is_write=True)
            self._queue_writeback(result.writeback_address)
            self.stats.stores += 1
            self._retire(1)
            self._current_entry = None
            return True

        # Dependent loads (pointer chasing) cannot issue while earlier loads
        # are still outstanding; they are what makes a workload sensitive to
        # the latency a refresh adds to an individual request.
        if entry.depends and self._pending_loads:
            self.block_reason = ("completion",)
            return False

        # Loads: check MSHR and read-queue capacity before touching the
        # cache so a stalled access can be retried without side effects.
        if not self.llc.contains(line_address):
            if len(self._pending_loads) >= self.config.mshrs_per_core:
                self.block_reason = ("completion",)
                return False
            if not self.memory.can_accept(line_address, False):
                self.block_reason = (
                    "read_queue",
                    self.memory.controller_for(line_address).channel_id,
                )
                return False
        result = self.llc.access(line_address, is_write=False)
        self.stats.loads += 1
        if not result.hit:
            self.stats.llc_load_misses += 1
            request = self.memory.access(line_address, False, self.core_id, cycle)
            if request is not None:
                self.stats.dram_reads_issued += 1
                self._pending_loads.append((self._executed_seq, request))
                self._pending_requests[request.request_id] = self._executed_seq
        self._queue_writeback(result.writeback_address)
        self._retire(1)
        self._current_entry = None
        return True

    def _queue_writeback(self, writeback_address: Optional[int]) -> None:
        if writeback_address is None:
            return
        # The eviction is buffered and drained at the next opportunity;
        # execution stalls if a second eviction arrives before then.
        self._pending_writeback = writeback_address

    # -- cycle-skipping kernel support ---------------------------------------------
    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle at which this core can do something that is not a
        replayable continuation of the tick it just executed.

        After a :data:`CORE_BLOCKED` tick the core has no self-scheduled
        events (``None``): it is waiting on the memory system, whose
        wake-ups the controller horizons report.  After a
        :data:`CORE_GAP` tick the core keeps retiring full budgets of gap
        instructions for :meth:`pure_gap_ticks` more cycles; the first
        cycle beyond those may fetch, access memory, or stall.  The event
        kernel therefore combines this with the tick's status: after
        ``CORE_GAP`` it uses ``now + 1 + pure_gap_ticks()`` directly (even
        when zero ticks remain, which forbids skipping).
        """
        ticks = self.pure_gap_ticks()
        return now + 1 + ticks if ticks else None

    def pure_gap_ticks(self) -> int:
        """Upcoming ticks that are provably a full gap-instruction budget.

        Mirrors the conditions of one tick's gap branch: no buffered
        writeback, and both the remaining gap and (with outstanding loads)
        the shrinking instruction-window headroom cover a whole budget.
        Without outstanding loads the headroom does not shrink as the core
        runs ahead, so only the gap bounds the run.
        """
        if self._pending_writeback is not None:
            return 0
        budget = self.config.insts_per_dram_cycle
        bound = self._gap_remaining
        if self._pending_loads:
            bound = min(bound, self._window_headroom())
        return bound // budget

    def skip_gap_cycles(self, count: int) -> None:
        """Batch-replay ``count`` pure-gap ticks in closed form.

        Each replayed tick retires exactly one instruction budget out of
        the current gap — the same arithmetic the per-cycle loop performs,
        just without the loop.
        """
        instructions = count * self.config.insts_per_dram_cycle
        self._gap_remaining -= instructions
        self._retire(instructions)

    def skip_stalled_cycles(self, count: int) -> None:
        """Account ``count`` skipped cycles during which this core stalled.

        The event kernel only skips spans in which every core's tick is a
        provable no-op; the legacy kernel would have charged one stall
        cycle per tick, so the batched accounting is exactly that.
        """
        self.stats.stall_cycles += count

    # -- reporting ----------------------------------------------------------------
    def ipc(self, elapsed_dram_cycles: int) -> float:
        """Instructions per CPU cycle over the elapsed simulation window."""
        cpu_cycles = elapsed_dram_cycles * self.config.cpu_cycles_per_dram_cycle
        if cpu_cycles <= 0:
            return 0.0
        return self.stats.instructions / cpu_cycles

    def reset_stats(self) -> None:
        self.stats = CoreStats()
        self.llc.reset_stats()
