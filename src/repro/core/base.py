"""Base class and shared bookkeeping for refresh policies.

A refresh policy is bound to one channel controller and is consulted every
DRAM cycle at two points (see :mod:`repro.controller`):

* :meth:`RefreshPolicy.pre_demand` — before demand scheduling, for refreshes
  that must (or should) take priority over demand requests;
* :meth:`RefreshPolicy.post_demand` — after demand scheduling failed to
  issue anything, for opportunistic refreshes to idle banks.

Policies additionally expose :meth:`RefreshPolicy.blocks_demand`, which the
FR-FCFS scheduler uses to quiesce a rank or bank that a mandatory refresh is
waiting on; this is how refresh interference with demand requests arises in
the baselines and is precisely what DARP/SARP reduce.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.config.system import SystemConfig
from repro.dram.commands import Command, CommandType
from repro.stats import StatsSchema, StatsStruct, register_schema


@dataclass
class RefreshStats(StatsStruct):
    """Counters shared by every refresh policy."""

    SCHEMA = register_schema(
        StatsSchema(
            "refresh",
            fields=(
                "all_bank_issued",
                "per_bank_issued",
                "postponed",
                "pulled_in",
                "forced",
                "write_mode_refreshes",
            ),
        )
    )

    all_bank_issued: int = 0
    per_bank_issued: int = 0
    postponed: int = 0
    pulled_in: int = 0
    forced: int = 0
    write_mode_refreshes: int = 0


class RefreshPolicy(abc.ABC):
    """Interface every refresh mechanism implements."""

    #: Whether the event kernel may install a frozen sleep window starting
    #: at a tick that *issued* a command.  Safe for policies whose
    #: per-cycle hooks are pure functions of (cycle, queues, refresh debt,
    #: device deadlines): once ``pre_demand`` returned None at the issuing
    #: tick, every action it could take stays illegal until a watched
    #: deadline passes.  Policies with per-cycle internal side effects
    #: (elastic refresh tracks busy-to-idle edges) must leave this False
    #: so issuing ticks are always followed by a full reference tick.
    supports_post_issue_freeze = False

    #: Whether this policy consumes randomness on cycles where demand
    #: scheduling idles (DARP's randomized idle-bank draw).  While true at
    #: window install, the event kernel runs cheap *draw ticks* that call
    #: the real :meth:`post_demand` every cycle, keeping the RNG stream
    #: bit-identical to the reference kernel.
    uses_draw_ticks = False

    def __init__(self, config: SystemConfig, channel_id: int):
        self.config = config
        self.channel_id = channel_id
        self.timings = config.dram.timings
        self.refresh_config = config.refresh
        self.organization = config.dram.organization
        self.num_ranks = self.organization.ranks_per_channel
        self.num_banks = self.organization.banks_per_rank
        self.stats = RefreshStats()
        self.controller = None
        self._refpb_commands: dict[tuple[int, int], Command] = {}

    # -- wiring -------------------------------------------------------------
    def bind(self, controller) -> None:
        """Attach the policy to its channel controller."""
        self.controller = controller

    def enqueue_preserves_window(self) -> bool:
        """Whether a demand enqueue can be folded into a live frozen window.

        True when new demand cannot *add* a pre-demand action for this
        policy: arriving requests only make banks (and ranks) non-idle,
        which removes refresh opportunities, so a ``pre_demand`` that was
        provably idle through the window stays idle.  The default ties
        this to :attr:`supports_post_issue_freeze` — per-cycle-stateful
        policies (elastic refresh reacts to idle-counter edges an enqueue
        resets) need the full reference tick a queue-version mismatch
        forces.  DARP overrides this: in writeback mode its refresh
        candidate is the bank with the *fewest* queued demands, which an
        enqueue can move to an issuable bank.
        """
        return self.supports_post_issue_freeze

    @property
    def device(self):
        return self.controller.device

    # -- per-cycle hooks ------------------------------------------------------
    def pre_demand(self, cycle: int) -> Optional[Command]:
        """Refresh-related command to issue *before* demand scheduling."""
        return None

    def post_demand(self, cycle: int) -> Optional[Command]:
        """Refresh command to issue when no demand command was issuable."""
        return None

    def blocks_demand(self, cycle: int, rank: int, bank: int) -> bool:
        """True when demand to (rank, bank) must wait for a pending refresh."""
        return False

    # -- cycle-skipping kernel hooks ----------------------------------------------
    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` at which this policy's behaviour can
        change *on its own* (without any demand-side or device event).

        The base implementation reports the next scheduled refresh
        becoming due.  Policies with additional time-driven triggers
        (elastic refresh's idle threshold, DARP's randomized idle-bank
        scan) override this; device timing-window expiries are covered by
        :meth:`repro.dram.device.DRAMDevice.next_event_cycle` and need not
        be repeated here.  ``None`` means "no self-scheduled event".
        """
        due = getattr(self, "_next_due", None)
        if not due:
            return None
        earliest = min(due)
        return earliest if earliest > now else None

    def next_scheduled_event(self, now: int) -> Optional[int]:
        """The purely time-driven part of :meth:`next_event_cycle`.

        The sleep-window install uses this instead of
        :meth:`next_event_cycle` so a policy whose horizon also reports
        "I could act *right now*" triggers (DARP's idle-bank draw) does
        not force one-cycle windows — those per-cycle draws run as draw
        ticks inside the window instead (see :attr:`uses_draw_ticks`).
        """
        return self.next_event_cycle(now)

    def wants_draw_ticks(self) -> bool:
        """True when every window cycle must run :meth:`post_demand` to
        keep the policy's RNG stream identical (see :attr:`uses_draw_ticks`)."""
        return False

    def skip_cycles(self, count: int) -> None:
        """Replay the per-cycle side effects of ``count`` skipped no-op cycles.

        Called by the event kernel after a cycle in which this policy was
        consulted and did nothing, for a span over which its inputs are
        provably frozen.  The deterministic policies accumulate due
        refreshes lazily from the cycle number, so they have nothing to
        replay; DARP overrides this to keep its RNG stream bit-identical.
        """

    def refresh_candidate_banks(self, rank: int) -> tuple[int, ...]:
        """Banks of ``rank`` this policy may try to act on *right now*.

        The event kernel watches the timing deadlines of exactly these
        banks (plus every bank with queued demand) while a controller
        sleeps: a pending refresh that is currently illegal can only
        become issuable when one of its target banks' windows expires.
        Policies with no owed refresh work return an empty tuple, letting
        the controller ignore stale scoreboard deadlines entirely.  The
        base implementation is maximally conservative.
        """
        return tuple(range(self.num_banks))

    # -- reporting ---------------------------------------------------------------
    def stats_dict(self) -> dict:
        return self.stats.as_dict()

    # -- command construction helpers ----------------------------------------------
    def _all_bank_command(self, rank: int) -> Command:
        return Command(kind=CommandType.REFAB, channel=self.channel_id, rank=rank)

    def _per_bank_command(self, rank: int, bank: int) -> Command:
        # Per-bank refresh commands are immutable once built (nothing sets
        # issue-time fields on REFPB, and the tracer copies fields out), so
        # one command per (rank, bank) is built lazily and reused across
        # every probe and issue.  All-bank commands are NOT cached: the
        # adaptive policy sets a per-issue ``duration`` on them.
        key = (rank, bank)
        command = self._refpb_commands.get(key)
        if command is None:
            command = Command(
                kind=CommandType.REFPB, channel=self.channel_id, rank=rank, bank=bank
            )
            self._refpb_commands[key] = command
        return command

    def _precharge_for_refresh(
        self, cycle: int, rank: int, bank: Optional[int] = None
    ) -> Optional[Command]:
        """Return a legal precharge that clears the way for a pending refresh.

        All-bank refresh requires every bank of the rank to be precharged;
        per-bank refresh only requires its target bank to be precharged.
        Returns None when nothing can (or needs to) be precharged yet.
        """
        device = self.device
        rank_obj = device.rank(self.channel_id, rank)
        banks = rank_obj.banks if bank is None else [rank_obj.banks[bank]]
        for bank_obj in banks:
            if bank_obj.open_row is None:
                continue
            command = Command(
                kind=CommandType.PRE,
                channel=self.channel_id,
                rank=rank,
                bank=bank_obj.index,
            )
            if device.can_issue(command, cycle):
                return command
        return None

    # -- schedule staggering ------------------------------------------------------
    def _initial_due(self, interval: int, rank: int) -> int:
        """Stagger the first refresh of each rank across the interval.

        Refreshing both ranks of a channel at the same instant would
        needlessly serialize their unavailability windows; real controllers
        stagger refreshes across ranks, and so do we.
        """
        if self.num_ranks <= 1:
            return interval
        return interval * (rank + 1) // self.num_ranks
