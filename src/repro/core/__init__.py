"""The paper's contribution: refresh scheduling and parallelization policies.

This package contains every refresh mechanism evaluated in Section 6 of
Chang et al. (HPCA 2014):

* :class:`~repro.core.no_refresh.NoRefreshPolicy` — the ideal "No REF" baseline,
* :class:`~repro.core.all_bank.AllBankRefreshPolicy` — DDR3 all-bank refresh
  (REFab); also used by SARPab and the DDR4 fine-granularity-refresh modes,
* :class:`~repro.core.per_bank.PerBankRefreshPolicy` — LPDDR per-bank refresh
  (REFpb) with the standard strict round-robin order; also used by SARPpb,
* :class:`~repro.core.elastic.ElasticRefreshPolicy` — elastic refresh
  (Stuecheli et al.),
* :class:`~repro.core.darp.DARPPolicy` — Dynamic Access Refresh
  Parallelization (out-of-order per-bank refresh plus write-refresh
  parallelization); also used by DSARP,
* :class:`~repro.core.adaptive.AdaptiveRefreshPolicy` — adaptive refresh
  (Mukundan et al.).

SARP itself (Subarray Access Refresh Parallelization) is not a scheduling
policy: it is a DRAM modification implemented in :mod:`repro.dram` and
enabled through ``RefreshMechanism.uses_sarp``; the factory pairs it with
the appropriate scheduling policy.
"""

from repro.core.adaptive import AdaptiveRefreshPolicy
from repro.core.all_bank import AllBankRefreshPolicy
from repro.core.base import RefreshPolicy, RefreshStats
from repro.core.darp import DARPPolicy
from repro.core.elastic import ElasticRefreshPolicy
from repro.core.factory import create_refresh_policy
from repro.core.no_refresh import NoRefreshPolicy
from repro.core.per_bank import PerBankRefreshPolicy

__all__ = [
    "RefreshPolicy",
    "RefreshStats",
    "NoRefreshPolicy",
    "AllBankRefreshPolicy",
    "PerBankRefreshPolicy",
    "ElasticRefreshPolicy",
    "DARPPolicy",
    "AdaptiveRefreshPolicy",
    "create_refresh_policy",
]
