"""The ideal baseline: refresh eliminated entirely ("No REF" in Figure 13).

This policy never issues a refresh command.  It is physically unrealizable
(cells would lose their charge) but bounds the performance any refresh
mechanism can achieve; the paper reports DSARP comes within 0.9 % / 1.2 % /
3.7 % of it for 8 / 16 / 32 Gb chips.
"""

from __future__ import annotations

from repro.core.base import RefreshPolicy


class NoRefreshPolicy(RefreshPolicy):
    """Never refreshes; the upper bound on performance."""

    supports_post_issue_freeze = True

    def pre_demand(self, cycle: int):
        return None

    def post_demand(self, cycle: int):
        return None

    def blocks_demand(self, cycle: int, rank: int, bank: int) -> bool:
        return False

    def refresh_candidate_banks(self, rank: int) -> tuple[int, ...]:
        return ()
