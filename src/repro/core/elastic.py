"""Elastic refresh (Stuecheli et al., MICRO 2010), as evaluated in Section 6.

Elastic refresh exploits the DDR standard's allowance of up to eight
postponed refresh commands: it delays a due refresh while the rank is busy
and issues postponed refreshes only after the rank has been idle for a
delay derived from the observed average idle-period length; the delay
shrinks as more refreshes pile up, and once the postpone budget is
exhausted refreshes are forced with priority over demand.

The paper finds elastic refresh barely helps (≈1.8 % over REFab) because it
neither pulls refreshes in proactively nor overlaps them with accesses —
our implementation reproduces that behaviour.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.base import RefreshPolicy
from repro.dram.commands import Command


class ElasticRefreshPolicy(RefreshPolicy):
    """All-bank refresh postponed into predicted rank-idle periods."""

    def __init__(self, config, channel_id: int):
        super().__init__(config, channel_id)
        interval = self.timings.tREFIab
        self._next_due = [
            self._initial_due(interval, rank) for rank in range(self.num_ranks)
        ]
        self._pending = [0] * self.num_ranks
        # Under sustained load, elastic refresh rides its postpone budget:
        # most of the eight-command credit is already spent in steady state.
        # A short simulation window that started with the full credit would
        # let the policy push nearly all of its refresh work past the end of
        # the window, so the effective in-window credit is reduced by the
        # configured steady-state backlog.
        backlog = min(
            config.refresh.steady_state_backlog,
            config.refresh.max_postpone - 1,
        )
        self._effective_postpone = config.refresh.max_postpone - backlog
        #: Cycle at which each rank last had pending demand requests.
        self._last_busy = [0] * self.num_ranks
        #: Exponentially weighted moving average of rank idle-period lengths.
        self._avg_idle = [float(self.timings.tRFCab)] * self.num_ranks
        self._idle_since = [0] * self.num_ranks
        self._was_idle = [False] * self.num_ranks

    # -- idle-period tracking -----------------------------------------------------
    def _update_idle_tracking(self, cycle: int) -> None:
        history = max(1, self.refresh_config.elastic_history)
        for rank in range(self.num_ranks):
            busy = self.controller.rank_demand_count(rank) > 0
            if busy:
                if self._was_idle[rank]:
                    idle_length = cycle - self._idle_since[rank]
                    self._avg_idle[rank] += (
                        idle_length - self._avg_idle[rank]
                    ) / history
                self._was_idle[rank] = False
                self._last_busy[rank] = cycle
            elif not self._was_idle[rank]:
                self._was_idle[rank] = True
                self._idle_since[rank] = cycle

    def _idle_threshold(self, rank: int) -> float:
        """Idle time to wait before spending a postponed refresh.

        With few postponed refreshes the policy is patient (waits for an
        idle period longer than the average); as the backlog grows the
        threshold shrinks toward zero, and at the postpone limit refreshes
        are forced regardless.
        """
        limit = self._effective_postpone
        backlog = min(self._pending[rank], limit)
        patience = (limit - backlog) / limit
        return self._avg_idle[rank] * patience

    # -- schedule bookkeeping --------------------------------------------------------
    def _accumulate_due(self, cycle: int) -> None:
        interval = self.timings.tREFIab
        for rank in range(self.num_ranks):
            while cycle >= self._next_due[rank]:
                self._pending[rank] += 1
                self._next_due[rank] += interval
                if self._pending[rank] > 1:
                    self.stats.postponed += 1

    def pending_refreshes(self, rank: int) -> int:
        return self._pending[rank]

    # -- policy hooks --------------------------------------------------------------------
    def pre_demand(self, cycle: int) -> Optional[Command]:
        self._accumulate_due(cycle)
        self._update_idle_tracking(cycle)
        device = self.device
        for rank in range(self.num_ranks):
            if self._pending[rank] < self._effective_postpone:
                continue
            # Postpone budget exhausted: force the refresh like REFab would.
            command = self._all_bank_command(rank)
            if device.can_issue(command, cycle):
                self._pending[rank] -= 1
                self.stats.all_bank_issued += 1
                self.stats.forced += 1
                return command
            precharge = self._precharge_for_refresh(cycle, rank)
            if precharge is not None:
                return precharge
        return None

    def post_demand(self, cycle: int) -> Optional[Command]:
        device = self.device
        for rank in range(self.num_ranks):
            if self._pending[rank] <= 0:
                continue
            if self.controller.rank_demand_count(rank) > 0:
                continue
            idle_time = cycle - self._idle_since[rank] if self._was_idle[rank] else 0
            if idle_time < self._idle_threshold(rank):
                continue
            command = self._all_bank_command(rank)
            if device.can_issue(command, cycle):
                self._pending[rank] -= 1
                self.stats.all_bank_issued += 1
                return command
        return None

    def blocks_demand(self, cycle: int, rank: int, bank: int) -> bool:
        return self._pending[rank] >= self._effective_postpone

    def refresh_candidate_banks(self, rank: int) -> tuple[int, ...]:
        # Elastic refresh issues (and prepares) rank-wide REFab commands
        # whenever any refresh is owed.
        if self._pending[rank] > 0:
            return tuple(range(self.num_banks))
        return ()

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Next due refresh, or the idle threshold of an idle rank expiring.

        With the demand queues frozen, an idle rank's accumulated idle
        time keeps growing by one per cycle; the first cycle satisfying
        ``idle_time >= threshold`` is an event the kernel must not skip
        past, because :meth:`post_demand` would start issuing then.
        """
        candidates = []
        base = super().next_event_cycle(now)
        if base is not None:
            candidates.append(base)
        for rank in range(self.num_ranks):
            if self._pending[rank] <= 0 or not self._was_idle[rank]:
                continue
            if self.controller.rank_demand_count(rank) > 0:
                continue
            trigger = self._idle_since[rank] + math.ceil(self._idle_threshold(rank))
            if trigger > now:
                candidates.append(trigger)
        return min(candidates) if candidates else None
