"""Factory mapping a refresh mechanism name to its policy implementation.

SARP is orthogonal to the scheduling policy: the factory only selects the
*scheduling* policy, while the SARP device modifications are enabled by the
memory system through ``RefreshMechanism.uses_sarp`` (see
:class:`repro.controller.memory_controller.MemorySystem`).
"""

from __future__ import annotations

from repro.config.refresh_config import RefreshMechanism
from repro.config.system import SystemConfig
from repro.core.adaptive import AdaptiveRefreshPolicy
from repro.core.all_bank import AllBankRefreshPolicy
from repro.core.base import RefreshPolicy
from repro.core.darp import DARPPolicy
from repro.core.elastic import ElasticRefreshPolicy
from repro.core.no_refresh import NoRefreshPolicy
from repro.core.per_bank import PerBankRefreshPolicy


def create_refresh_policy(config: SystemConfig, channel_id: int) -> RefreshPolicy:
    """Instantiate the refresh policy for one channel of ``config``."""
    mechanism = config.refresh.mechanism
    if mechanism is RefreshMechanism.NONE:
        return NoRefreshPolicy(config, channel_id)
    if mechanism in (
        RefreshMechanism.REFAB,
        RefreshMechanism.SARPAB,
        RefreshMechanism.FGR2X,
        RefreshMechanism.FGR4X,
    ):
        return AllBankRefreshPolicy(config, channel_id)
    if mechanism in (RefreshMechanism.REFPB, RefreshMechanism.SARPPB):
        return PerBankRefreshPolicy(config, channel_id)
    if mechanism is RefreshMechanism.ELASTIC:
        return ElasticRefreshPolicy(config, channel_id)
    if mechanism in (RefreshMechanism.DARP, RefreshMechanism.DSARP):
        return DARPPolicy(config, channel_id)
    if mechanism is RefreshMechanism.AR:
        return AdaptiveRefreshPolicy(config, channel_id)
    raise ValueError(f"no policy registered for mechanism {mechanism!r}")
