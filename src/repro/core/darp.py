"""DARP: Dynamic Access Refresh Parallelization (Section 4.2).

DARP is a per-bank refresh *scheduling* policy with two components:

1. **Out-of-order per-bank refresh** (Figure 8).  The controller — not the
   DRAM's internal round-robin counter — decides which bank to refresh.  It
   avoids refreshing banks with pending demand requests, refreshes idle
   banks instead, and exploits the JEDEC allowance of up to eight postponed
   or pulled-in refresh commands per bank.  Following the paper's erratum,
   the per-bank bookkeeping guarantees no bank ever accumulates more than
   eight outstanding (postponed) refreshes and no bank is ever refreshed
   more than eight commands ahead of its schedule.

2. **Write-refresh parallelization** (Algorithm 1).  While the channel is
   draining a write batch (writeback mode) reads cannot be served anyway, so
   the policy proactively refreshes the bank with the fewest pending demand
   requests, hiding the refresh latency behind the writes of other banks.

The per-bank bookkeeping uses a single signed *refresh debt* counter per
bank: the nominal schedule (one refresh per rank every ``tREFIpb``,
rotating round-robin) increments the debt of its nominal bank; issuing a
REFpb to a bank decrements its debt.  Positive debt therefore counts
postponed refreshes, negative debt counts pulled-in refreshes, and the
JEDEC limits become ``-max_pullin <= debt <= max_postpone``.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.base import RefreshPolicy
from repro.dram.commands import Command


class DARPPolicy(RefreshPolicy):
    """Out-of-order per-bank refresh plus write-refresh parallelization."""

    # Every per-cycle decision is a pure function of the demand queues,
    # the debt table and device deadlines — no busy/idle edge tracking —
    # so frozen windows may start right after an issuing tick.  The
    # randomized idle-bank draw is handled by draw ticks, not freezing.
    supports_post_issue_freeze = True
    uses_draw_ticks = True

    def __init__(self, config, channel_id: int):
        super().__init__(config, channel_id)
        interval = self.timings.tREFIpb
        self._next_due = [
            self._initial_due(interval, rank) for rank in range(self.num_ranks)
        ]
        self._round_robin = [0] * self.num_ranks
        #: Signed refresh debt per (rank, bank); see the module docstring.
        #: DARP pays its debt proactively (idle-bank and writeback-mode
        #: refreshes), so its steady-state debt is low and a zero start is
        #: representative — unlike elastic refresh, which rides its postpone
        #: budget under load and is therefore initialized with a backlog.
        self._debt = [[0] * self.num_banks for _ in range(self.num_ranks)]
        self._rng = random.Random(config.refresh.scheduler_seed + channel_id)
        #: Bumped whenever any debt changes; keys the replay-pool cache.
        self._debt_version = 0
        #: Cached post-demand pools: (queue version, debt version, pools).
        self._pool_cache: "tuple[int, int, list[tuple[int, list[int]]]] | None" = None

    # -- bookkeeping ---------------------------------------------------------------
    def refresh_debt(self, rank: int, bank: int) -> int:
        """Outstanding refresh debt of a bank (positive = postponed)."""
        return self._debt[rank][bank]

    def _accumulate_due(self, cycle: int) -> None:
        interval = self.timings.tREFIpb
        out_of_order = self.refresh_config.enable_out_of_order
        for rank in range(self.num_ranks):
            while cycle >= self._next_due[rank]:
                nominal = self._round_robin[rank]
                self._debt[rank][nominal] += 1
                self._debt_version += 1
                if (
                    out_of_order
                    and self._debt[rank][nominal] < self.refresh_config.max_postpone
                    and self.controller.demand_count(rank, nominal) > 0
                ):
                    self.stats.postponed += 1
                    tracer = self.controller.tracer
                    if tracer is not None:
                        tracer.decision(
                            "DARP_POSTPONE", cycle, self.channel_id, rank, nominal
                        )
                self._round_robin[rank] = (nominal + 1) % self.num_banks
                self._next_due[rank] += interval

    def _issue_refresh(self, cycle: int, rank: int, bank: int) -> Optional[Command]:
        """Try to issue a REFpb to (rank, bank); returns the command or None.

        The legality test inlines ``DRAMDevice.can_issue``'s REFPB branch
        (bank precharged, bank not refreshing, no all-bank or overlapping
        per-bank refresh in the rank, activity window expired): this probe
        runs on every draw tick in both kernels and fails on most of them,
        so the inline form skips the command lookup and the dispatching
        ``can_issue`` call on the failure path.
        """
        rank_obj = self.device.rank(self.channel_id, rank)
        bank_obj = rank_obj.banks[bank]
        if (
            bank_obj.open_row is not None
            or cycle < bank_obj.t_act
            or cycle < bank_obj.refresh_until
            or cycle < rank_obj.refab_until
            or cycle < rank_obj.pb_refresh_until
        ):
            return None
        command = self._per_bank_command(rank, bank)
        self._debt[rank][bank] -= 1
        self._debt_version += 1
        self.stats.per_bank_issued += 1
        return command

    # -- policy hooks ----------------------------------------------------------------
    def pre_demand(self, cycle: int) -> Optional[Command]:
        self._accumulate_due(cycle)
        max_postpone = self.refresh_config.max_postpone
        out_of_order = self.refresh_config.enable_out_of_order

        for rank in range(self.num_ranks):
            debts = self._debt[rank]

            # 1. Forced refreshes: a bank whose postpone budget is exhausted
            #    must be refreshed now, with priority over demand (Figure 8,
            #    the "cannot postpone" branch).
            for bank in range(self.num_banks):
                if debts[bank] < max_postpone:
                    continue
                command = self._issue_refresh(cycle, rank, bank)
                if command is not None:
                    self.stats.forced += 1
                    tracer = self.controller.tracer
                    if tracer is not None:
                        tracer.decision(
                            "DARP_FORCED", cycle, self.channel_id, rank, bank
                        )
                    return command
                precharge = self._precharge_for_refresh(cycle, rank, bank)
                if precharge is not None:
                    return precharge

            # Without out-of-order scheduling the policy degenerates to the
            # strict round-robin baseline: every owed refresh is treated as
            # forced for its nominal bank (handled above since the nominal
            # bank is the only one accumulating debt); skip the flexible steps.
            if not out_of_order:
                # Behave like baseline REFpb: issue the oldest owed refresh
                # to its nominal bank with priority over demand.
                for bank in range(self.num_banks):
                    if debts[bank] <= 0:
                        continue
                    command = self._issue_refresh(cycle, rank, bank)
                    if command is not None:
                        return command
                    precharge = self._precharge_for_refresh(cycle, rank, bank)
                    if precharge is not None:
                        return precharge
                continue

            # 2. Scheduled refreshes to idle banks: serving an owed refresh
            #    to a bank with no pending demand costs demand nothing.
            owed_idle = [
                bank
                for bank in range(self.num_banks)
                if debts[bank] > 0 and self.controller.demand_count(rank, bank) == 0
            ]
            owed_idle.sort(key=lambda bank: -debts[bank])
            for bank in owed_idle:
                command = self._issue_refresh(cycle, rank, bank)
                if command is not None:
                    tracer = self.controller.tracer
                    if tracer is not None:
                        tracer.decision(
                            "DARP_IDLE", cycle, self.channel_id, rank, bank
                        )
                    return command

            # 3. Write-refresh parallelization (Algorithm 1): during
            #    writeback mode, refresh the bank with the fewest pending
            #    demand requests, provided its pull-in budget allows it.
            if (
                self.refresh_config.enable_write_refresh_parallelization
                and self.controller.in_writeback_mode
                and not self.device.rank(self.channel_id, rank).is_refreshing(cycle)
            ):
                candidate = self._write_mode_candidate(rank)
                if candidate is not None:
                    command = self._issue_refresh(cycle, rank, candidate)
                    if command is not None:
                        self.stats.write_mode_refreshes += 1
                        if self._debt[rank][candidate] < 0:
                            self.stats.pulled_in += 1
                        tracer = self.controller.tracer
                        if tracer is not None:
                            tracer.decision(
                                "DARP_WRITE_MODE",
                                cycle,
                                self.channel_id,
                                rank,
                                candidate,
                            )
                        return command
        return None

    def post_demand(self, cycle: int) -> Optional[Command]:
        """Figure 8, step 3: refresh a random idle bank when demand is stalled.

        Draws from the cached :meth:`_post_demand_pools` — the pools are a
        pure function of the demand queues and the debt table, so the
        (version-keyed) cache returns the exact lists this method used to
        rebuild per call, and RNG consumption is unchanged.
        """
        if not self.refresh_config.enable_out_of_order:
            return None
        for rank, pool in self._post_demand_pools():
            bank = self._rng.choice(pool)
            command = self._issue_refresh(cycle, rank, bank)
            if command is not None:
                if self._debt[rank][bank] < 0:
                    self.stats.pulled_in += 1
                tracer = self.controller.tracer
                if tracer is not None:
                    tracer.decision(
                        "DARP_POSTDEMAND", cycle, self.channel_id, rank, bank
                    )
                return command
        return None

    def blocks_demand(self, cycle: int, rank: int, bank: int) -> bool:
        """Quiesce only banks whose refresh can no longer be postponed."""
        return self._debt[rank][bank] >= self.refresh_config.max_postpone

    def enqueue_preserves_window(self) -> bool:
        """Enqueues only shrink DARP's idle pools — except in writeback
        mode, where the write-refresh candidate (the bank with the fewest
        queued demands, Algorithm 1) can *move* to an issuable bank when a
        request arrives; a reference tick is then required."""
        return not (
            self.refresh_config.enable_write_refresh_parallelization
            and self.controller.in_writeback_mode
        )

    # -- cycle-skipping kernel hooks --------------------------------------------
    def refresh_candidate_banks(self, rank: int) -> tuple[int, ...]:
        """Banks DARP may refresh this cycle: forced, owed-idle, write-mode
        or post-demand candidates.

        With a pull-in budget any bank can be refreshed ahead of schedule,
        so every bank is a candidate; without one, only banks with
        positive debt (owed refreshes) can be targeted by any of the four
        selection paths.
        """
        if self.refresh_config.max_pullin > 0:
            return tuple(range(self.num_banks))
        debts = self._debt[rank]
        return tuple(bank for bank in range(self.num_banks) if debts[bank] > 0)

    def _post_demand_pools(self) -> list[tuple[int, list[int]]]:
        """The per-rank candidate pools :meth:`post_demand` would draw from.

        Built with exactly the same selection code as :meth:`post_demand`
        so a replayed ``choice`` consumes the RNG stream identically
        (consumption depends on the pool length).  The pools are a pure
        function of per-bank *idleness* and the debt table, so they are
        cached under the queues' idle-transition version (which ignores
        mid-queue churn) and the debt version — the event kernel queries
        them every no-op tick and every replayed sleep cycle.
        """
        queues = self.controller.queues
        version = queues.idle_version
        cache = self._pool_cache
        if (
            cache is not None
            and cache[0] == version
            and cache[1] == self._debt_version
        ):
            return cache[2]
        max_pullin = self.refresh_config.max_pullin
        counts = queues.demand_counts
        pools = []
        for rank in range(self.num_ranks):
            debts = self._debt[rank]
            idle_banks = [
                bank
                for bank in range(self.num_banks)
                if counts[(rank, bank)] == 0 and debts[bank] > -max_pullin
            ]
            if not idle_banks:
                continue
            owed = [bank for bank in idle_banks if debts[bank] > 0]
            pools.append((rank, owed if owed else idle_banks))
        self._pool_cache = (version, self._debt_version, pools)
        return pools

    def next_scheduled_event(self, now: int) -> Optional[int]:
        """Only the next *due* refresh: the per-cycle randomized draw is
        handled by draw ticks inside the window, not by collapsing the
        window to one cycle (contrast :meth:`next_event_cycle`, the
        conservative reference horizon)."""
        return RefreshPolicy.next_event_cycle(self, now)

    def wants_draw_ticks(self) -> bool:
        """True while :meth:`post_demand` would draw every cycle (non-empty
        pools): window cycles must each consume the same randomness."""
        return self.refresh_config.enable_out_of_order and bool(
            self._post_demand_pools()
        )

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Next due refresh — or "right now" when a random draw could issue.

        :meth:`post_demand` draws a *random* pool bank each cycle, so a
        cycle in which the drawn bank happened to be blocked proves
        nothing about the other pool banks.  If any pool bank could accept
        a REFpb on the very next cycle, skipping is unsafe (a different
        draw might issue); the kernel is told the next event is ``now + 1``
        and simply keeps stepping.  Otherwise every pool bank stays
        blocked until a device timing deadline, which the device horizon
        already covers.
        """
        if self.refresh_config.enable_out_of_order:
            for rank, pool in self._post_demand_pools():
                for bank in pool:
                    command = self._per_bank_command(rank, bank)
                    if self.device.can_issue(command, now + 1):
                        return now + 1
        return super().next_event_cycle(now)

    def skip_cycles(self, count: int) -> None:
        """Advance the RNG exactly as ``count`` fruitless cycles would have.

        During a skipped span the pools are frozen and no draw can issue
        (guaranteed by :meth:`next_event_cycle`), but the legacy kernel
        would still have consumed one ``choice`` per non-empty pool per
        cycle.  Replaying those draws keeps the RNG stream — and therefore
        every future refresh decision — bit-identical across kernels.
        """
        if not self.refresh_config.enable_out_of_order:
            return
        pools = self._post_demand_pools()
        if not pools:
            return
        choice = self._rng.choice
        for _ in range(count):
            for _, pool in pools:
                choice(pool)

    def _write_mode_candidate(self, rank: int) -> Optional[int]:
        """Bank with the lowest demand count whose pull-in budget allows a refresh."""
        max_pullin = self.refresh_config.max_pullin
        candidates = [
            bank
            for bank in range(self.num_banks)
            if self._debt[rank][bank] > -max_pullin
        ]
        if not candidates:
            return None
        return min(
            candidates, key=lambda bank: self.controller.demand_count(rank, bank)
        )
