"""All-bank refresh (REFab): the commodity DDR baseline (Section 2.2.1).

Every ``tREFIab`` the controller owes one REFab command per rank.  While a
refresh is owed, demand requests to that rank are quiesced so the rank can
precharge and accept the refresh; during ``tRFCab`` the whole rank is
unavailable (unless SARP is enabled at the device level, in which case
accesses to non-refreshing subarrays proceed with inflated tFAW/tRRD).

The same policy serves the DDR4 fine-granularity-refresh modes (FGR 2x/4x):
those only change the configured ``tREFIab``/``tRFCab`` values.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import RefreshPolicy
from repro.dram.commands import Command


class AllBankRefreshPolicy(RefreshPolicy):
    """Rank-level refresh issued on schedule, with priority over demand."""

    #: Pure function of (cycle, pending refreshes, device deadlines): a
    #: frozen window may start right after an issuing tick.
    supports_post_issue_freeze = True

    def __init__(self, config, channel_id: int):
        super().__init__(config, channel_id)
        interval = self.timings.tREFIab
        self._next_due = [
            self._initial_due(interval, rank) for rank in range(self.num_ranks)
        ]
        self._pending = [0] * self.num_ranks

    # -- schedule bookkeeping -------------------------------------------------
    def _accumulate_due(self, cycle: int) -> None:
        interval = self.timings.tREFIab
        for rank in range(self.num_ranks):
            while cycle >= self._next_due[rank]:
                self._pending[rank] += 1
                self._next_due[rank] += interval

    def pending_refreshes(self, rank: int) -> int:
        """Refreshes owed (due but not yet issued) by ``rank``."""
        return self._pending[rank]

    # -- policy hooks ------------------------------------------------------------
    def pre_demand(self, cycle: int) -> Optional[Command]:
        self._accumulate_due(cycle)
        device = self.device
        for rank in range(self.num_ranks):
            if self._pending[rank] <= 0:
                continue
            command = self._all_bank_command(rank)
            if device.can_issue(command, cycle):
                self._pending[rank] -= 1
                self.stats.all_bank_issued += 1
                return command
            precharge = self._precharge_for_refresh(cycle, rank)
            if precharge is not None:
                return precharge
        return None

    def blocks_demand(self, cycle: int, rank: int, bank: int) -> bool:
        # A rank owing a refresh stops accepting new demand so it can drain
        # and start refreshing; this is the source of REFab's penalty.
        return self._pending[rank] > 0

    def refresh_candidate_banks(self, rank: int) -> tuple[int, ...]:
        # An owed REFab needs every bank precharged and past its t_act, and
        # may first require precharges to any open bank of the rank.
        if self._pending[rank] > 0:
            return tuple(range(self.num_banks))
        return ()
