"""Per-bank refresh (REFpb) with the standard round-robin order (Section 2.2.2).

Every ``tREFIpb = tREFIab / 8`` one bank of the rank owes a refresh, chosen
by a strict sequential round-robin pointer: the controller has no say in
which bank is refreshed (the DRAM's internal refresh unit decides).  Only
the owed bank is quiesced, so other banks keep serving requests — the
advantage of REFpb over REFab — but an access to the owed (or refreshing)
bank must wait, and consecutive REFpb operations may not overlap within a
rank, which serializes their latency (the pathological case discussed in
Section 6.1).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.base import RefreshPolicy
from repro.dram.commands import Command


class PerBankRefreshPolicy(RefreshPolicy):
    """LPDDR-style per-bank refresh in strict round-robin order."""

    #: Pure function of (cycle, owed refreshes, device deadlines): a
    #: frozen window may start right after an issuing tick.
    supports_post_issue_freeze = True

    def __init__(self, config, channel_id: int):
        super().__init__(config, channel_id)
        interval = self.timings.tREFIpb
        self._next_due = [
            self._initial_due(interval, rank) for rank in range(self.num_ranks)
        ]
        self._round_robin = [0] * self.num_ranks
        self._pending: list[deque[int]] = [deque() for _ in range(self.num_ranks)]

    # -- schedule bookkeeping ----------------------------------------------------
    def _accumulate_due(self, cycle: int) -> None:
        interval = self.timings.tREFIpb
        for rank in range(self.num_ranks):
            while cycle >= self._next_due[rank]:
                self._pending[rank].append(self._round_robin[rank])
                self._round_robin[rank] = (self._round_robin[rank] + 1) % self.num_banks
                self._next_due[rank] += interval

    def pending_bank(self, rank: int) -> Optional[int]:
        """The bank whose refresh is at the head of the rank's pending queue."""
        queue = self._pending[rank]
        return queue[0] if queue else None

    def pending_refreshes(self, rank: int) -> int:
        return len(self._pending[rank])

    # -- policy hooks ---------------------------------------------------------------
    def pre_demand(self, cycle: int) -> Optional[Command]:
        self._accumulate_due(cycle)
        device = self.device
        for rank in range(self.num_ranks):
            queue = self._pending[rank]
            if not queue:
                continue
            bank = queue[0]
            command = self._per_bank_command(rank, bank)
            if device.can_issue(command, cycle):
                queue.popleft()
                self.stats.per_bank_issued += 1
                return command
            precharge = self._precharge_for_refresh(cycle, rank, bank)
            if precharge is not None:
                return precharge
        return None

    def blocks_demand(self, cycle: int, rank: int, bank: int) -> bool:
        # Only the bank at the head of the round-robin schedule is quiesced.
        pending = self.pending_bank(rank)
        return pending is not None and pending == bank

    def refresh_candidate_banks(self, rank: int) -> tuple[int, ...]:
        # Strict round-robin: only the head of the queue can be refreshed
        # (or precharged in preparation) this cycle.
        pending = self.pending_bank(rank)
        return () if pending is None else (pending,)
