"""Adaptive refresh (AR) from Mukundan et al. (ISCA 2013), Section 6.5.

DDR4 fine-granularity refresh (FGR) trades a shorter per-command refresh
latency for a higher refresh rate, but the latency does not scale down
proportionally (tRFC shrinks by only 1.35x / 1.63x while the rate doubles /
quadruples), so FGR alone hurts performance.  Adaptive refresh dynamically
switches between the normal 1x mode and the 4x mode depending on memory
pressure: under high pressure the shorter (if more frequent) 4x refreshes
reduce the worst-case blocking a demand request can experience.

The paper observes AR performs within about 1 % of REFab because the 4x
mode's aggregate overhead outweighs its latency benefit; this
implementation reproduces that trade-off by conserving total refresh work
across modes.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import RefreshPolicy
from repro.dram.commands import Command

#: tRFC shrink factor when refreshing at 4x granularity (DDR4, Section 6.5).
FGR4X_TRFC_SCALE = 1.63


class AdaptiveRefreshPolicy(RefreshPolicy):
    """All-bank refresh that adaptively switches between 1x and 4x granularity."""

    #: The granularity mode is recomputed in ``pre_demand`` before use and
    #: is idempotent under frozen queues, so post-issue freezing is safe.
    supports_post_issue_freeze = True

    def __init__(self, config, channel_id: int):
        super().__init__(config, channel_id)
        interval = self.timings.tREFIab
        self._next_due = [
            self._initial_due(interval, rank) for rank in range(self.num_ranks)
        ]
        #: Refresh work owed per rank, in quarters of a 1x refresh.
        self._pending_quarters = [0] * self.num_ranks
        #: Duration (cycles) of one 4x sub-refresh.  DDR4 FGR shrinks tRFC by
        #: only 1.63x while quadrupling the refresh rate, so the four
        #: sub-refreshes together cost 2.45x the latency of one 1x refresh.
        self._quarter_duration = max(1, round(self.timings.tRFCab / FGR4X_TRFC_SCALE))
        #: Current mode per rank: 1 (normal) or 4 (fine granularity).
        self._mode = [1] * self.num_ranks

    # -- mode selection -----------------------------------------------------------
    def _select_mode(self, rank: int) -> int:
        """Pick the refresh granularity for the rank's next refresh.

        Fine-granularity (4x) refreshes cost more in aggregate (their tRFC
        does not shrink proportionally), so they are only worthwhile when
        the rank is lightly loaded: the shorter individual blocking window
        reduces the worst-case delay a future latency-critical request can
        see, while the extra overhead is absorbed by idleness.  Under
        pressure the policy stays in the normal 1x mode — which is why AR
        ends up performing close to REFab, as the paper observes.
        """
        pressure = self.controller.rank_demand_count(rank)
        if pressure < max(1, self.refresh_config.ar_pressure_threshold // 4):
            return 4
        return 1

    def current_mode(self, rank: int) -> int:
        return self._mode[rank]

    # -- schedule bookkeeping --------------------------------------------------------
    def _accumulate_due(self, cycle: int) -> None:
        interval = self.timings.tREFIab
        for rank in range(self.num_ranks):
            while cycle >= self._next_due[rank]:
                self._pending_quarters[rank] += 4
                self._next_due[rank] += interval

    def pending_refreshes(self, rank: int) -> int:
        """Owed refresh work, expressed in whole 1x refreshes (rounded up)."""
        return (self._pending_quarters[rank] + 3) // 4

    # -- policy hooks ------------------------------------------------------------------
    def pre_demand(self, cycle: int) -> Optional[Command]:
        self._accumulate_due(cycle)
        device = self.device
        for rank in range(self.num_ranks):
            if self._pending_quarters[rank] <= 0:
                continue
            self._mode[rank] = self._select_mode(rank)
            if self._mode[rank] == 4:
                duration = self._quarter_duration
                quarters = 1
            else:
                duration = self.timings.tRFCab
                quarters = 4
            command = self._all_bank_command(rank)
            command.duration = duration
            if device.can_issue(command, cycle):
                self._pending_quarters[rank] -= quarters
                self.stats.all_bank_issued += 1
                return command
            precharge = self._precharge_for_refresh(cycle, rank)
            if precharge is not None:
                return precharge
        return None

    def blocks_demand(self, cycle: int, rank: int, bank: int) -> bool:
        return self._pending_quarters[rank] > 0

    def refresh_candidate_banks(self, rank: int) -> tuple[int, ...]:
        # Owed refresh work is issued as rank-wide REFab commands (1x or
        # 4x granularity), both of which involve every bank of the rank.
        if self._pending_quarters[rank] > 0:
            return tuple(range(self.num_banks))
        return ()
