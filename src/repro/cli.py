"""Command-line interface for running the paper's experiments.

``python -m repro run <experiment>`` executes any figure- or table-level
experiment through the parallel engine, ``python -m repro sweep``
executes a declarative design-space sweep, and ``python -m repro bench``
drives the performance-benchmark suite and its regression gate::

    python -m repro list
    python -m repro run figure12 --workers 4 --store results/cache.jsonl
    python -m repro run table3 --cycles 8000 --output table3.json
    python -m repro sweep examples/sweep_spec.json --workers 4 \
        --store results/cache.jsonl --out results/sweeps/example
    python -m repro sweep examples/sweep_spec.json --serve 0.0.0.0:7351 \
        --min-workers 2 --store results/cache.sqlite
    python -m repro worker --connect coordinator-host:7351 --workers 8
    python -m repro store compact results/cache.jsonl
    python -m repro bench run --tier quick --workers 4 --json bench.json
    python -m repro bench compare benchmarks/baseline.json bench.json \
        --max-regression 25%
    python -m repro report paper --store results/cache.jsonl --out paper/
    python -m repro report trend --history benchmarks/history
    python -m repro report run traces/ --profile profile.json --out report/

``--workers N`` fans simulations out over N worker processes (results are
identical to a serial run).  ``--store PATH`` persists every simulation
result to an append-only JSONL cache keyed by job fingerprint; a second
invocation against the same store performs zero new simulations, which the
run summary reports explicitly.

The CLI is also installed as the ``repro`` console script (see
``pyproject.toml``), so ``repro list`` works without ``python -m``.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, TextIO

from repro.config.controller_config import PAGE_POLICIES, PAGE_POLICY_DESCRIPTIONS
from repro.controller.policies import scheduler_descriptions, scheduler_names
from repro.engine.executor import JobExecutor, ParallelExecutor, SerialExecutor
from repro.engine.progress import ProgressPrinter
from repro.engine.store import STORE_BACKENDS, open_store
from repro.sim import experiments
from repro.sim.experiments import ExperimentScale
from repro.sim.runner import ExperimentRunner


def _doc_summary(function: Callable) -> str:
    """One-line summary of an experiment: its docstring's first line."""
    doc = inspect.getdoc(function)
    if not doc:
        return ""
    return doc.splitlines()[0].strip().rstrip(".")


@dataclass(frozen=True)
class Experiment:
    """One runnable experiment: a name, its function and an entry point.

    The ``list`` subcommand describes each experiment by the first line
    of its function's docstring, so descriptions live exactly once — on
    the experiment functions themselves.
    """

    name: str
    function: Callable
    run: Callable[[ExperimentRunner, ExperimentScale], object]

    @property
    def description(self) -> str:
        return _doc_summary(self.function)


def _simulation_free(function: Callable[[], object]):
    """Adapt an experiment that needs no simulations to the common shape."""

    def run(runner: ExperimentRunner, scale: ExperimentScale) -> object:
        return function()

    return run


def _standard(function) -> Callable[[ExperimentRunner, ExperimentScale], object]:
    """Adapt the common ``function(runner=..., scale=...)`` signature."""

    def run(runner: ExperimentRunner, scale: ExperimentScale) -> object:
        return function(runner=runner, scale=scale)

    return run


EXPERIMENTS: dict[str, Experiment] = {
    experiment.name: experiment
    for experiment in (
        Experiment(
            "figure5",
            experiments.figure5_refresh_latency_trend,
            _simulation_free(experiments.figure5_refresh_latency_trend),
        ),
        Experiment(
            "figure6",
            experiments.figure6_refab_performance_loss,
            _standard(experiments.figure6_refab_performance_loss),
        ),
        Experiment(
            "figure7",
            experiments.figure7_refab_vs_refpb_loss,
            _standard(experiments.figure7_refab_vs_refpb_loss),
        ),
        Experiment(
            "figure12",
            experiments.figure12_workload_sweep,
            _standard(experiments.figure12_workload_sweep),
        ),
        Experiment(
            "figure13",
            experiments.figure13_all_mechanisms,
            _standard(experiments.figure13_all_mechanisms),
        ),
        Experiment(
            "figure14",
            experiments.figure14_energy_per_access,
            _standard(experiments.figure14_energy_per_access),
        ),
        Experiment(
            "figure15",
            experiments.figure15_memory_intensity,
            _standard(experiments.figure15_memory_intensity),
        ),
        Experiment(
            "figure16",
            experiments.figure16_fgr_comparison,
            _standard(experiments.figure16_fgr_comparison),
        ),
        Experiment(
            "table2",
            experiments.table2_improvement_summary,
            _standard(experiments.table2_improvement_summary),
        ),
        Experiment(
            "table3",
            experiments.table3_core_count,
            _standard(experiments.table3_core_count),
        ),
        Experiment(
            "table4",
            experiments.table4_tfaw_sensitivity,
            _standard(experiments.table4_tfaw_sensitivity),
        ),
        Experiment(
            "table5",
            experiments.table5_subarray_sensitivity,
            _standard(experiments.table5_subarray_sensitivity),
        ),
        Experiment(
            "table6",
            experiments.table6_refresh_interval,
            _standard(experiments.table6_refresh_interval),
        ),
        Experiment(
            "darp_components",
            experiments.darp_component_breakdown,
            _standard(experiments.darp_component_breakdown),
        ),
        Experiment(
            "dsarp_additivity",
            experiments.dsarp_additivity,
            _standard(experiments.dsarp_additivity),
        ),
    )
}


def _to_jsonable(value: object) -> object:
    """Recursively convert experiment output to JSON-compatible data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _to_jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text!r}")
    return value


def _fraction(text: str) -> float:
    """Parse a regression threshold: ``10%``, ``0.10`` and ``25%`` all work."""
    raw = text.strip()
    try:
        if raw.endswith("%"):
            value = float(raw[:-1]) / 100.0
        else:
            value = float(raw)
            if value > 1:
                # A bare 25 almost certainly means 25%, not a 2500%
                # threshold that would disable the gate; make the caller
                # say which one they want.
                raise argparse.ArgumentTypeError(
                    f"ambiguous threshold {text!r}: write {raw}% for a "
                    f"percentage or a fraction <= 1 (e.g. {float(raw) / 100})"
                )
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a fraction (0.25) or percentage (25%), got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"threshold must be positive, got {text!r}")
    return value


def _nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text!r}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text!r}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text!r}")
    return value


def _hostport(text: str) -> tuple[str, int]:
    from repro.engine.remote import parse_hostport

    try:
        return parse_hostport(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _density_list(text: str) -> tuple[int, ...]:
    try:
        densities = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers (e.g. 8,16,32), got {text!r}"
        ) from None
    if not densities:
        raise argparse.ArgumentTypeError("expected at least one density")
    return densities


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by every simulating subcommand (``run``, ``sweep``)."""
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        help=(
            "worker processes for the simulation fan-out (default: 1, "
            "serial; 0 is allowed only with --serve and means serve-only)"
        ),
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="result store shared across runs (created if missing)",
    )
    parser.add_argument(
        "--store-backend",
        choices=STORE_BACKENDS,
        default="auto",
        help=(
            "result store format: 'jsonl' (append-only lines), 'sqlite' "
            "(WAL mode, concurrent-safe), or 'auto' to infer from the "
            "--store extension (default: auto)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume a killed or partial run from --store: completed jobs "
            "are replayed from the store and only missing jobs simulate"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=2,
        metavar="N",
        help=(
            "times a failed or timed-out job is retried with exponential "
            "backoff before the run fails (default: 2)"
        ),
    )
    parser.add_argument(
        "--job-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "kill and retry any single job running longer than this "
            "(default: no timeout)"
        ),
    )
    parser.add_argument(
        "--serve",
        type=_hostport,
        default=None,
        metavar="HOST:PORT",
        help=(
            "open a TCP coordinator so remote 'repro worker' processes "
            "can join the shard queue (port 0 picks an ephemeral port; "
            "--workers 0 runs every job remotely)"
        ),
    )
    parser.add_argument(
        "--min-workers",
        type=_nonnegative_int,
        default=0,
        metavar="K",
        help=(
            "with --serve: wait for K remote workers to connect before "
            "dispatching the first batch (default: 0, start immediately)"
        ),
    )
    parser.add_argument(
        "--cycles", type=int, default=None, help="measured window in DRAM cycles"
    )
    parser.add_argument(
        "--warmup", type=int, default=None, help="warmup window in DRAM cycles"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default: 0)"
    )
    parser.add_argument(
        "--kernel",
        choices=("event", "cycle"),
        default=None,
        help=(
            "execution kernel: 'event' skips provably idle cycles in one "
            "jump, 'cycle' is the legacy per-cycle loop; both produce "
            "bit-identical results (default: the config's kernel, 'event')"
        ),
    )
    parser.add_argument(
        "--scheduler",
        choices=scheduler_names(),
        default=None,
        help=(
            "demand-scheduling policy applied to every simulated "
            "configuration (default: the config's, 'frfcfs')"
        ),
    )
    parser.add_argument(
        "--page-policy",
        choices=PAGE_POLICIES,
        default=None,
        help=(
            "page-management policy applied to every simulated "
            "configuration (default: the config's, 'closed')"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per completed simulation job",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help=(
            "write a command-stream trace per freshly simulated job into "
            "this directory (summarize with 'repro trace summarize'); "
            "cache/store hits skip simulation and write no trace"
        ),
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "binary"),
        default="jsonl",
        help="on-disk trace format (default: jsonl)",
    )
    parser.add_argument(
        "--epoch-interval",
        type=_positive_int,
        metavar="CYCLES",
        default=None,
        help=(
            "sample queue depths, occupancy and IPC every N cycles; the "
            "samples ride in the trace header (requires --trace to be "
            "persisted)"
        ),
    )


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    """Experiment-scale options shared by ``run``, ``profile``, ``report``."""
    parser.add_argument(
        "--workloads-per-category",
        type=int,
        default=None,
        help="workloads per intensity category for the sweep experiments",
    )
    parser.add_argument(
        "--sensitivity-workloads",
        type=int,
        default=None,
        help="workload count for the sensitivity experiments",
    )
    parser.add_argument(
        "--densities",
        type=_density_list,
        default=None,
        help="comma-separated DRAM densities in Gb (default: 8,16,32)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the HPCA'14 DSARP reproduction experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list", help="list the available experiments and built-in sweeps"
    )

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS),
        help="which figure/table to reproduce",
    )
    _add_engine_arguments(run_parser)
    _add_scale_arguments(run_parser)
    run_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the experiment result JSON to a file instead of stdout",
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a declarative design-space sweep from a spec",
        description=(
            "Execute a multi-axis design-space sweep described by a JSON "
            "SweepSpec file (or a built-in spec name; see 'repro list'), "
            "then write a run directory with the spec, the per-cell results "
            "and a Pareto/sensitivity summary."
        ),
    )
    sweep_parser.add_argument(
        "spec",
        help="path to a SweepSpec JSON file, or a built-in spec name",
    )
    _add_engine_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help=(
            "artifact directory for spec.json / results.jsonl / summary.md "
            "(default: results/sweeps/<spec name>)"
        ),
    )
    sweep_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print what the spec expands to without simulating",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the performance-benchmark suite and its regression gate",
        description=(
            "Drive the declarative benchmark registry (repro.bench): list "
            "the registered benchmarks, run a tier and emit a "
            "schema-versioned BENCH_<date>.json document, or compare two "
            "documents and fail on wall-clock regressions or fidelity drift."
        ),
    )
    bench_subparsers = bench_parser.add_subparsers(dest="bench_command", required=True)

    bench_subparsers.add_parser("list", help="list the registered benchmarks")

    bench_run = bench_subparsers.add_parser(
        "run", help="run a benchmark tier and write the JSON document"
    )
    bench_run.add_argument(
        "--tier",
        choices=("quick", "full"),
        default="quick",
        help=(
            "quick runs the CI-sized suite; full additionally runs the "
            "full-window benchmarks (default: quick)"
        ),
    )
    bench_run.add_argument(
        "--only",
        metavar="NAME",
        action="append",
        default=None,
        help="run only this registered benchmark (repeatable)",
    )
    bench_run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=(
            "write the result document here (default: "
            "BENCH_<date>.json in the bench artifact directory)"
        ),
    )
    bench_run.add_argument(
        "--no-txt",
        action="store_true",
        help="skip writing the per-benchmark text artifacts",
    )
    bench_run.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help=(
            "also append the result document to this history directory as "
            "BENCH_<timestamp>.json ('repro report trend' reads the "
            "trajectory; the repo commits benchmarks/history/)"
        ),
    )
    _add_engine_arguments(bench_run)

    bench_compare = bench_subparsers.add_parser(
        "compare",
        help="diff a current benchmark document against a baseline",
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json document")
    bench_compare.add_argument("current", help="current BENCH_*.json document")
    bench_compare.add_argument(
        "--max-regression",
        type=_fraction,
        default=None,
        help=(
            "allowed wall-clock regression as a fraction or percentage "
            "(e.g. 0.25 or 25%%; default: 10%%); per-benchmark overrides "
            "in the baseline still apply"
        ),
    )
    bench_compare.add_argument(
        "--noise-floor",
        type=_nonnegative_float,
        metavar="SECONDS",
        default=None,
        help="wall times under this floor are never gated (default: 0.05)",
    )
    bench_compare.add_argument(
        "--fidelity-tolerance",
        type=_nonnegative_float,
        default=None,
        help="allowed relative drift in fidelity metrics (default: 1e-9)",
    )
    bench_compare.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write the markdown regression report to a file",
    )

    worker_parser = subparsers.add_parser(
        "worker",
        help="serve this host's cores to a remote sweep coordinator",
        description=(
            "Connect to a coordinator started with 'repro run/sweep ... "
            "--serve HOST:PORT' and execute its shards on local worker "
            "processes.  Results stream back over the same length-prefixed "
            "JSON protocol and are committed by the coordinator, so the "
            "sweep output is bit-identical to a local run.  The worker "
            "exits when the coordinator shuts down or the link drops."
        ),
    )
    worker_parser.add_argument(
        "--connect",
        type=_hostport,
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (the --serve address of the sweep)",
    )
    worker_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="simulation processes to serve from this host (default: 1)",
    )
    worker_parser.add_argument(
        "--heartbeat",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="heartbeat interval to the coordinator (default: 2)",
    )
    worker_parser.add_argument(
        "--connect-timeout",
        type=_positive_float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "keep retrying the TCP connect this long, so workers may "
            "start before the coordinator (default: 30)"
        ),
    )

    store_parser = subparsers.add_parser(
        "store",
        help="inspect, copy and compact result stores",
        description=(
            "Maintain the fingerprint-keyed result stores behind --store: "
            "'stat' summarizes a store, 'copy' migrates results between "
            "stores/backends, and 'compact' rewrites a JSONL store keeping "
            "only the latest record per key (or checkpoints and VACUUMs a "
            "SQLite store)."
        ),
    )
    store_subparsers = store_parser.add_subparsers(dest="store_command", required=True)
    store_stat = store_subparsers.add_parser(
        "stat", help="summarize a result store"
    )
    store_stat.add_argument("path", help="store file (JSONL or SQLite)")
    store_stat.add_argument(
        "--store-backend",
        choices=STORE_BACKENDS,
        default="auto",
        help="store format (default: auto, infer from the extension)",
    )
    store_copy = store_subparsers.add_parser(
        "copy", help="copy every result from one store into another"
    )
    store_copy.add_argument("source", help="store to read")
    store_copy.add_argument("destination", help="store to write (created if missing)")
    store_copy.add_argument(
        "--source-backend",
        choices=STORE_BACKENDS,
        default="auto",
        help="source format (default: auto)",
    )
    store_copy.add_argument(
        "--destination-backend",
        choices=STORE_BACKENDS,
        default="auto",
        help="destination format (default: auto)",
    )
    store_compact = store_subparsers.add_parser(
        "compact",
        help="drop stale JSONL records / VACUUM a SQLite store in place",
    )
    store_compact.add_argument("path", help="store file (JSONL or SQLite)")
    store_compact.add_argument(
        "--store-backend",
        choices=STORE_BACKENDS,
        default="auto",
        help="store format (default: auto, infer from the extension)",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="analyze command-stream traces written with --trace",
        description=(
            "Analyze trace files produced by 'repro run ... --trace DIR': "
            "reconstruct refresh-access overlap windows, per-bank "
            "utilization and row-hit runs, and cross-check the trace "
            "totals against the run's aggregate statistics."
        ),
    )
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_subparsers.add_parser(
        "summarize", help="summarize one or more trace files"
    )
    trace_summarize.add_argument(
        "paths", nargs="+", metavar="TRACE", help="trace file(s), jsonl or binary"
    )
    trace_summarize.add_argument(
        "--json",
        action="store_true",
        help="emit the full structured summary as JSON instead of text",
    )

    profile_parser = subparsers.add_parser(
        "profile",
        help="run one experiment with span profiling and print hot spots",
        description=(
            "Run an experiment with wall-clock span profiling enabled "
            "(kernel steps, controller horizon scans, per-job engine time) "
            "and print the sorted hot-spot table."
        ),
    )
    profile_parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS),
        help="which figure/table to profile",
    )
    _add_engine_arguments(profile_parser)
    _add_scale_arguments(profile_parser)
    profile_parser.add_argument(
        "--top",
        type=_positive_int,
        default=20,
        help="rows to show in the hot-spot table (default: 20)",
    )
    profile_parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit a machine-readable repro.obs.profile JSON document "
            "(spans + engine summary) instead of the text table; feed it "
            "to 'repro report run --profile'"
        ),
    )

    report_parser = subparsers.add_parser(
        "report",
        help="generate paper artifacts, bench trend and run reports",
        description=(
            "Generate publishable report bundles: 'paper' regenerates the "
            "Table 2-6 / Figure 5-16 artifacts (markdown, LaTeX, SVG, "
            "canonical JSON) from the result store with a golden-fixture "
            "crosscheck; 'trend' renders per-benchmark trajectories over "
            "the committed benchmarks/history/ snapshots with drift "
            "flagging; 'run' stitches trace summaries, epoch IPC "
            "trajectories and profile hot spots into one document."
        ),
    )
    report_subparsers = report_parser.add_subparsers(
        dest="report_command", required=True
    )

    report_paper = report_subparsers.add_parser(
        "paper", help="regenerate the paper's table/figure artifacts"
    )
    _add_engine_arguments(report_paper)
    _add_scale_arguments(report_paper)
    report_paper.add_argument(
        "--out",
        metavar="DIR",
        default="results/report/paper",
        help="artifact output directory (default: results/report/paper)",
    )
    report_paper.add_argument(
        "--artifacts",
        metavar="NAME",
        action="append",
        default=None,
        help="generate only this artifact, e.g. table2 (repeatable)",
    )
    report_paper.add_argument(
        "--no-crosscheck",
        action="store_true",
        help="skip the golden-fixture crosscheck",
    )

    report_trend = report_subparsers.add_parser(
        "trend", help="render benchmark trajectories from committed history"
    )
    report_trend.add_argument(
        "--history",
        metavar="DIR",
        default="benchmarks/history",
        help="history snapshot directory (default: benchmarks/history)",
    )
    report_trend.add_argument(
        "--current",
        metavar="PATH",
        default=None,
        help="uncommitted BENCH_*.json to append as the newest snapshot",
    )
    report_trend.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write trend.md / trend.json / sparkline SVGs here",
    )
    report_trend.add_argument(
        "--fail-on-drift",
        action="store_true",
        help="exit 1 when the latest snapshot fails the compare gate",
    )

    report_run = report_subparsers.add_parser(
        "run", help="stitch traces, epochs and a profile into one report"
    )
    report_run.add_argument(
        "traces",
        nargs="*",
        metavar="TRACE",
        help="trace files or directories of traces (written with --trace)",
    )
    report_run.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="repro.obs.profile JSON document (from 'repro profile --json')",
    )
    report_run.add_argument(
        "--out",
        metavar="DIR",
        default="results/report/run",
        help="output directory for report.md / report.html",
    )
    report_run.add_argument(
        "--title", default="Run report", help="report document title"
    )
    return parser


def _build_scale(args: argparse.Namespace) -> ExperimentScale:
    scale = ExperimentScale.from_environment()
    overrides = {}
    if args.workloads_per_category is not None:
        overrides["workloads_per_category"] = args.workloads_per_category
    if args.sensitivity_workloads is not None:
        overrides["sensitivity_workloads"] = args.sensitivity_workloads
    if args.densities is not None:
        overrides["densities"] = args.densities
    return dataclasses.replace(scale, **overrides) if overrides else scale


def _build_runner(
    args: argparse.Namespace, stderr: TextIO, policy_overrides: bool = True
) -> ExperimentRunner:
    """Assemble the engine stack (executor, store, progress) from CLI args.

    ``policy_overrides=False`` keeps ``--scheduler`` / ``--page-policy``
    out of the runner: the sweep path applies them to the spec's ``base``
    instead (see :func:`_apply_policy_flags`), so a swept
    ``scheduler``/``page_policy`` axis is never silently clobbered by a
    blanket per-job override.
    """
    if getattr(args, "resume", False) and not args.store:
        stderr.write("error: --resume requires --store (nothing to resume from)\n")
        raise SystemExit(2)
    store = (
        open_store(args.store, backend=getattr(args, "store_backend", "auto"))
        if args.store
        else None
    )
    if store is not None:
        cached = len(store)
        stderr.write(f"store: {store.path} ({cached} cached results)\n")
        if getattr(args, "resume", False):
            stderr.write(
                f"resume: replaying {cached} completed jobs from the store; "
                "only missing jobs will simulate\n"
            )
    max_retries = getattr(args, "max_retries", 2)
    job_timeout = getattr(args, "job_timeout", None)
    serve = getattr(args, "serve", None)
    min_workers = getattr(args, "min_workers", 0)
    if serve is None and args.workers == 0:
        stderr.write("error: --workers 0 (serve-only) requires --serve\n")
        raise SystemExit(2)
    if serve is None and min_workers > 0:
        stderr.write("error: --min-workers requires --serve\n")
        raise SystemExit(2)
    if serve is not None or args.workers > 1 or job_timeout is not None:
        executor: JobExecutor = ParallelExecutor(
            workers=args.workers,
            max_retries=max_retries,
            job_timeout=job_timeout,
            serve=serve,
            min_workers=min_workers,
        )
        if executor.coordinator is not None:
            stderr.write(
                f"serving shards on "
                f"{executor.coordinator.host}:{executor.coordinator.port}"
                + (
                    f" (waiting for {min_workers} worker"
                    f"{'s' if min_workers != 1 else ''})\n"
                    if min_workers
                    else "\n"
                )
            )
    else:
        executor = SerialExecutor()
    obs = None
    if getattr(args, "trace", None) or getattr(args, "epoch_interval", None):
        from repro.config.obs_config import ObsConfig

        obs = ObsConfig(
            trace=bool(args.trace),
            trace_dir=args.trace,
            trace_format=args.trace_format,
            epoch_interval=args.epoch_interval or 0,
        )
    return ExperimentRunner(
        cycles=args.cycles,
        warmup=args.warmup,
        seed=args.seed,
        executor=executor,
        store=store,
        progress=ProgressPrinter(stream=stderr) if args.progress else None,
        kernel=args.kernel,
        scheduler=args.scheduler if policy_overrides else None,
        page_policy=args.page_policy if policy_overrides else None,
        obs=obs,
    )


def _write_run_summary(
    runner: ExperimentRunner, args: argparse.Namespace, stderr: TextIO
) -> None:
    summary = runner.summary()
    stderr.write(
        f"run summary: {summary['jobs']} jobs planned — "
        f"{summary['simulated']} simulated, "
        f"{summary['store_hits']} store hits, "
        f"{summary['memory_hits']} memory hits "
        f"({summary['elapsed_s']:.2f}s in engine"
        f", {args.workers} worker{'s' if args.workers != 1 else ''})\n"
    )
    remote_workers = summary.get("remote_workers", 0)
    reassignments = summary.get("reassignments", 0)
    if remote_workers or getattr(args, "serve", None) is not None:
        stderr.write(
            f"remote: {remote_workers} worker"
            f"{'s' if remote_workers != 1 else ''} joined, "
            f"{summary.get('bytes_sent', 0)} bytes sent / "
            f"{summary.get('bytes_received', 0)} received, "
            f"{reassignments} shard reassignment"
            f"{'s' if reassignments != 1 else ''}\n"
        )
    failures = summary.get("worker_failures", 0)
    timeouts = summary.get("timeouts", 0)
    retries = summary.get("retries", 0)
    if failures or timeouts or retries or reassignments:
        stderr.write(
            f"warning: run completed with degradation — {failures} worker "
            f"failure{'s' if failures != 1 else ''}, {timeouts} "
            f"timeout{'s' if timeouts != 1 else ''}, {retries} retried "
            f"job{'s' if retries != 1 else ''}, {reassignments} reassigned "
            f"shard{'s' if reassignments != 1 else ''}\n"
        )
    if runner.store is not None:
        stderr.write(
            f"store: {runner.store.path} now holds {len(runner.store)} results\n"
        )
    shutdown = getattr(runner.executor, "shutdown_remote", None)
    if callable(shutdown):
        shutdown()


def _run_command(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    experiment = EXPERIMENTS[args.experiment]
    runner = _build_runner(args, stderr)
    result = experiment.run(runner, _build_scale(args))

    payload = json.dumps(_to_jsonable(result), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        stderr.write(f"result written to {args.output}\n")
    else:
        stdout.write(payload + "\n")

    _write_run_summary(runner, args, stderr)
    return 0


def _load_sweep_spec(text: str):
    """Resolve the ``sweep`` positional: a spec file, run dir or builtin name."""
    from repro.sweep import SpecError, SweepSpec
    from repro.sweep.builtin import BUILTIN_SPECS, builtin_spec

    if os.path.isdir(text):
        # Run directories are advertised as re-runnable; accept the
        # directory itself and use the spec it contains.
        candidate = os.path.join(text, "spec.json")
        if not os.path.exists(candidate):
            raise SpecError(f"{text!r} is a directory without a spec.json")
        return SweepSpec.load(candidate)
    if os.path.exists(text):
        return SweepSpec.load(text)
    if text in BUILTIN_SPECS:
        return builtin_spec(text, ExperimentScale.from_environment())
    raise SpecError(
        f"{text!r} is neither a spec file nor a built-in sweep "
        f"(built-ins: {', '.join(sorted(BUILTIN_SPECS))})"
    )


def _apply_policy_flags(spec, scheduler: Optional[str], page_policy: Optional[str]):
    """Fold ``--scheduler`` / ``--page-policy`` into a sweep spec's ``base``.

    ``base`` knobs are overridden by axis values during compilation, so a
    spec that *sweeps* ``scheduler`` or ``page_policy`` keeps its axis
    intact — the flags only change the default for specs that do not
    sweep that knob.  (A per-job runner override would instead rewrite
    every compiled cell, silently collapsing the swept axis.)
    """
    if scheduler is None and page_policy is None:
        return spec
    base = dict(spec.base)
    if scheduler is not None:
        base["scheduler"] = scheduler
    if page_policy is not None:
        base["page_policy"] = page_policy
    return dataclasses.replace(spec, base=base)


def _sweep_command(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    from repro.sweep import (
        SpecError,
        describe_plan,
        run_sweep,
        summarize,
        write_run_dir,
    )

    try:
        spec = _load_sweep_spec(args.spec)
    except (SpecError, OSError) as error:
        stderr.write(f"error: {error}\n")
        return 2
    spec = _apply_policy_flags(spec, args.scheduler, args.page_policy)
    stderr.write(describe_plan(spec) + "\n")
    if args.dry_run:
        return 0

    runner = _build_runner(args, stderr, policy_overrides=False)
    result = run_sweep(spec, runner=runner)
    summary = summarize(result)

    out_dir = args.out if args.out else os.path.join("results", "sweeps", spec.name)
    written = write_run_dir(out_dir, result, summary=summary)
    stdout.write(summary)
    _write_run_summary(runner, args, stderr)
    stderr.write(f"artifact directory: {written}\n")
    return 0


def _bench_list_command(stdout: TextIO) -> int:
    from repro.bench import all_specs

    specs = all_specs()
    width = max(len(spec.name) for spec in specs)
    stdout.write("registered benchmarks (repro bench run):\n")
    for spec in specs:
        stdout.write(f"  {spec.name:<{width}}  [{spec.tier:5s}]  {spec.description}\n")
    return 0


def _bench_run_command(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    from repro.bench import (
        BenchError,
        all_specs,
        default_json_path,
        get_spec,
        run_specs,
    )

    try:
        if args.only:
            # De-duplicate while preserving order: a repeated --only would
            # otherwise produce duplicate records the document loader rejects.
            specs = [get_spec(name) for name in dict.fromkeys(args.only)]
        else:
            specs = all_specs(args.tier)
    except BenchError as error:
        stderr.write(f"error: {error}\n")
        return 2
    runner = _build_runner(args, stderr)
    document = run_specs(
        specs,
        tier=args.tier,
        runner=runner,
        workers=args.workers,
        log=stderr,
        write_text_artifacts=not args.no_txt,
    )
    json_path = Path(args.json) if args.json else default_json_path()
    document.save(json_path)
    if args.history:
        from repro.bench.run import append_history

        history_path = append_history(args.history, document)
        stderr.write(f"history snapshot appended: {history_path}\n")
    _write_run_summary(runner, args, stderr)
    failed = [record for record in document.benchmarks if not record.checks_passed]
    stdout.write(
        f"{len(document.benchmarks)} benchmarks run, {len(failed)} failed; "
        f"document written to {json_path}\n"
    )
    for record in failed:
        stdout.write(f"  FAILED {record.name}: {record.error}\n")
    return 1 if failed else 0


def _bench_compare_command(
    args: argparse.Namespace, stdout: TextIO, stderr: TextIO
) -> int:
    from repro.bench import BenchDocument, BenchError, compare_documents

    overrides = {}
    if args.max_regression is not None:
        overrides["max_regression"] = args.max_regression
    if args.noise_floor is not None:
        overrides["noise_floor_s"] = args.noise_floor
    if args.fidelity_tolerance is not None:
        overrides["fidelity_tolerance"] = args.fidelity_tolerance
    try:
        baseline = BenchDocument.load(args.baseline)
        current = BenchDocument.load(args.current)
        comparison = compare_documents(baseline, current, **overrides)
    except (BenchError, OSError) as error:
        stderr.write(f"error: {error}\n")
        return 2
    report = comparison.to_markdown()
    stdout.write(report)
    if args.report:
        report_path = Path(args.report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(report, encoding="utf-8")
        stderr.write(f"report written to {args.report}\n")
    return 0 if comparison.ok else 1


def _trace_command(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    """``repro trace summarize``: analyze traces, exit 1 on crosscheck failure."""
    from repro.obs.summarize import format_summary, summarize_path

    failures = 0
    payloads = []
    for path in args.paths:
        try:
            summary = summarize_path(path)
        except (OSError, ValueError) as error:
            stderr.write(f"error: {path}: {error}\n")
            return 2
        if args.json:
            payloads.append({"path": str(path), **summary})
        else:
            if len(args.paths) > 1:
                stdout.write(f"== {path} ==\n")
            stdout.write(format_summary(summary))
            if len(args.paths) > 1:
                stdout.write("\n")
        if not summary["crosscheck"]["agrees"]:
            failures += 1
            stderr.write(
                f"crosscheck failed for {path}: trace totals disagree with "
                f"the run's aggregate statistics\n"
            )
    if args.json:
        out = payloads[0] if len(payloads) == 1 else payloads
        stdout.write(json.dumps(_to_jsonable(out), indent=2, sort_keys=True) + "\n")
    return 1 if failures else 0


def _profile_command(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    """``repro profile``: run an experiment under the span profiler."""
    import repro.obs.profile as obs_profile

    experiment = EXPERIMENTS[args.experiment]
    runner = _build_runner(args, stderr)
    obs_profile.enable()
    try:
        experiment.run(runner, _build_scale(args))
    finally:
        profiler = obs_profile.disable()
    _write_run_summary(runner, args, stderr)
    if args.json:
        document = {
            "schema": "repro.obs.profile",
            "version": 1,
            "experiment": args.experiment,
            "spans": profiler.as_dict(),
            "engine": runner.summary(),
        }
        stdout.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
    else:
        stdout.write(profiler.format_table(top=args.top))
    return 0


def _expand_trace_paths(raw: list[str], stderr: TextIO) -> Optional[list[Path]]:
    """Expand trace file/directory arguments; None signals a bad path."""
    paths: list[Path] = []
    for entry in raw:
        path = Path(entry)
        if path.is_dir():
            found = sorted(
                candidate
                for candidate in path.iterdir()
                if candidate.suffix in (".jsonl", ".bin")
            )
            if not found:
                stderr.write(f"warning: no traces found in {path}\n")
            paths.extend(found)
        elif path.exists():
            paths.append(path)
        else:
            stderr.write(f"error: trace {path} does not exist\n")
            return None
    return paths


def _report_paper_command(
    args: argparse.Namespace, stdout: TextIO, stderr: TextIO
) -> int:
    from repro.report.paper import ReportError, generate_paper_report

    runner = _build_runner(args, stderr)
    try:
        report = generate_paper_report(
            args.out,
            runner=runner,
            scale=_build_scale(args),
            names=args.artifacts,
            crosscheck=not args.no_crosscheck,
        )
    except ReportError as error:
        stderr.write(f"error: {error}\n")
        return 2
    _write_run_summary(runner, args, stderr)
    stdout.write(
        f"{len(report.artifacts)} artifacts written to {report.out_dir}\n"
    )
    for check in report.crosschecks:
        line = f"crosscheck {check.fixture}: {check.status}"
        if check.detail:
            line += f" ({check.detail})"
        stdout.write(line + "\n")
    if not report.ok:
        stderr.write("error: golden crosscheck failed; do not publish\n")
        return 1
    return 0


def _report_trend_command(
    args: argparse.Namespace, stdout: TextIO, stderr: TextIO
) -> int:
    from repro.bench import BenchDocument, BenchError
    from repro.report.trend import TrendError, build_trend_report, write_trend_report

    current = None
    try:
        if args.current:
            current = BenchDocument.load(args.current)
        report = build_trend_report(
            args.history,
            current=current,
            current_label=Path(args.current).name if args.current else "<current run>",
        )
    except (TrendError, BenchError, OSError) as error:
        stderr.write(f"error: {error}\n")
        return 2
    stdout.write(report.to_markdown() + "\n")
    if args.out:
        written = write_trend_report(report, args.out)
        stderr.write(f"{len(written)} trend files written to {args.out}\n")
    if args.fail_on_drift and not report.ok:
        return 1
    return 0


def _report_run_command(
    args: argparse.Namespace, stdout: TextIO, stderr: TextIO
) -> int:
    from repro.report.run import build_run_report, write_run_report

    traces = _expand_trace_paths(args.traces, stderr)
    if traces is None:
        return 2
    try:
        report = build_run_report(
            traces, profile_path=args.profile, title=args.title
        )
    except (OSError, ValueError) as error:
        stderr.write(f"error: {error}\n")
        return 2
    written = write_run_report(report, args.out)
    stdout.write(report.to_markdown() + "\n")
    stderr.write(f"{len(written)} report files written to {args.out}\n")
    return 0


def _report_command(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    if args.report_command == "paper":
        return _report_paper_command(args, stdout, stderr)
    if args.report_command == "trend":
        return _report_trend_command(args, stdout, stderr)
    return _report_run_command(args, stdout, stderr)


def _worker_command(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    """``repro worker``: serve local cores to a remote coordinator."""
    from repro.engine.remote import HEARTBEAT_S, run_worker

    host, port = args.connect
    return run_worker(
        host,
        port,
        workers=args.workers,
        heartbeat_s=args.heartbeat if args.heartbeat is not None else HEARTBEAT_S,
        connect_timeout_s=args.connect_timeout,
        stderr=stderr,
    )


def _describe_store(path: str, store) -> str:
    backend = type(store).__name__
    size = sum(
        os.path.getsize(path + suffix)
        for suffix in ("", "-wal", "-shm")
        if os.path.exists(path + suffix)
    )
    line = f"{path}: {backend}, {len(store)} result(s), {size} bytes on disk"
    record_count = getattr(store, "record_count", None)
    if callable(record_count):
        records = record_count()
        stale = records - len(store)
        line += f"; {records} record line(s), {stale} stale"
    return line


def _store_command(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    """``repro store stat|copy|compact``: result-store maintenance."""
    from repro.engine.sqlite_store import copy_store

    if args.store_command == "copy":
        if not os.path.exists(args.source):
            stderr.write(f"error: {args.source} does not exist\n")
            return 2
        source = open_store(args.source, backend=args.source_backend)
        destination = open_store(args.destination, backend=args.destination_backend)
        copied = copy_store(source, destination)
        stdout.write(
            f"copied {copied} result(s) from {args.source} to "
            f"{args.destination}\n"
        )
        stdout.write(_describe_store(args.destination, destination) + "\n")
        return 0
    if not os.path.exists(args.path):
        stderr.write(f"error: {args.path} does not exist\n")
        return 2
    store = open_store(args.path, backend=args.store_backend)
    if args.store_command == "stat":
        stdout.write(_describe_store(args.path, store) + "\n")
        return 0
    compact = getattr(store, "compact", None)
    if not callable(compact):
        stderr.write(f"error: {type(store).__name__} cannot be compacted\n")
        return 2
    outcome = compact()
    stdout.write(
        f"compacted {args.path}: {outcome['records_before']} -> "
        f"{outcome['records_after']} record(s), {outcome['bytes_before']} -> "
        f"{outcome['bytes_after']} bytes\n"
    )
    return 0


def _bench_command(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    if args.bench_command == "list":
        return _bench_list_command(stdout)
    if args.bench_command == "run":
        return _bench_run_command(args, stdout, stderr)
    return _bench_compare_command(args, stdout, stderr)


def main(
    argv: Optional[list[str]] = None,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """CLI entry point; returns the process exit code."""
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        from repro.sweep.builtin import BUILTIN_SPECS

        width = max(
            max(len(name) for name in EXPERIMENTS),
            max(len(name) for name in BUILTIN_SPECS),
        )
        stdout.write("experiments (repro run <name>):\n")
        for name in sorted(EXPERIMENTS):
            stdout.write(f"  {name:<{width}}  {EXPERIMENTS[name].description}\n")
        stdout.write("\nbuilt-in sweeps (repro sweep <name>):\n")
        for name in sorted(BUILTIN_SPECS):
            description = BUILTIN_SPECS[name]().description
            stdout.write(f"  {name:<{width}}  {description}\n")
        stdout.write("\nscheduler policies (--scheduler, sweep axis 'scheduler'):\n")
        for name, description in scheduler_descriptions().items():
            stdout.write(f"  {name:<{width}}  {description}\n")
        stdout.write("\npage policies (--page-policy, sweep axis 'page_policy'):\n")
        for name, description in PAGE_POLICY_DESCRIPTIONS.items():
            stdout.write(f"  {name:<{width}}  {description}\n")
        return 0
    if args.command == "sweep":
        return _sweep_command(args, stdout, stderr)
    if args.command == "bench":
        return _bench_command(args, stdout, stderr)
    if args.command == "worker":
        return _worker_command(args, stdout, stderr)
    if args.command == "store":
        return _store_command(args, stdout, stderr)
    if args.command == "trace":
        return _trace_command(args, stdout, stderr)
    if args.command == "profile":
        return _profile_command(args, stdout, stderr)
    if args.command == "report":
        return _report_command(args, stdout, stderr)
    return _run_command(args, stdout, stderr)
