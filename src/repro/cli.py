"""Command-line interface for running the paper's experiments.

``python -m repro run <experiment>`` executes any figure- or table-level
experiment through the parallel engine::

    python -m repro list
    python -m repro run figure12 --workers 4 --store results/cache.jsonl
    python -m repro run table3 --cycles 8000 --output table3.json

``--workers N`` fans simulations out over N worker processes (results are
identical to a serial run).  ``--store PATH`` persists every simulation
result to an append-only JSONL cache keyed by job fingerprint; a second
invocation against the same store performs zero new simulations, which the
run summary reports explicitly.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from dataclasses import dataclass
from typing import Callable, Optional, TextIO

from repro.engine.executor import ParallelExecutor, SerialExecutor
from repro.engine.progress import ProgressPrinter
from repro.engine.store import JsonlStore
from repro.sim import experiments
from repro.sim.experiments import ExperimentScale
from repro.sim.runner import ExperimentRunner


@dataclass(frozen=True)
class Experiment:
    """One runnable experiment: a name, a description and an entry point."""

    name: str
    description: str
    run: Callable[[ExperimentRunner, ExperimentScale], object]


def _simulation_free(function: Callable[[], object]):
    """Adapt an experiment that needs no simulations to the common shape."""

    def run(runner: ExperimentRunner, scale: ExperimentScale) -> object:
        return function()

    return run


def _standard(function) -> Callable[[ExperimentRunner, ExperimentScale], object]:
    """Adapt the common ``function(runner=..., scale=...)`` signature."""

    def run(runner: ExperimentRunner, scale: ExperimentScale) -> object:
        return function(runner=runner, scale=scale)

    return run


EXPERIMENTS: dict[str, Experiment] = {
    experiment.name: experiment
    for experiment in (
        Experiment(
            "figure5",
            "Projected tRFCab versus DRAM density (no simulation)",
            _simulation_free(experiments.figure5_refresh_latency_trend),
        ),
        Experiment(
            "figure6",
            "% WS loss of REFab vs the no-refresh ideal, per category",
            _standard(experiments.figure6_refab_performance_loss),
        ),
        Experiment(
            "figure7",
            "Average % WS loss of REFab and REFpb vs the ideal",
            _standard(experiments.figure7_refab_vs_refpb_loss),
        ),
        Experiment(
            "figure12",
            "Per-workload WS normalized to REFab (main evaluation)",
            _standard(experiments.figure12_workload_sweep),
        ),
        Experiment(
            "figure13",
            "Average % WS improvement over REFab for every mechanism",
            _standard(experiments.figure13_all_mechanisms),
        ),
        Experiment(
            "figure14",
            "Average energy per access for every mechanism",
            _standard(experiments.figure14_energy_per_access),
        ),
        Experiment(
            "figure15",
            "DSARP gains by memory-intensity category",
            _standard(experiments.figure15_memory_intensity),
        ),
        Experiment(
            "figure16",
            "DDR4 fine-granularity and adaptive refresh comparison",
            _standard(experiments.figure16_fgr_comparison),
        ),
        Experiment(
            "table2",
            "Max and gmean WS improvement over REFpb / REFab",
            _standard(experiments.table2_improvement_summary),
        ),
        Experiment(
            "table3",
            "DSARP vs REFab across core counts",
            _standard(experiments.table3_core_count),
        ),
        Experiment(
            "table4",
            "SARPpb sensitivity to tFAW / tRRD",
            _standard(experiments.table4_tfaw_sensitivity),
        ),
        Experiment(
            "table5",
            "SARPpb sensitivity to subarrays per bank",
            _standard(experiments.table5_subarray_sensitivity),
        ),
        Experiment(
            "table6",
            "DSARP improvement at 64 ms retention",
            _standard(experiments.table6_refresh_interval),
        ),
        Experiment(
            "darp_components",
            "Ablation: out-of-order refresh alone versus full DARP",
            _standard(experiments.darp_component_breakdown),
        ),
        Experiment(
            "dsarp_additivity",
            "Ablation: DARP, SARPpb and DSARP over REFab",
            _standard(experiments.dsarp_additivity),
        ),
    )
}


def _to_jsonable(value: object) -> object:
    """Recursively convert experiment output to JSON-compatible data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _to_jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text!r}")
    return value


def _density_list(text: str) -> tuple[int, ...]:
    try:
        densities = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers (e.g. 8,16,32), got {text!r}"
        ) from None
    if not densities:
        raise argparse.ArgumentTypeError("expected at least one density")
    return densities


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the HPCA'14 DSARP reproduction experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS),
        help="which figure/table to reproduce",
    )
    run_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes for the simulation fan-out (default: 1, serial)",
    )
    run_parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="JSONL result store shared across runs (created if missing)",
    )
    run_parser.add_argument(
        "--cycles", type=int, default=None, help="measured window in DRAM cycles"
    )
    run_parser.add_argument(
        "--warmup", type=int, default=None, help="warmup window in DRAM cycles"
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default: 0)"
    )
    run_parser.add_argument(
        "--workloads-per-category",
        type=int,
        default=None,
        help="workloads per intensity category for the sweep experiments",
    )
    run_parser.add_argument(
        "--sensitivity-workloads",
        type=int,
        default=None,
        help="workload count for the sensitivity experiments",
    )
    run_parser.add_argument(
        "--densities",
        type=_density_list,
        default=None,
        help="comma-separated DRAM densities in Gb (default: 8,16,32)",
    )
    run_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the experiment result JSON to a file instead of stdout",
    )
    run_parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per completed simulation job",
    )
    return parser


def _build_scale(args: argparse.Namespace) -> ExperimentScale:
    scale = ExperimentScale.from_environment()
    overrides = {}
    if args.workloads_per_category is not None:
        overrides["workloads_per_category"] = args.workloads_per_category
    if args.sensitivity_workloads is not None:
        overrides["sensitivity_workloads"] = args.sensitivity_workloads
    if args.densities is not None:
        overrides["densities"] = args.densities
    return dataclasses.replace(scale, **overrides) if overrides else scale


def _run_command(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    experiment = EXPERIMENTS[args.experiment]
    store = JsonlStore(args.store) if args.store else None
    if store is not None:
        stderr.write(f"store: {store.path} ({len(store)} cached results)\n")
    executor = (
        ParallelExecutor(workers=args.workers) if args.workers > 1 else SerialExecutor()
    )
    runner = ExperimentRunner(
        cycles=args.cycles,
        warmup=args.warmup,
        seed=args.seed,
        executor=executor,
        store=store,
        progress=ProgressPrinter(stream=stderr) if args.progress else None,
    )
    result = experiment.run(runner, _build_scale(args))

    payload = json.dumps(_to_jsonable(result), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        stderr.write(f"result written to {args.output}\n")
    else:
        stdout.write(payload + "\n")

    summary = runner.summary()
    stderr.write(
        f"run summary: {summary['jobs']} jobs planned — "
        f"{summary['simulated']} simulated, "
        f"{summary['store_hits']} store hits, "
        f"{summary['memory_hits']} memory hits "
        f"({summary['elapsed_s']:.2f}s in engine"
        f", {args.workers} worker{'s' if args.workers != 1 else ''})\n"
    )
    if store is not None:
        stderr.write(f"store: {store.path} now holds {len(store)} results\n")
    return 0


def main(
    argv: Optional[list[str]] = None,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """CLI entry point; returns the process exit code."""
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            stdout.write(f"{name:<{width}}  {EXPERIMENTS[name].description}\n")
        return 0
    return _run_command(args, stdout, stderr)
