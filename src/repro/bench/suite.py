"""The standard benchmark suite: one registered spec per paper artifact.

Every entry here is the declarative port of one ``benchmarks/bench_*.py``
script: the target reproduces the same table or figure through the shared
:class:`~repro.bench.run.BenchContext` runner, ``checks`` carries the
script's trend assertions, ``format`` renders the same ``results/*.txt``
artifact, and ``metrics``/``timings`` expose the machine-readable numbers
the old scripts only printed.  The scripts themselves are now thin shims
over this registry (see ``benchmarks/conftest.py``), so the pytest
invocation and the ``repro bench`` CLI measure identical code paths.

Metric keys are flat strings (``dsarp_gmean_refab_32gb``) so result
documents diff cleanly; only deterministic simulation outputs go into
``metrics`` (compare gates them), while wall-clock-derived numbers
(speedups, cache ratios) go into ``timings`` (recorded, never gated).
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro.analysis import figures, tables
from repro.bench.run import BenchContext
from repro.bench.spec import BenchSpec, register
from repro.config.presets import paper_system
from repro.engine.executor import ParallelExecutor, SerialExecutor
from repro.engine.jobs import SimulationJob
from repro.engine.store import JsonlStore
from repro.metrics.speedup import geometric_mean
from repro.sim import experiments
from repro.sim.runner import DEFAULT_CYCLES, DEFAULT_WARMUP, ExperimentRunner
from repro.sim.simulator import Simulator
from repro.sweep import Axis, SweepSpec, WorkloadSpec, run_sweep
from repro.workloads.benchmark_suite import MB, Benchmark, get_benchmark
from repro.workloads.mixes import make_workload, make_workload_category


def _full_window(context: BenchContext) -> bool:
    """Whether the paper-trend assertions are meaningful for this run.

    The trend checks encode full-window behavior (DSARP beating REFpb,
    benefits growing with density, ...).  Under a reduced ``REPRO_CYCLES``
    window — the CI quick tier — refresh penalties drown in startup noise
    and the trends legitimately do not hold, so those checks self-skip and
    the regression gate rests on fidelity metrics and wall clock instead.
    Window-insensitive invariants (kernel identity, warm-store re-runs
    performing zero simulations, Figure 5's closed-form values) always run.
    """
    return context.cycles >= DEFAULT_CYCLES


# ---------------------------------------------------------------------------
# Figure 5: refresh-latency scaling trend (no simulation)
# ---------------------------------------------------------------------------
def _figure5(context: BenchContext):
    """Figure 5: projected tRFCab versus DRAM density (no simulation)."""
    return experiments.figure5_refresh_latency_trend()


def _figure5_metrics(points) -> dict:
    by_density = {p.density_gb: p for p in points}
    return {
        f"projection2_ns_{density}gb": by_density[density].projection2_ns
        for density in (16, 32, 64)
    } | {"projection1_ns_64gb": by_density[64].projection1_ns}


def _figure5_checks(points, context: BenchContext) -> None:
    by_density = {p.density_gb: p for p in points}
    # The paper's Projection 2 values: 530 ns (16 Gb), 890 ns (32 Gb), 1.6 us (64 Gb).
    assert round(by_density[16].projection2_ns) == 530
    assert round(by_density[32].projection2_ns) == 890
    assert round(by_density[64].projection2_ns) == 1610
    # Projection 1 is the more pessimistic extrapolation.
    assert by_density[64].projection1_ns > by_density[64].projection2_ns


register(
    BenchSpec(
        name="figure05_trfc_trend",
        target=_figure5,
        metrics=_figure5_metrics,
        checks=_figure5_checks,
        format=figures.format_figure5,
    )
)


# ---------------------------------------------------------------------------
# Figure 6: performance degradation due to all-bank refresh
# ---------------------------------------------------------------------------
def _figure6(context: BenchContext):
    """Figure 6: % WS loss of REFab vs the no-refresh ideal."""
    return experiments.figure6_refab_performance_loss(
        runner=context.runner, scale=context.scale
    )


def _figure6_metrics(result) -> dict:
    # Category -1 is the all-category average the paper quotes.
    return {
        f"avg_loss_pct_{density}gb": loss for density, loss in result[-1].items()
    } | {
        f"intensive_loss_pct_{density}gb": loss
        for density, loss in result[100].items()
    }


def _figure6_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    average = result[-1]
    # Refresh hurts, and hurts more at higher density (the paper's trend).
    assert average[32] > average[8] > 0
    # The most memory-intensive category suffers more than the least at 32 Gb.
    assert result[100][32] > result[0][32]


register(
    BenchSpec(
        name="figure06_refab_loss",
        target=_figure6,
        metrics=_figure6_metrics,
        checks=_figure6_checks,
        format=figures.format_figure6,
    )
)


# ---------------------------------------------------------------------------
# Figure 7: REFab versus REFpb loss
# ---------------------------------------------------------------------------
def _figure7(context: BenchContext):
    """Figure 7: % WS loss of REFab and REFpb versus the no-refresh ideal."""
    return experiments.figure7_refab_vs_refpb_loss(
        runner=context.runner, scale=context.scale
    )


def _figure7_metrics(result) -> dict:
    return {
        f"{mechanism}_loss_pct_{density}gb": loss
        for density, losses in result.items()
        for mechanism, loss in losses.items()
    }


def _figure7_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    for density, losses in result.items():
        # Per-bank refresh always loses less than all-bank refresh.
        assert losses["refpb"] < losses["refab"]
    # Both penalties grow with density.
    assert result[32]["refab"] > result[8]["refab"]
    assert result[32]["refpb"] >= result[8]["refpb"]


register(
    BenchSpec(
        name="figure07_refab_vs_refpb",
        target=_figure7,
        metrics=_figure7_metrics,
        checks=_figure7_checks,
        format=figures.format_figure7,
    )
)


# ---------------------------------------------------------------------------
# Figure 12: per-workload sweep
# ---------------------------------------------------------------------------
def _figure12(context: BenchContext):
    """Figure 12: per-workload WS normalized to REFab, per density."""
    return experiments.figure12_workload_sweep(
        runner=context.runner, scale=context.scale
    )


def _figure12_metrics(sweep) -> dict:
    metrics = {}
    for density, per_workload in sweep.items():
        for mechanism in ("refpb", "dsarp"):
            values = [norms[mechanism] for norms in per_workload.values()]
            metrics[f"{mechanism}_gmean_norm_{density}gb"] = geometric_mean(values)
    return metrics


def _figure12_checks(sweep, context: BenchContext) -> None:
    if not _full_window(context):
        return
    for density, per_workload in sweep.items():
        dsarp = geometric_mean([norms["dsarp"] for norms in per_workload.values()])
        refpb = geometric_mean([norms["refpb"] for norms in per_workload.values()])
        # DSARP improves over REFab on average, and beats REFpb on average.
        assert dsarp > 1.0
        assert dsarp >= refpb
    # The benefit of DSARP over REFab grows with density (the headline trend).
    dsarp_by_density = {
        density: geometric_mean([n["dsarp"] for n in per_workload.values()])
        for density, per_workload in sweep.items()
    }
    assert dsarp_by_density[32] > dsarp_by_density[8]


register(
    BenchSpec(
        name="figure12_workload_sweep",
        target=_figure12,
        metrics=_figure12_metrics,
        checks=_figure12_checks,
        format=figures.format_figure12,
    )
)


# ---------------------------------------------------------------------------
# Figure 13: all mechanisms
# ---------------------------------------------------------------------------
def _figure13(context: BenchContext):
    """Figure 13: average % WS improvement over REFab for every mechanism."""
    return experiments.figure13_all_mechanisms(
        runner=context.runner, scale=context.scale
    )


def _figure13_metrics(result) -> dict:
    return {
        f"{mechanism}_improvement_pct_{density}gb": value
        for density, improvements in result.items()
        for mechanism, value in improvements.items()
    }


def _figure13_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    for density, improvements in result.items():
        # The ideal no-refresh system bounds everything (within noise).
        for mechanism, value in improvements.items():
            assert value <= improvements["none"] + 2.0, (density, mechanism)
        # DSARP improves over REFab and over plain per-bank refresh.
        assert improvements["dsarp"] > 0
        assert improvements["dsarp"] >= improvements["refpb"] - 0.5
        # Elastic refresh gives little benefit over REFab (paper: ~1.8 %).
        assert improvements["elastic"] < improvements["dsarp"]
    # Benefits grow with density.
    assert result[32]["dsarp"] > result[8]["dsarp"]
    assert result[32]["none"] > result[8]["none"]


register(
    BenchSpec(
        name="figure13_all_mechanisms",
        target=_figure13,
        metrics=_figure13_metrics,
        checks=_figure13_checks,
        format=figures.format_figure13,
    )
)


# ---------------------------------------------------------------------------
# Figure 14: energy per access
# ---------------------------------------------------------------------------
def _figure14(context: BenchContext):
    """Figure 14: energy per memory access for every refresh mechanism."""
    return experiments.figure14_energy_per_access(
        runner=context.runner, scale=context.scale
    )


def _figure14_metrics(result) -> dict:
    metrics = {}
    for density, energies in result.items():
        metrics[f"dsarp_saving_vs_refab_{density}gb"] = (
            1.0 - energies["dsarp"] / energies["refab"]
        )
    return metrics


def _figure14_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    for density, energies in result.items():
        # Refresh costs energy: the ideal no-refresh system is cheapest.
        assert energies["none"] <= energies["refab"]
        # DSARP reduces energy per access relative to all-bank refresh.
        assert energies["dsarp"] < energies["refab"]
    # The energy penalty of REFab grows with density, so DSARP's relative
    # saving grows too (paper: 3.0 % -> 9.0 %).
    saving_8 = 1 - result[8]["dsarp"] / result[8]["refab"]
    saving_32 = 1 - result[32]["dsarp"] / result[32]["refab"]
    assert saving_32 > saving_8


register(
    BenchSpec(
        name="figure14_energy",
        target=_figure14,
        metrics=_figure14_metrics,
        checks=_figure14_checks,
        format=figures.format_figure14,
    )
)


# ---------------------------------------------------------------------------
# Figure 15: memory-intensity sensitivity
# ---------------------------------------------------------------------------
def _figure15(context: BenchContext):
    """Figure 15: DSARP improvement versus memory-intensity category."""
    return experiments.figure15_memory_intensity(
        runner=context.runner, scale=context.scale
    )


def _figure15_metrics(result) -> dict:
    return {
        f"vs_refab_pct_cat{category}_{density}gb": values["vs_refab"]
        for category, by_density in result.items()
        for density, values in by_density.items()
    }


def _figure15_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    # DSARP's gain over REFab for memory-intensive workloads exceeds the
    # gain for non-intensive workloads at the highest density.
    assert result[100][32]["vs_refab"] > result[0][32]["vs_refab"]
    # And the intensive-workload gain grows with density.
    assert result[100][32]["vs_refab"] > result[100][8]["vs_refab"]


register(
    BenchSpec(
        name="figure15_memory_intensity",
        target=_figure15,
        metrics=_figure15_metrics,
        checks=_figure15_checks,
        format=figures.format_figure15,
    )
)


# ---------------------------------------------------------------------------
# Figure 16: DDR4 fine-granularity refresh
# ---------------------------------------------------------------------------
def _figure16(context: BenchContext):
    """Figure 16: FGR / adaptive refresh / DSARP normalized to REFab."""
    return experiments.figure16_fgr_comparison(
        runner=context.runner, scale=context.scale
    )


def _figure16_metrics(result) -> dict:
    return {
        f"{mechanism}_norm_{density}gb": value
        for density, normalized in result.items()
        for mechanism, value in normalized.items()
    }


def _figure16_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    for density, normalized in result.items():
        # Fine-granularity refresh at 4x rate is worse than plain REFab.
        assert normalized["fgr4x"] < 1.0
        # 4x is worse than 2x (its aggregate refresh overhead is larger).
        assert normalized["fgr4x"] <= normalized["fgr2x"] + 0.02
        # DSARP beats REFab, FGR and AR.
        assert normalized["dsarp"] > 1.0
        assert normalized["dsarp"] > normalized["fgr2x"]
        assert normalized["dsarp"] > normalized["ar"]


register(
    BenchSpec(
        name="figure16_fgr",
        target=_figure16,
        metrics=_figure16_metrics,
        checks=_figure16_checks,
        format=figures.format_figure16,
    )
)


# ---------------------------------------------------------------------------
# Table 2: improvement summary (the paper's headline numbers)
# ---------------------------------------------------------------------------
def _table2(context: BenchContext):
    """Table 2: max and gmean WS improvement over REFpb and REFab."""
    return experiments.table2_improvement_summary(
        runner=context.runner, scale=context.scale
    )


def _table2_metrics(summary) -> dict:
    # The DSARP rows are the paper's headline: 3.3 / 7.2 / 15.2 % gmean
    # over REFpb at 8 / 16 / 32 Gb.
    return {
        f"{mechanism}_{kind}_{density}gb": value
        for density, mechanisms in summary.items()
        for mechanism, entry in mechanisms.items()
        for kind, value in entry.items()
    }


def _table2_checks(summary, context: BenchContext) -> None:
    if not _full_window(context):
        return
    for density, mechanisms in summary.items():
        for name, entry in mechanisms.items():
            # Max improvements bound the gmean improvements.
            assert entry["max_refab"] >= entry["gmean_refab"]
            assert entry["max_refpb"] >= entry["gmean_refpb"]
        # DSARP improves over REFab on average at every density.
        assert mechanisms["dsarp"]["gmean_refab"] > 0
    # DSARP's benefit over REFab grows with DRAM density.
    assert summary[32]["dsarp"]["gmean_refab"] > summary[8]["dsarp"]["gmean_refab"]


register(
    BenchSpec(
        name="table2_summary",
        target=_table2,
        metrics=_table2_metrics,
        checks=_table2_checks,
        format=tables.format_table2,
    )
)


# ---------------------------------------------------------------------------
# Table 3: core-count sensitivity
# ---------------------------------------------------------------------------
def _table3(context: BenchContext):
    """Table 3: DSARP benefit on 2-, 4- and 8-core systems."""
    return experiments.table3_core_count(runner=context.runner, scale=context.scale)


def _table3_metrics(result) -> dict:
    return {
        f"{kind}_{cores}core": value
        for cores, entry in result.items()
        for kind, value in entry.items()
    }


def _table3_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    for cores, entry in result.items():
        # DSARP never degrades weighted speedup relative to REFab.
        assert entry["weighted_speedup_improvement"] > 0
        assert entry["energy_per_access_reduction"] > 0
    # The benefit does not shrink as core count (memory pressure) grows.
    assert (
        result[8]["weighted_speedup_improvement"]
        >= result[2]["weighted_speedup_improvement"] * 0.5
    )


register(
    BenchSpec(
        name="table3_core_count",
        target=_table3,
        metrics=_table3_metrics,
        checks=_table3_checks,
        format=tables.format_table3,
    )
)


# ---------------------------------------------------------------------------
# Table 4: tFAW sensitivity
# ---------------------------------------------------------------------------
def _table4(context: BenchContext):
    """Table 4: SARPpb benefit versus the tFAW activation window."""
    return experiments.table4_tfaw_sensitivity(
        runner=context.runner, scale=context.scale
    )


def _table4_metrics(result) -> dict:
    return {f"improvement_pct_tfaw{tfaw}": value for tfaw, value in result.items()}


def _table4_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    tfaws = sorted(result)
    # SARPpb improves over REFpb at the default tFAW of 20 cycles.
    assert result[20] > 0
    # Tightening tFAW (larger values) never increases SARPpb's benefit
    # beyond what the loosest setting achieves.
    assert max(result.values()) >= result[tfaws[-1]]


register(
    BenchSpec(
        name="table4_tfaw",
        target=_table4,
        metrics=_table4_metrics,
        checks=_table4_checks,
        format=tables.format_table4,
    )
)


# ---------------------------------------------------------------------------
# Table 5: subarray-count sensitivity
# ---------------------------------------------------------------------------
def _table5(context: BenchContext):
    """Table 5: SARPpb benefit versus subarrays per bank."""
    return experiments.table5_subarray_sensitivity(
        runner=context.runner, scale=context.scale
    )


def _table5_metrics(result) -> dict:
    return {
        f"improvement_pct_{count}subarrays": value for count, value in result.items()
    }


def _table5_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    # One subarray per bank means SARP cannot parallelize anything.
    assert abs(result[1]) < 1.5
    # More subarrays reduce the probability of a subarray conflict, so the
    # benefit at 64 subarrays exceeds the benefit at 1.
    assert result[64] > result[1]
    # And the large-subarray-count regime beats the single-subarray case by
    # a clear margin (the paper's trend).
    assert max(result[c] for c in (16, 32, 64)) > result[2]


register(
    BenchSpec(
        name="table5_subarrays",
        target=_table5,
        metrics=_table5_metrics,
        checks=_table5_checks,
        format=tables.format_table5,
    )
)


# ---------------------------------------------------------------------------
# Table 6: 64 ms retention time
# ---------------------------------------------------------------------------
def _table6(context: BenchContext):
    """Table 6: DSARP improvement with a 64 ms retention time."""
    return experiments.table6_refresh_interval(
        runner=context.runner, scale=context.scale
    )


def _table6_metrics(result) -> dict:
    return {
        f"{kind}_{density}gb": value
        for density, entry in result.items()
        for kind, value in entry.items()
    }


def _table6_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    for density, entry in result.items():
        assert entry["gmean_refab"] > -1.0  # never a real regression
    # The improvement over REFab grows with density even at 64 ms.
    assert result[32]["gmean_refab"] > result[8]["gmean_refab"]
    # And DSARP still improves over REFab at the highest density.
    assert result[32]["gmean_refab"] > 0


register(
    BenchSpec(
        name="table6_refresh_interval",
        target=_table6,
        metrics=_table6_metrics,
        checks=_table6_checks,
        format=tables.format_table6,
    )
)


# ---------------------------------------------------------------------------
# Ablations: DARP components, DSARP additivity
# ---------------------------------------------------------------------------
def _darp_components(context: BenchContext):
    """Section 6.1.2: out-of-order refresh alone versus full DARP."""
    return experiments.darp_component_breakdown(
        runner=context.runner, scale=context.scale
    )


def _darp_components_metrics(result) -> dict:
    return {
        f"{kind}_pct_{density}gb": value
        for density, entry in result.items()
        for kind, value in entry.items()
    }


def _darp_components_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    for density, entry in result.items():
        # Out-of-order refresh alone already improves over REFab.
        assert entry["out_of_order_only"] > 0
        # Full DARP is at least comparable to its out-of-order component
        # (write-refresh parallelization should not hurt).
        assert entry["darp"] >= entry["out_of_order_only"] - 1.5


def _darp_components_format(result) -> str:
    rows = [
        [f"{density}Gb", f"{entry['out_of_order_only']:+.1f}", f"{entry['darp']:+.1f}"]
        for density, entry in sorted(result.items())
    ]
    return tables.format_table(
        ["Density", "Out-of-order only (% over REFab)", "Full DARP (% over REFab)"],
        rows,
        title="Section 6.1.2: DARP component breakdown",
    )


register(
    BenchSpec(
        name="ablation_darp_components",
        target=_darp_components,
        metrics=_darp_components_metrics,
        checks=_darp_components_checks,
        format=_darp_components_format,
    )
)


def _dsarp_additivity(context: BenchContext):
    """Ablation: DARP + SARPpb additivity in DSARP at 32 Gb."""
    return experiments.dsarp_additivity(runner=context.runner, scale=context.scale)


def _dsarp_additivity_metrics(result) -> dict:
    return {f"{name}_improvement_pct": value for name, value in result.items()}


def _dsarp_additivity_checks(result, context: BenchContext) -> None:
    if not _full_window(context):
        return
    # Every component improves over REFab at 32 Gb.
    assert result["darp"] > 0
    assert result["sarppb"] > 0
    # The combination is at least as good as DARP alone (within noise) and
    # improves on REFab by more than either component degrades.
    assert result["dsarp"] >= result["darp"] - 1.0
    assert result["dsarp"] > 0


def _dsarp_additivity_format(result) -> str:
    rows = [[name, f"{value:+.2f}"] for name, value in result.items()]
    return tables.format_table(
        ["Mechanism", "WS improvement over REFab (%)"],
        rows,
        title="DSARP additivity ablation (32 Gb)",
    )


register(
    BenchSpec(
        name="ablation_dsarp_additivity",
        target=_dsarp_additivity,
        metrics=_dsarp_additivity_metrics,
        checks=_dsarp_additivity_checks,
        format=_dsarp_additivity_format,
    )
)


# ---------------------------------------------------------------------------
# Engine scaling: serial versus parallel fan-out
# ---------------------------------------------------------------------------
ENGINE_SCALING_SCALE = experiments.ExperimentScale(
    workloads_per_category=1, densities=(32,)
)


ENGINE_SCALING_WORKERS = (1, 2, 4)


def _spawn_loopback_worker(port: int, workers: int) -> subprocess.Popen:
    """Start a ``repro worker`` subprocess against a loopback coordinator."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else os.pathsep.join([src_dir, existing])
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--workers",
            str(workers),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _engine_scaling(context: BenchContext):
    """Engine scaling: a figure12-style sweep, serial versus 1/2/4 workers.

    The parallel legs exercise the work-stealing shard dispatcher end to
    end: jobs are chunked into cost-balanced shards and idle workers steal
    shards planned for their peers.  Every leg uses a fresh runner with no
    store, so each worker count actually simulates the full sweep — a
    silently-cached leg would report a bogus near-infinite speedup.  The
    per-leg ``simulated`` count is asserted against the serial leg to
    guard exactly that.
    """
    available = os.cpu_count() or 1

    def sweep(executor):
        runner = ExperimentRunner(executor=executor)
        start = perf_counter()
        result = experiments.figure12_workload_sweep(
            runner=runner, scale=ENGINE_SCALING_SCALE
        )
        return result, perf_counter() - start, runner.summary()

    serial_result, serial_s, serial_summary = sweep(SerialExecutor())
    serial_simulated = serial_summary["simulated"]
    rows = []
    for workers in ENGINE_SCALING_WORKERS:
        result, parallel_s, summary = sweep(ParallelExecutor(workers=workers))
        rows.append(
            {
                "workers": workers,
                "parallel_s": parallel_s,
                "simulated": summary["simulated"],
                "shards": summary["shards"],
                "steals": summary["steals"],
                "identical": result == serial_result,
            }
        )
    # Remote loopback leg: the same sweep dispatched over the TCP
    # coordinator to one ``repro worker`` subprocess running two local
    # processes.  The worker registers before the timer starts, so the
    # leg measures shard dispatch over the wire, not interpreter boot.
    remote_executor = ParallelExecutor(
        workers=0, serve=("127.0.0.1", 0), min_workers=1
    )
    worker_proc = _spawn_loopback_worker(remote_executor.coordinator.port, 2)
    try:
        if not remote_executor.coordinator.wait_for_workers(1, 120.0):
            raise RuntimeError("loopback worker never registered")
        remote_result, remote_s, remote_summary = sweep(remote_executor)
    finally:
        remote_executor.shutdown_remote()
        worker_proc.wait(timeout=30)
    remote = {
        "parallel_s": remote_s,
        "simulated": remote_summary["simulated"],
        "identical": remote_result == serial_result,
        "remote_workers": remote_summary["remote_workers"],
        "bytes_sent": remote_summary["bytes_sent"],
        "bytes_received": remote_summary["bytes_received"],
    }
    return {
        "available_cpus": available,
        "serial_s": serial_s,
        "serial_simulated": serial_simulated,
        "rows": rows,
        "remote": remote,
    }


def _engine_scaling_metrics(payload) -> dict:
    # Parallel fan-out must never change results: gate the identity bit
    # for the in-process legs and the remote loopback leg alike.
    identical = all(row["identical"] for row in payload["rows"])
    remote = payload.get("remote")
    if remote is not None:
        identical = identical and remote["identical"]
    return {"results_identical": 1.0 if identical else 0.0}


def _engine_scaling_timings(payload) -> dict:
    timings = {
        "serial_s": payload["serial_s"],
        "available_cpus": float(payload["available_cpus"]),
    }
    for row in payload["rows"]:
        timings[f"parallel_s_{row['workers']}w"] = row["parallel_s"]
        timings[f"speedup_{row['workers']}w"] = (
            payload["serial_s"] / row["parallel_s"]
        )
    remote = payload.get("remote")
    if remote is not None:
        timings["remote_s"] = remote["parallel_s"]
        timings["speedup_remote"] = payload["serial_s"] / remote["parallel_s"]
    return timings


def _engine_scaling_checks(payload, context: BenchContext) -> None:
    assert payload["serial_simulated"] > 0, "serial leg performed no simulations"
    for row in payload["rows"]:
        assert row["identical"], (
            f"parallel fan-out at {row['workers']} workers changed results"
        )
        # Each leg must actually exercise the parallel path end to end,
        # not resolve the sweep from some cache.
        assert row["simulated"] == payload["serial_simulated"], (
            f"{row['workers']}-worker leg simulated {row['simulated']} jobs, "
            f"serial leg simulated {payload['serial_simulated']}"
        )
    if payload["available_cpus"] >= 2 and _full_window(context):
        # The sweep is embarrassingly parallel; anything below parity means
        # the fan-out machinery itself is broken (pickling storms, workers
        # running serially, ...).  Leave headroom for loaded CI machines;
        # at a reduced window the pool's startup overhead dominates and the
        # ratio measures fork cost, not the engine, so it is full-window-only
        # — and on a single-CPU machine extra workers cannot beat serial at
        # all, so the ratio says nothing about the engine there either.
        best = max(
            payload["serial_s"] / row["parallel_s"]
            for row in payload["rows"]
            if row["workers"] <= payload["available_cpus"]
        )
        assert best > 0.9
        if payload["available_cpus"] >= 4:
            # With 4 workers on >=4 CPUs the shard queue should deliver a
            # real speedup, not just parity; 1.3x leaves headroom for
            # loaded runners while still catching a serialized dispatcher.
            assert best > 1.3, f"best speedup {best:.2f}x on a multi-core host"
    for row in payload["rows"]:
        # Every parallel leg must flow through the shard planner; a
        # zero shard count means the dispatcher was bypassed.
        assert row["shards"] >= row["workers"], (
            f"{row['workers']}-worker leg planned only {row['shards']} shards"
        )
    remote = payload.get("remote")
    if remote is not None:
        assert remote["identical"], "remote loopback leg changed results"
        assert remote["simulated"] == payload["serial_simulated"], (
            f"remote leg simulated {remote['simulated']} jobs, "
            f"serial leg simulated {payload['serial_simulated']}"
        )
        assert remote["remote_workers"] >= 1, "no remote worker registered"
        assert remote["bytes_sent"] > 0 and remote["bytes_received"] > 0


def _engine_scaling_format(payload) -> str:
    lines = [
        "Engine scaling (figure12-style sweep, 1 density x 5 workloads; "
        f"{payload['available_cpus']} CPUs available; "
        "work-stealing shard dispatcher)",
        f"  serial   (1 worker):   {payload['serial_s']:8.2f} s "
        f"({payload['serial_simulated']} simulations)",
    ]
    for row in payload["rows"]:
        speedup = payload["serial_s"] / row["parallel_s"]
        shards = (
            f", {row['shards']} shards/{row['steals']} stolen"
            if "shards" in row
            else ""
        )
        lines.append(
            f"  parallel ({row['workers']} worker{'s' if row['workers'] != 1 else ''}):"
            f"  {row['parallel_s']:8.2f} s  ({speedup:4.2f}x, "
            f"{'identical' if row['identical'] else 'DIVERGED'}{shards})"
        )
    remote = payload.get("remote")
    if remote is not None:
        speedup = payload["serial_s"] / remote["parallel_s"]
        lines.append(
            f"  remote   (1 host x 2 procs): {remote['parallel_s']:6.2f} s  "
            f"({speedup:4.2f}x, "
            f"{'identical' if remote['identical'] else 'DIVERGED'}, "
            f"{remote['bytes_sent']} B out / {remote['bytes_received']} B in "
            "over loopback TCP)"
        )
    return "\n".join(lines)


register(
    BenchSpec(
        name="engine_scaling",
        target=_engine_scaling,
        metrics=_engine_scaling_metrics,
        timings=_engine_scaling_timings,
        checks=_engine_scaling_checks,
        format=_engine_scaling_format,
        # Wall-clock depends on the machine's core count and load; gate
        # loosely and rely on the timings trend instead.
        max_regression=1.0,
    )
)


# ---------------------------------------------------------------------------
# Remote dispatch: loopback TCP coordinator overhead versus in-process
# ---------------------------------------------------------------------------
REMOTE_DISPATCH_MECHANISMS = ("refab", "refpb", "darp", "dsarp")

#: Loopback framing + pickling must stay cheap relative to simulation.
REMOTE_DISPATCH_MAX_OVERHEAD = 0.15

#: Below this in-process wall clock the batch is too short for the ratio
#: to measure dispatch (fixed per-shard costs dominate); the overhead
#: gate self-skips, mirroring the window-sensitive engine-scaling gates.
REMOTE_DISPATCH_NOISE_FLOOR_S = 1.0


def _remote_dispatch_jobs(context: BenchContext) -> list:
    benchmarks = [get_benchmark("stream_copy"), get_benchmark("random_access")]
    jobs = []
    for mechanism in REMOTE_DISPATCH_MECHANISMS:
        for seed in (0, 1):
            jobs.append(
                SimulationJob(
                    config=paper_system(
                        density_gb=32, mechanism=mechanism, num_cores=2
                    ),
                    workload=make_workload(
                        benchmarks, name=f"remote_{mechanism}_{seed}", seed=seed
                    ),
                    cycles=context.cycles,
                    warmup=context.warmup,
                    seed=seed,
                )
            )
    return jobs


def _remote_dispatch(context: BenchContext):
    """Remote dispatch: the same batch in-process versus over loopback TCP.

    Eight two-core jobs (four mechanisms, two seeds) run twice through the
    same shard dispatcher: once with one in-process worker, once serve-only
    with one ``repro worker`` subprocess on loopback.  Both legs run one
    simulation at a time, so the ratio isolates what the coordinator adds —
    job pickling, length-prefixed framing, heartbeats, and result decode —
    and the check gates that tax at 15 %.  The worker registers before the
    remote timer starts, so interpreter boot is excluded by construction.
    """
    jobs = _remote_dispatch_jobs(context)

    inproc = ParallelExecutor(workers=1)
    start = perf_counter()
    inproc_results = inproc.run(jobs)
    inproc_s = perf_counter() - start

    remote = ParallelExecutor(workers=0, serve=("127.0.0.1", 0), min_workers=1)
    worker_proc = _spawn_loopback_worker(remote.coordinator.port, 1)
    try:
        if not remote.coordinator.wait_for_workers(1, 120.0):
            raise RuntimeError("loopback worker never registered")
        start = perf_counter()
        remote_results = remote.run(jobs)
        remote_s = perf_counter() - start
        stats = remote.stats
        payload = {
            "jobs": len(jobs),
            "inproc_s": inproc_s,
            "remote_s": remote_s,
            "overhead": remote_s / inproc_s - 1.0,
            "identical": [r.to_dict() for r in remote_results]
            == [r.to_dict() for r in inproc_results],
            "remote_workers": stats.remote_workers,
            "bytes_sent": stats.bytes_sent,
            "bytes_received": stats.bytes_received,
        }
    finally:
        remote.shutdown_remote()
        worker_proc.wait(timeout=30)
    return payload


def _remote_dispatch_metrics(payload) -> dict:
    return {"results_identical": 1.0 if payload["identical"] else 0.0}


def _remote_dispatch_timings(payload) -> dict:
    return {
        "inproc_s": payload["inproc_s"],
        "remote_s": payload["remote_s"],
        "overhead": payload["overhead"],
        "bytes_sent": float(payload["bytes_sent"]),
        "bytes_received": float(payload["bytes_received"]),
    }


def _remote_dispatch_checks(payload, context: BenchContext) -> None:
    assert payload["identical"], "remote dispatch changed results"
    assert payload["remote_workers"] == 1, "expected exactly one remote worker"
    assert payload["bytes_sent"] > 0 and payload["bytes_received"] > 0, (
        "no traffic crossed the loopback coordinator"
    )
    if payload["inproc_s"] >= REMOTE_DISPATCH_NOISE_FLOOR_S:
        assert payload["overhead"] <= REMOTE_DISPATCH_MAX_OVERHEAD, (
            f"loopback dispatch overhead {payload['overhead']:.1%} exceeds "
            f"{REMOTE_DISPATCH_MAX_OVERHEAD:.0%}"
        )


def _remote_dispatch_format(payload) -> str:
    return (
        f"Remote dispatch overhead ({payload['jobs']} jobs; loopback TCP "
        "coordinator + 1 worker vs in-process dispatcher)\n"
        f"  in-process (1 worker): {payload['inproc_s']:8.2f} s\n"
        f"  remote     (1 worker): {payload['remote_s']:8.2f} s  "
        f"({payload['overhead']:+.1%} overhead, "
        f"{'identical' if payload['identical'] else 'DIVERGED'}; "
        f"{payload['bytes_sent']} B out / {payload['bytes_received']} B in)"
    )


register(
    BenchSpec(
        name="remote_dispatch",
        target=_remote_dispatch,
        metrics=_remote_dispatch_metrics,
        timings=_remote_dispatch_timings,
        checks=_remote_dispatch_checks,
        format=_remote_dispatch_format,
        # Wall-clock spans two full legs and a subprocess; the real gate
        # is the 15 % overhead check, not the suite-level elapsed time.
        max_regression=1.0,
    )
)


# ---------------------------------------------------------------------------
# Trace overhead: the observability hooks must be free when disabled
# ---------------------------------------------------------------------------
def _trace_overhead(context: BenchContext):
    """Tracing on versus off on one DARP cell.

    The spec's gated wall clock is dominated by the three untraced legs,
    so the ``max_regression=0.02`` gate on this benchmark is the tentpole's
    "tracer disabled costs < 2 %" acceptance criterion: if the hooks ever
    grow a cost when off, this spec's elapsed time regresses past the gate.
    The untraced leg takes the best of three runs to keep the gated number
    out of scheduler noise.
    """
    config = paper_system(density_gb=32, mechanism="darp", num_cores=4)
    workload = make_workload_category(100, index=0, num_cores=4)

    def run(cfg):
        simulator = Simulator(cfg, workload)
        start = perf_counter()
        result = simulator.run(context.cycles, warmup=context.warmup)
        return simulator, result, perf_counter() - start

    off_times = []
    for _ in range(3):
        _, off_result, elapsed = run(config)
        off_times.append(elapsed)
    traced = config.with_obs(
        trace=True, epoch_interval=max(1, context.cycles // 8)
    )
    simulator, on_result, on_s = run(traced)
    tracer = simulator.memory.tracer
    # Count SARP_CONFLICT records by the per-cycle count riding in their
    # ``done`` slot: the event kernel coalesces the conflicts of a skipped
    # span into one record, so the *raw* record count varies with how far
    # each skip reaches while the weighted count is a deterministic
    # simulation output, identical across kernels and skip batchings.
    weighted = sum(
        record.done if record.op == "SARP_CONFLICT" else 1
        for record in tracer.records
    )
    return {
        "off_s": min(off_times),
        "on_s": on_s,
        "identical": on_result.to_dict() == off_result.to_dict(),
        "records": len(tracer.records),
        "weighted_records": weighted,
        "dropped": tracer.dropped,
        "epochs": len(simulator.epoch_samples),
    }


def _trace_overhead_metrics(payload) -> dict:
    # Weighted record/epoch counts are deterministic simulation outputs:
    # gate them.  (The raw record count is not — see the weighting in
    # ``_trace_overhead``.)
    return {
        "results_identical": 1.0 if payload["identical"] else 0.0,
        "trace_records": float(payload["weighted_records"] + payload["dropped"]),
        "epoch_samples": float(payload["epochs"]),
    }


def _trace_overhead_timings(payload) -> dict:
    return {
        "off_s": payload["off_s"],
        "on_s": payload["on_s"],
        "traced_overhead": payload["on_s"] / payload["off_s"] - 1.0,
    }


def _trace_overhead_checks(payload, context: BenchContext) -> None:
    # Observability must never perturb simulation outcomes.
    assert payload["identical"], "tracing changed the simulation result"
    # And the traced leg must have actually observed something.
    assert payload["records"] > 0
    assert payload["epochs"] > 0


def _trace_overhead_format(payload) -> str:
    overhead = payload["on_s"] / payload["off_s"] - 1.0
    return "\n".join(
        [
            "Trace overhead (one 4-core DARP cell at 32 Gb, tracing+epochs)",
            f"  tracing off (best of 3):  {payload['off_s']:8.2f} s",
            f"  tracing on:               {payload['on_s']:8.2f} s "
            f"({payload['records']} records, {payload['epochs']} epochs)",
            f"  traced overhead:          {overhead:8.1%}",
            "  (disabled-hook overhead is gated by this spec's wall-clock "
            "regression gate: max_regression=0.02)",
        ]
    )


register(
    BenchSpec(
        name="trace_overhead",
        target=_trace_overhead,
        metrics=_trace_overhead_metrics,
        timings=_trace_overhead_timings,
        checks=_trace_overhead_checks,
        format=_trace_overhead_format,
        # This is the tentpole's overhead acceptance gate: the untraced
        # legs dominate the wall clock, so a >2 % regression here means
        # the disabled hooks are no longer free.
        max_regression=0.02,
    )
)


# ---------------------------------------------------------------------------
# Sweep caching: cold versus warm store
# ---------------------------------------------------------------------------
SWEEP_CACHE_SPEC = SweepSpec(
    name="bench_sweep_cache",
    description="tFAW x subarrays-per-bank grid for the cache benchmark",
    axes=(Axis("tfaw", (10, 20, 30)), Axis("subarrays_per_bank", (4, 8))),
    mechanisms=("refpb", "sarppb"),
    baseline="refpb",
    base={"density_gb": 32},
    workloads=WorkloadSpec(kind="intensive", count=2, num_cores=4),
)


def _sweep_cache(context: BenchContext):
    """Sweep caching: cold versus warm-store wall time for a design sweep."""

    def sweep(store_path):
        runner = ExperimentRunner(store=JsonlStore(store_path))
        start = perf_counter()
        result = run_sweep(SWEEP_CACHE_SPEC, runner=runner)
        elapsed = perf_counter() - start
        return [cell.to_dict() for cell in result.cells], runner.summary(), elapsed

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
        store_path = Path(scratch) / "sweep_cache.jsonl"
        cold_cells, cold_summary, cold_s = sweep(store_path)
        warm_cells, warm_summary, warm_s = sweep(store_path)
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_summary": cold_summary,
        "warm_summary": warm_summary,
        "identical": warm_cells == cold_cells,
    }


def _sweep_cache_metrics(payload) -> dict:
    # Deterministic plan sizes plus the warm-run invariant (zero sims).
    return {
        "results_identical": 1.0 if payload["identical"] else 0.0,
        "cold_simulated": float(payload["cold_summary"]["simulated"]),
        "warm_simulated": float(payload["warm_summary"]["simulated"]),
    }


def _sweep_cache_timings(payload) -> dict:
    # Clamp the warm denominator so the speedup stays JSON-finite even if
    # the warm leg ever rounds to a zero wall time.
    warm = max(payload["warm_s"], 1e-9)
    return {
        "cold_s": payload["cold_s"],
        "warm_s": payload["warm_s"],
        "speedup": payload["cold_s"] / warm,
    }


def _sweep_cache_checks(payload, context: BenchContext) -> None:
    # The warm re-sweep must be pure store hits with identical results.
    assert payload["cold_summary"]["simulated"] > 0
    assert payload["warm_summary"]["simulated"] == 0
    assert payload["identical"]
    # A warm re-sweep that is not dramatically faster than the cold run
    # means store resolution is broken somewhere.
    assert payload["warm_s"] < payload["cold_s"]


def _sweep_cache_format(payload) -> str:
    timings = _sweep_cache_timings(payload)
    return "\n".join(
        [
            "Sweep store caching (6 points x 2 workloads x 2 mechanisms)",
            f"  cold (all simulated):     {payload['cold_s']:8.2f} s "
            f"({payload['cold_summary']['simulated']} simulations)",
            f"  warm (all store hits):    {payload['warm_s']:8.2f} s "
            f"({payload['warm_summary']['store_hits']} store hits)",
            f"  re-sweep speedup:         {timings['speedup']:8.1f} x",
        ]
    )


register(
    BenchSpec(
        name="sweep_cache",
        target=_sweep_cache,
        metrics=_sweep_cache_metrics,
        timings=_sweep_cache_timings,
        checks=_sweep_cache_checks,
        format=_sweep_cache_format,
        # The warm leg is sub-millisecond file reads; its ratio to the
        # cold leg is what matters, so gate the wall clock loosely.
        max_regression=1.0,
    )
)


# ---------------------------------------------------------------------------
# Kernel speedup: event versus cycle kernel
# ---------------------------------------------------------------------------
DENSITY_GB = 32

#: The most latency-sensitive intensive benchmarks (high dependent-load
#: fractions): the alone-run leg of the Table 2 pipeline.
ALONE_BENCHMARKS = ("mcf_like", "random_access", "tpcc_like")

#: A fully dependent pointer chase: every load waits for the previous one,
#: so the window is dominated by exactly the stalls the paper studies —
#: cores waiting out DRAM latency (and, at 32 Gb, tRFC-long refreshes)
#: while no command can legally issue.  This is the headline cell: the
#: purest latency-bound workload the Table 2 system can run.
POINTER_CHASE = Benchmark(
    "pointer_chase",
    "random",
    256 * MB,
    memory_fraction=0.02,
    write_fraction=0.20,
    intensive=True,
    dependent_fraction=1.0,
)


def _timed_pair(
    config, workload, cycles: int, warmup: int
) -> tuple[float, float, bool]:
    """Run (config, workload) under both kernels; returns wall times + identity.

    Results must be bit-identical — this benchmark doubles as an
    end-to-end differential check at the measured window length.
    """
    times = {}
    results = {}
    for kernel in ("cycle", "event"):
        simulator = Simulator(config.with_kernel(kernel), workload)
        start = perf_counter()
        results[kernel] = simulator.run(cycles, warmup=warmup)
        times[kernel] = perf_counter() - start
    identical = results["event"].to_dict() == results["cycle"].to_dict()
    return times["cycle"], times["event"], identical


def _kernel_speedup_at(cycles: int, warmup: int) -> dict:
    rows = []
    identical = True

    def cell(label, config, workload):
        nonlocal identical
        cycle_s, event_s, same = _timed_pair(config, workload, cycles, warmup)
        identical = identical and same
        rows.append({"label": label, "cycle_s": cycle_s, "event_s": event_s})
        return cycle_s, event_s

    # -- headline: latency-bound pointer chase ------------------------------
    config = paper_system(density_gb=DENSITY_GB, mechanism="refab", num_cores=1)
    workload = make_workload([POINTER_CHASE], name="alone_pointer_chase", seed=0)
    head_cycle, head_event = cell("pointer chase (headline) refab", config, workload)

    # -- latency-bound alone runs (Table 2's normalization leg) ------------
    alone_cycle = alone_event = 0.0
    for name in ALONE_BENCHMARKS:
        config = paper_system(density_gb=DENSITY_GB, mechanism="refab", num_cores=1)
        workload = make_workload([get_benchmark(name)], name=f"alone_{name}", seed=0)
        cycle_s, event_s = cell(f"alone {name} refab", config, workload)
        alone_cycle += cycle_s
        alone_event += event_s

    # -- 8-core intensive mix cells (context rows) --------------------------
    for mechanism in ("refab", "dsarp"):
        config = paper_system(density_gb=DENSITY_GB, mechanism=mechanism, num_cores=8)
        workload = make_workload_category(100, index=0, num_cores=8)
        cell(f"8-core intensive {mechanism}", config, workload)

    return {
        "cycles": cycles,
        "warmup": warmup,
        "rows": rows,
        "identical": identical,
        "headline": head_cycle / head_event,
        "alone_speedup": alone_cycle / alone_event,
    }


def _kernel_speedup(context: BenchContext):
    """Cycle- versus event-kernel wall time on the Table 2 configuration."""
    return _kernel_speedup_at(context.cycles, context.warmup)


def _kernel_speedup_full(context: BenchContext):
    """Kernel speedup at the paper's full measured window, with the 3x gate."""
    return _kernel_speedup_at(DEFAULT_CYCLES, DEFAULT_WARMUP)


def _kernel_speedup_metrics(payload) -> dict:
    return {"results_identical": 1.0 if payload["identical"] else 0.0}


def _kernel_speedup_timings(payload) -> dict:
    timings = {
        "headline_speedup": payload["headline"],
        "alone_speedup": payload["alone_speedup"],
    }
    for row in payload["rows"]:
        key = row["label"].replace(" ", "_").replace("(", "").replace(")", "")
        timings[f"{key}_cycle_s"] = row["cycle_s"]
        timings[f"{key}_event_s"] = row["event_s"]
    return timings


def _kernel_speedup_checks(payload, context: BenchContext) -> None:
    assert payload["identical"], "event and cycle kernels diverged"
    # The 3x acceptance gate only holds at the paper's full window: on a
    # reduced REPRO_CYCLES window the skippable idle stretches shrink and
    # the ratio is mostly startup noise.
    if payload["cycles"] >= DEFAULT_CYCLES:
        assert payload["headline"] >= 3.0, (
            f"expected >= 3x on the latency-bound cell, got {payload['headline']:.2f}x"
        )


def _kernel_speedup_format(payload) -> str:
    lines = [
        f"Event-kernel speedup on the Table 2 configuration "
        f"({DENSITY_GB} Gb, {payload['cycles']} + {payload['warmup']} warmup cycles; "
        f"results verified bit-identical per cell)",
    ]
    for row in payload["rows"]:
        speedup = row["cycle_s"] / row["event_s"]
        lines.append(
            f"  {row['label']:30s}: cycle {row['cycle_s']:6.2f} s -> "
            f"event {row['event_s']:6.2f} s  ({speedup:4.2f}x)"
        )
    lines.append(f"  alone leg total speedup: {payload['alone_speedup']:4.2f}x")
    lines.append(
        f"  headline (pointer chase, latency-bound): {payload['headline']:4.2f}x"
    )
    return "\n".join(lines)


register(
    BenchSpec(
        name="kernel_speedup",
        target=_kernel_speedup,
        metrics=_kernel_speedup_metrics,
        timings=_kernel_speedup_timings,
        checks=_kernel_speedup_checks,
        format=_kernel_speedup_format,
        # Runs both kernels back to back; the interesting number is their
        # ratio (in timings), so allow the absolute wall more slack.
        max_regression=0.5,
    )
)

register(
    BenchSpec(
        name="kernel_speedup_full",
        target=_kernel_speedup_full,
        tier="full",
        metrics=_kernel_speedup_metrics,
        timings=_kernel_speedup_timings,
        checks=_kernel_speedup_checks,
        format=_kernel_speedup_format,
        artifact="kernel_speedup",
        max_regression=0.5,
    )
)


# ---------------------------------------------------------------------------
# 8-core intensive hot path: event versus cycle kernel on the paper cells
# ---------------------------------------------------------------------------
#: Best-of-N paired runs per cell.  Each ``_timed_pair`` call times both
#: kernels back to back, so the per-pair ratio is robust against slow
#: machine-wide drift; taking the best pair filters transient load spikes.
INTENSIVE_8CORE_REPS = 3

#: Enforced event-kernel speedup floors at the full measured window.  The
#: ceilings here are structural, not tuning slack: the event kernel must
#: stay bit-identical to the reference, and on the 8-core intensive mixes
#: most wall time is work both kernels share (command legality probes,
#: queue maintenance, DRAM state updates).  DSARP is the extreme case —
#: its idle-bank refresh draws consume RNG state every cycle, so the event
#: kernel must replay every draw tick and can only skip the fully
#: quiescent spans, capping its ratio near 2.5x on this machine (REFab,
#: with no per-cycle randomness, reaches ~2.9x).  The floors below are the
#: levels both cells clear with wide margin across noisy runs; the actual
#: measured ratios are recorded in the run's timings and tracked by the
#: trend history.
INTENSIVE_8CORE_FLOORS = {"refab": 1.5, "dsarp": 1.3}


def _intensive_8core_at(cycles: int, warmup: int, reps: int) -> dict:
    rows = []
    identical = True
    for mechanism in ("refab", "dsarp"):
        config = paper_system(
            density_gb=DENSITY_GB, mechanism=mechanism, num_cores=8
        )
        workload = make_workload_category(100, index=0, num_cores=8)
        best = None
        for _ in range(reps):
            cycle_s, event_s, same = _timed_pair(config, workload, cycles, warmup)
            identical = identical and same
            if best is None or cycle_s / event_s > best[0] / best[1]:
                best = (cycle_s, event_s)
        rows.append(
            {
                "mechanism": mechanism,
                "cycle_s": best[0],
                "event_s": best[1],
                "speedup": best[0] / best[1],
            }
        )
    return {
        "cycles": cycles,
        "warmup": warmup,
        "reps": reps,
        "rows": rows,
        "identical": identical,
    }


def _intensive_8core(context: BenchContext):
    """Event-vs-cycle kernel on the 8-core intensive REFab/DSARP cells."""
    reps = INTENSIVE_8CORE_REPS if _full_window(context) else 1
    return _intensive_8core_at(context.cycles, context.warmup, reps)


def _intensive_8core_full(context: BenchContext):
    """The 8-core hot-path gate at the paper's full measured window."""
    return _intensive_8core_at(DEFAULT_CYCLES, DEFAULT_WARMUP, INTENSIVE_8CORE_REPS)


def _intensive_8core_metrics(payload) -> dict:
    return {"results_identical": 1.0 if payload["identical"] else 0.0}


def _intensive_8core_timings(payload) -> dict:
    timings = {}
    for row in payload["rows"]:
        timings[f"{row['mechanism']}_cycle_s"] = row["cycle_s"]
        timings[f"{row['mechanism']}_event_s"] = row["event_s"]
        timings[f"{row['mechanism']}_speedup"] = row["speedup"]
    return timings


def _intensive_8core_checks(payload, context: BenchContext) -> None:
    assert payload["identical"], "event and cycle kernels diverged"
    # Like the kernel_speedup gate, the speedup floors only hold at the
    # paper's full window — a reduced REPRO_CYCLES window is dominated by
    # warmup transients with few skippable idle stretches.
    if payload["cycles"] >= DEFAULT_CYCLES:
        for row in payload["rows"]:
            floor = INTENSIVE_8CORE_FLOORS[row["mechanism"]]
            assert row["speedup"] >= floor, (
                f"8-core intensive {row['mechanism']}: expected >= {floor}x "
                f"event-kernel speedup, got {row['speedup']:.2f}x"
            )


def _intensive_8core_format(payload) -> str:
    lines = [
        f"Event-kernel speedup on the 8-core intensive cells "
        f"({DENSITY_GB} Gb, {payload['cycles']} + {payload['warmup']} warmup "
        f"cycles, best of {payload['reps']} paired runs; results verified "
        f"bit-identical per run)",
    ]
    for row in payload["rows"]:
        floor = INTENSIVE_8CORE_FLOORS[row["mechanism"]]
        lines.append(
            f"  8-core intensive {row['mechanism']:6s}: "
            f"cycle {row['cycle_s']:6.2f} s -> event {row['event_s']:6.2f} s  "
            f"({row['speedup']:4.2f}x, floor {floor}x)"
        )
    lines.append(
        "  DSARP's ratio is capped by its per-cycle refresh draws (the event"
    )
    lines.append(
        "  kernel replays them for bit-identity); see README 'Hot path'."
    )
    return "\n".join(lines)


register(
    BenchSpec(
        name="intensive_8core",
        target=_intensive_8core,
        metrics=_intensive_8core_metrics,
        timings=_intensive_8core_timings,
        checks=_intensive_8core_checks,
        format=_intensive_8core_format,
        # Paired-kernel wall time; the ratio in timings is the signal.
        max_regression=0.5,
    )
)

register(
    BenchSpec(
        name="intensive_8core_full",
        target=_intensive_8core_full,
        tier="full",
        metrics=_intensive_8core_metrics,
        timings=_intensive_8core_timings,
        checks=_intensive_8core_checks,
        format=_intensive_8core_format,
        artifact="intensive_8core",
        max_regression=0.5,
    )
)


# ---------------------------------------------------------------------------
# Scheduler-policy matrix: every registered policy, both kernels, diffed
# ---------------------------------------------------------------------------
def _scheduler_matrix(context: BenchContext):
    """Every scheduler x page-policy cell run on both kernels and diffed."""
    from repro.controller.policies import scheduler_names

    workload = make_workload_category(100, index=0, num_cores=2)
    rows = []
    for scheduler in scheduler_names():
        for page_policy in ("closed", "open"):
            base = (
                paper_system(density_gb=8, mechanism="refab", num_cores=2)
                .with_scheduler(scheduler)
                .with_page_policy(page_policy)
            )
            results = {}
            for kernel in ("cycle", "event"):
                simulator = Simulator(base.with_kernel(kernel), workload)
                results[kernel] = simulator.run(
                    context.cycles, warmup=context.warmup
                ).to_dict()
            event = results["event"]
            rows.append(
                {
                    "scheduler": scheduler,
                    "page_policy": page_policy,
                    "identical": results["event"] == results["cycle"],
                    "served_reads": event["controller_stats"]["served_reads"],
                    "average_read_latency": event["controller_stats"][
                        "average_read_latency"
                    ],
                }
            )
    return rows


def _scheduler_matrix_metrics(rows) -> dict:
    metrics = {}
    for row in rows:
        key = f"{row['scheduler']}_{row['page_policy']}".replace("-", "_")
        metrics[f"identical_{key}"] = 1.0 if row["identical"] else 0.0
        metrics[f"served_reads_{key}"] = float(row["served_reads"])
        metrics[f"avg_read_latency_{key}"] = row["average_read_latency"]
    return metrics


def _scheduler_matrix_checks(rows, context: BenchContext) -> None:
    # Kernel identity is window-insensitive: it must hold for every policy
    # cell at any REPRO_CYCLES, so the differential guarantee the default
    # scheduler enjoys extends to the whole registry.
    for row in rows:
        assert row["identical"], (
            f"kernels diverged under scheduler={row['scheduler']!r}, "
            f"page_policy={row['page_policy']!r}"
        )


def _scheduler_matrix_format(rows) -> str:
    lines = [
        "Scheduler-policy matrix (event vs cycle kernel, per-cell diff):",
        f"  {'scheduler':12s} {'page':8s} {'identical':>9s} "
        f"{'reads':>8s} {'avg read lat':>13s}",
    ]
    for row in rows:
        lines.append(
            f"  {row['scheduler']:12s} {row['page_policy']:8s} "
            f"{'yes' if row['identical'] else 'NO':>9s} "
            f"{row['served_reads']:8.0f} {row['average_read_latency']:13.2f}"
        )
    return "\n".join(lines)


register(
    BenchSpec(
        name="scheduler_matrix",
        target=_scheduler_matrix,
        metrics=_scheduler_matrix_metrics,
        checks=_scheduler_matrix_checks,
        format=_scheduler_matrix_format,
        # Twelve short simulations back to back; absolute wall time is the
        # least interesting number here, so allow extra slack.
        max_regression=0.5,
    )
)
