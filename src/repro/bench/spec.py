"""Declarative benchmark specifications and their registry.

A :class:`BenchSpec` turns one performance benchmark into data: a name, a
tier (``quick`` benchmarks respect the ``REPRO_CYCLES`` window and are
cheap enough for CI; ``full`` benchmarks pin the paper's full measured
window), the target callable that produces the benchmark's payload, and
the extractors that reduce that payload to machine-readable numbers:

* ``metrics``  — deterministic *fidelity* numbers (paper results such as
  DSARP's gmean WS improvement).  ``repro bench compare`` fails on any
  drift in these, the same way the differential suite gates the kernels.
* ``timings``  — wall-clock-derived numbers (speedups, cache ratios)
  that are recorded for trend analysis but never gated, because they
  vary with the machine.
* ``checks``   — the benchmark's own assertions (the paper's trends);
  a failing check marks the benchmark ``checks_passed: false`` and makes
  ``repro bench run`` exit non-zero.

Specs are registered in a process-wide registry; the standard suite in
:mod:`repro.bench.suite` registers one spec per ``benchmarks/bench_*.py``
script, and those scripts are thin shims over the registry so
pytest-benchmark invocation keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.bench.run import BenchContext

#: Benchmark tiers, cheapest first.  ``repro bench run --tier quick`` runs
#: the quick specs only; ``--tier full`` runs every registered spec.
TIERS: tuple[str, ...] = ("quick", "full")


class BenchError(ValueError):
    """A benchmark spec or result document is malformed."""


@dataclass(frozen=True)
class BenchSpec:
    """One registered performance benchmark.

    Parameters
    ----------
    name:
        Registry key; also names the JSON record and (by default) the
        human-readable text artifact.
    target:
        Callable receiving a :class:`~repro.bench.run.BenchContext` and
        returning the benchmark's payload.  The harness times this call.
    tier:
        ``"quick"`` or ``"full"`` (see :data:`TIERS`).
    metrics:
        Optional ``payload -> dict[str, float]`` extractor of the gated
        fidelity numbers.
    timings:
        Optional ``payload -> dict[str, float]`` extractor of ungated
        wall-clock-derived numbers.
    checks:
        Optional ``payload, context -> None`` assertion hook; raises
        ``AssertionError`` when the payload violates the paper's trends.
    format:
        Optional ``payload -> str`` renderer for the text artifact.
    artifact:
        Stem of the text artifact file (defaults to ``name``).
    max_regression:
        Optional per-benchmark wall-clock regression threshold (a
        fraction, e.g. ``0.5`` for 50 %) overriding the global
        ``--max-regression`` during ``repro bench compare``.  Use for
        benchmarks whose wall time is inherently noisy.
    """

    name: str
    target: Callable[["BenchContext"], object]
    tier: str = "quick"
    metrics: Optional[Callable[[object], dict]] = None
    timings: Optional[Callable[[object], dict]] = None
    checks: Optional[Callable[[object, "BenchContext"], None]] = None
    format: Optional[Callable[[object], str]] = None
    artifact: Optional[str] = None
    max_regression: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise BenchError("a benchmark spec needs a non-empty name")
        if self.tier not in TIERS:
            raise BenchError(
                f"unknown tier {self.tier!r} for benchmark {self.name!r}; "
                f"expected one of {', '.join(TIERS)}"
            )
        if not callable(self.target):
            raise BenchError(f"benchmark {self.name!r} needs a callable target")
        if self.max_regression is not None and self.max_regression <= 0:
            raise BenchError(
                f"benchmark {self.name!r}: max_regression must be positive, "
                f"got {self.max_regression}"
            )
        if self.artifact is None:
            object.__setattr__(self, "artifact", self.name)

    @property
    def description(self) -> str:
        """One-line summary: the target's docstring's first line."""
        doc = self.target.__doc__ or ""
        for line in doc.splitlines():
            line = line.strip()
            if line:
                return line.rstrip(".")
        return ""


#: Process-wide spec registry, populated by :func:`register`.
_REGISTRY: dict[str, BenchSpec] = {}


def register(spec: BenchSpec) -> BenchSpec:
    """Add a spec to the registry; duplicate names are an error."""
    if spec.name in _REGISTRY:
        raise BenchError(f"benchmark {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def clear_registry() -> None:
    """Empty the registry (test isolation hook)."""
    _REGISTRY.clear()


def load_suite() -> None:
    """Ensure the standard suite's specs are registered."""
    import repro.bench.suite  # noqa: F401  (importing registers the suite)


def get_spec(name: str) -> BenchSpec:
    """Look a registered spec up by name."""
    load_suite()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise BenchError(f"unknown benchmark {name!r}; registered: {known}") from None


def all_specs(tier: Optional[str] = None) -> list[BenchSpec]:
    """Registered specs in name order, optionally filtered by tier.

    ``tier="quick"`` selects the quick specs only; ``tier="full"`` (or
    ``None``) selects everything — full is a superset of quick, so a full
    run always covers the quick suite.
    """
    load_suite()
    if tier is not None and tier not in TIERS:
        raise BenchError(f"unknown tier {tier!r}; expected one of {', '.join(TIERS)}")
    specs = sorted(_REGISTRY.values(), key=lambda spec: spec.name)
    if tier == "quick":
        specs = [spec for spec in specs if spec.tier == "quick"]
    return specs
