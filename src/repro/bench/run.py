"""Benchmark execution harness and the machine-readable result document.

:func:`run_specs` executes a list of registered :class:`BenchSpec` entries
through one shared :class:`~repro.sim.runner.ExperimentRunner` (so common
simulations — the REFab baselines, the alone runs — are performed once per
run, exactly like the old pytest-benchmark session), timing each spec and
attributing the engine's job counters to it via
:meth:`~repro.engine.executor.ExecutorStats.delta` snapshots.

The output is a schema-versioned :class:`BenchDocument` — one JSON file
per run (the repo's ``BENCH_<date>.json`` trajectory) that
``repro bench compare`` consumes:

.. code-block:: json

    {
      "schema": "repro.bench",
      "schema_version": 1,
      "created_utc": "2026-07-30T12:00:00Z",
      "tier": "quick",
      "environment": {"python": "3.12.3", "cycles": 26000, "...": "..."},
      "benchmarks": [
        {
          "name": "table2_summary",
          "tier": "quick",
          "wall_clock_s": 1.84,
          "max_regression": null,
          "checks_passed": true,
          "engine": {"jobs": 63, "simulated": 63, "store_hits": 0,
                     "memory_hits": 0, "sim_cycles_per_s": 980000.0},
          "metrics": {"dsarp_gmean_vs_refpb_32gb_pct": 15.2},
          "timings": {}
        }
      ]
    }

``metrics`` hold deterministic fidelity numbers (gated by ``compare``);
``timings`` hold machine-dependent numbers (recorded, never gated).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import traceback
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter
from typing import Optional, Sequence, TextIO

from repro.bench.spec import TIERS, BenchError, BenchSpec
from repro.sim.experiments import ExperimentScale, default_scale
from repro.sim.runner import ExperimentRunner
from repro.version import __version__

#: Identifies the document format; bumped together with SCHEMA_VERSION.
SCHEMA_NAME = "repro.bench"
#: Version of the result-document schema.  ``compare`` refuses to diff
#: documents with mismatching versions.
SCHEMA_VERSION = 1

#: Environment variable overriding where benchmark artifacts (text tables,
#: default JSON documents) are written.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def artifact_dir() -> Path:
    """Directory benchmark artifacts are written to.

    Defaults to the repo's ``results/`` directory; CI points
    :data:`BENCH_DIR_ENV` at a scratch directory so benchmark runs never
    dirty the working tree.
    """
    override = os.environ.get(BENCH_DIR_ENV)
    if override:
        return Path(override)
    # In a source / editable checkout parents[3] is the repo root; for a
    # plain `pip install .` it would be the interpreter's lib directory,
    # so fall back to the working directory there.
    root = Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").exists():
        return root / "results"
    return Path.cwd() / "results"


def default_json_path(now: Optional[datetime] = None) -> Path:
    """Default ``BENCH_<date>.json`` path inside the artifact directory."""
    stamp = (now or datetime.now(timezone.utc)).strftime("%Y-%m-%d")
    return artifact_dir() / f"BENCH_{stamp}.json"


def append_history(directory: str | os.PathLike, document: "BenchDocument") -> Path:
    """Append one snapshot to a history directory; returns the written path.

    The filename embeds the document's ``created_utc`` stamp compacted to
    ``BENCH_<YYYYmmddTHHMMSSZ>.json`` so lexicographic directory order is
    chronological — the invariant :func:`repro.report.trend.load_history`
    relies on.  Same-second collisions get a numeric suffix instead of
    overwriting an earlier snapshot.
    """
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    stamp = document.created_utc.replace("-", "").replace(":", "")
    if not stamp:
        stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    path = out / f"BENCH_{stamp}.json"
    suffix = 0
    while path.exists():
        suffix += 1
        # "_" sorts after ".", so BENCH_<stamp>_1.json stays chronologically
        # after BENCH_<stamp>.json in lexicographic directory order.
        path = out / f"BENCH_{stamp}_{suffix}.json"
    return document.save(path)


@dataclass
class BenchContext:
    """What a benchmark target gets to run with.

    The shared ``runner`` carries the engine stack (executor, persistent
    store, progress callback) and the in-memory result cache that lets
    benchmarks share common simulations.  Targets that must measure their
    own engine configurations (scaling, cache benchmarks) build private
    runners instead and simply ignore this one.
    """

    runner: ExperimentRunner
    scale: ExperimentScale = field(default_factory=default_scale)

    @property
    def cycles(self) -> int:
        return self.runner.cycles

    @property
    def warmup(self) -> int:
        return self.runner.warmup


def _float_dict(raw: dict, what: str, name: str) -> dict:
    """Validate a metrics/timings mapping: string keys, numeric values."""
    clean = {}
    for key, value in raw.items():
        if not isinstance(key, str):
            raise BenchError(f"benchmark {name!r}: {what} key {key!r} is not a string")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise BenchError(
                f"benchmark {name!r}: {what}[{key!r}] is not a number: {value!r}"
            )
        clean[key] = float(value)
    return clean


@dataclass
class BenchRecord:
    """One benchmark's measurements inside a :class:`BenchDocument`."""

    name: str
    tier: str
    wall_clock_s: float
    checks_passed: bool = True
    error: Optional[str] = None
    max_regression: Optional[float] = None
    engine: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tier": self.tier,
            "wall_clock_s": self.wall_clock_s,
            "checks_passed": self.checks_passed,
            "error": self.error,
            "max_regression": self.max_regression,
            "engine": dict(self.engine),
            "metrics": dict(self.metrics),
            "timings": dict(self.timings),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        if not isinstance(data, dict):
            raise BenchError(f"benchmark record must be an object, got {data!r}")
        try:
            name = data["name"]
            tier = data["tier"]
            wall = data["wall_clock_s"]
        except KeyError as missing:
            raise BenchError(
                f"benchmark record {data.get('name', '<unnamed>')!r} is missing "
                f"its {missing.args[0]!r} key"
            ) from None
        if tier not in TIERS:
            raise BenchError(f"benchmark {name!r} has unknown tier {tier!r}")
        if isinstance(wall, bool) or not isinstance(wall, (int, float)) or wall < 0:
            raise BenchError(f"benchmark {name!r} has invalid wall_clock_s {wall!r}")
        return cls(
            name=name,
            tier=tier,
            wall_clock_s=float(wall),
            checks_passed=bool(data.get("checks_passed", True)),
            error=data.get("error"),
            max_regression=data.get("max_regression"),
            engine=dict(data.get("engine", {})),
            metrics=_float_dict(dict(data.get("metrics", {})), "metrics", name),
            timings=_float_dict(dict(data.get("timings", {})), "timings", name),
        )


@dataclass
class BenchDocument:
    """A full benchmark run: environment header plus per-benchmark records."""

    tier: str
    created_utc: str
    environment: dict = field(default_factory=dict)
    benchmarks: list = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def record(self, name: str) -> Optional[BenchRecord]:
        for entry in self.benchmarks:
            if entry.name == name:
                return entry
        return None

    def names(self) -> list[str]:
        return [entry.name for entry in self.benchmarks]

    @property
    def ok(self) -> bool:
        """True when every benchmark ran and passed its checks."""
        return all(entry.checks_passed for entry in self.benchmarks)

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_NAME,
            "schema_version": self.schema_version,
            "created_utc": self.created_utc,
            "tier": self.tier,
            "environment": dict(self.environment),
            "benchmarks": [entry.to_dict() for entry in self.benchmarks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchDocument":
        if not isinstance(data, dict):
            raise BenchError("a benchmark document must be a JSON object")
        schema = data.get("schema", SCHEMA_NAME)
        if schema != SCHEMA_NAME:
            raise BenchError(f"not a benchmark document (schema {schema!r})")
        version = data.get("schema_version")
        if not isinstance(version, int):
            raise BenchError(f"invalid schema_version {version!r}")
        try:
            benchmarks = [BenchRecord.from_dict(entry) for entry in data["benchmarks"]]
        except KeyError:
            raise BenchError("a benchmark document needs a 'benchmarks' list") from None
        names = [entry.name for entry in benchmarks]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise BenchError(f"duplicate benchmark records: {', '.join(duplicates)}")
        return cls(
            tier=data.get("tier", "quick"),
            created_utc=data.get("created_utc", ""),
            environment=dict(data.get("environment", {})),
            benchmarks=benchmarks,
            schema_version=version,
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BenchDocument":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise BenchError(f"invalid benchmark JSON: {error}") from None
        return cls.from_dict(data)

    def save(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "BenchDocument":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def _environment(runner: ExperimentRunner, workers: int) -> dict:
    """Header recorded with every run, for provenance and triage."""
    return {
        "python": platform.python_version(),
        "platform": sys.platform,
        "repro_version": __version__,
        "cycles": runner.cycles,
        "warmup": runner.warmup,
        "seed": runner.seed,
        "workers": workers,
    }


def run_specs(
    specs: Sequence[BenchSpec],
    tier: str = "quick",
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    workers: int = 1,
    log: Optional[TextIO] = None,
    write_text_artifacts: bool = True,
) -> BenchDocument:
    """Execute benchmark specs and assemble the result document.

    A spec whose target or checks raise does not abort the run: the
    failure is recorded on its :class:`BenchRecord` (``checks_passed:
    false`` plus the traceback's last line in ``error``) and the
    remaining specs still run, so one broken benchmark cannot hide
    regressions in the other seventeen.
    """
    runner = runner if runner is not None else ExperimentRunner()
    context = BenchContext(
        runner=runner, scale=scale if scale is not None else default_scale()
    )
    document = BenchDocument(
        tier=tier,
        created_utc=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        environment=_environment(runner, workers),
    )
    text_dir = artifact_dir() if write_text_artifacts else None
    for spec in specs:
        if log is not None:
            log.write(f"bench: {spec.name} ...\n")
            log.flush()
        before_stats = runner.executor.stats.snapshot()
        before_memory = runner.memory_hits
        start = perf_counter()
        payload: object = None
        error: Optional[str] = None
        try:
            payload = spec.target(context)
        except Exception:
            error = traceback.format_exc(limit=1).strip().splitlines()[-1]
        wall = perf_counter() - start
        record = BenchRecord(
            name=spec.name,
            tier=spec.tier,
            wall_clock_s=wall,
            max_regression=spec.max_regression,
            engine=_engine_delta(
                runner.executor.stats.delta(before_stats),
                runner.memory_hits - before_memory,
                runner.cycles + runner.warmup,
                wall,
            ),
        )
        if error is None:
            # Extractors and checks get the same isolation as the target:
            # a spec whose payload shape changed records its own failure
            # instead of aborting the run and losing the document.
            try:
                record.metrics = _float_dict(
                    spec.metrics(payload) if spec.metrics else {}, "metrics", spec.name
                )
                record.timings = _float_dict(
                    spec.timings(payload) if spec.timings else {}, "timings", spec.name
                )
                if spec.format is not None and text_dir is not None:
                    text_dir.mkdir(parents=True, exist_ok=True)
                    text = spec.format(payload)
                    (text_dir / f"{spec.artifact}.txt").write_text(
                        text + "\n", encoding="utf-8"
                    )
            except Exception:
                error = traceback.format_exc(limit=1).strip().splitlines()[-1]
            if error is None and spec.checks is not None:
                try:
                    spec.checks(payload, context)
                except AssertionError as failure:
                    error = (
                        f"check failed: {failure}" if str(failure) else "check failed"
                    )
                except Exception:
                    error = traceback.format_exc(limit=1).strip().splitlines()[-1]
        if error is not None:
            record.checks_passed = False
            record.error = error
        if log is not None:
            status = "ok" if record.checks_passed else f"FAILED ({record.error})"
            log.write(f"bench: {spec.name} {wall:.2f}s {status}\n")
            log.flush()
        document.benchmarks.append(record)
    return document


def _engine_delta(stats, memory_hits: int, window_cycles: int, wall_s: float) -> dict:
    """Attribute the shared runner's counter movement to one benchmark.

    ``stats`` is an :class:`~repro.engine.executor.ExecutorStats` delta.
    Benchmarks that build private runners (scaling, cache studies) show
    zeros here; their interesting numbers live in their ``timings``.
    """
    # Simulated DRAM cycles retired per wall-clock second: the runner's
    # window length times the simulations performed, over the wall time.
    cycles = window_cycles * stats.simulated
    return {
        "jobs": stats.jobs + memory_hits,
        "simulated": stats.simulated,
        "store_hits": stats.store_hits,
        "memory_hits": memory_hits,
        "sim_cycles_per_s": (cycles / wall_s) if wall_s > 0 else 0.0,
    }
