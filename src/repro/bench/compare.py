"""Baseline comparison: the benchmark regression gate.

:func:`compare_documents` diffs a current :class:`~repro.bench.run.BenchDocument`
against a committed baseline and classifies every benchmark:

* **wall-clock regression** — the current wall time exceeds the baseline
  by more than the allowed threshold (the global ``--max-regression``
  fraction, overridden per benchmark by ``BenchSpec.max_regression``,
  which the run harness embeds in the baseline record);
* **noise floor** — benchmarks whose baseline *and* current wall times
  are both under the floor are never flagged, so sub-millisecond
  benchmarks (and zero-time degenerate records) cannot trip the
  percentage gate on scheduler jitter;
* **fidelity drift** — any relative difference in a gated metric beyond
  ``fidelity_tolerance`` fails the comparison outright: the simulator's
  numbers are deterministic, so drift means behavior changed;
* **missing benchmarks** — a benchmark present in the baseline but
  absent from the current run fails (a silently dropped benchmark is a
  dropped gate); one present only in the current run is reported as new
  and does not fail.

Both documents must carry the same ``schema_version``; refusing to diff
across schema changes keeps a stale committed baseline from producing
nonsense verdicts after a format migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bench.run import BenchDocument, BenchRecord
from repro.bench.spec import BenchError

#: Default allowed wall-clock regression (fraction of the baseline time).
DEFAULT_MAX_REGRESSION = 0.10
#: Wall times under this floor (seconds) are never compared: percentage
#: gates on near-zero times measure scheduler noise, not the code.
DEFAULT_NOISE_FLOOR_S = 0.05
#: Allowed relative drift in fidelity metrics.  Effectively bit-exact
#: modulo float formatting: real behavior changes move metrics by far
#: more, while JSON round-trips of IEEE doubles are exact.
DEFAULT_FIDELITY_TOLERANCE = 1e-9

#: Entry statuses, in descending severity.
STATUS_MISSING = "missing"
STATUS_FIDELITY = "fidelity-drift"
STATUS_REGRESSION = "regression"
STATUS_OK = "ok"
STATUS_NOISE = "noise-floor"
STATUS_NEW = "new"

_FAILING = (STATUS_MISSING, STATUS_FIDELITY, STATUS_REGRESSION)


@dataclass
class ComparisonEntry:
    """One benchmark's verdict inside a :class:`Comparison`."""

    name: str
    status: str
    detail: str = ""
    baseline_s: Optional[float] = None
    current_s: Optional[float] = None
    threshold: Optional[float] = None

    @property
    def failed(self) -> bool:
        return self.status in _FAILING

    @property
    def change_pct(self) -> Optional[float]:
        if self.baseline_s is None or self.current_s is None:
            return None
        if self.baseline_s == 0:
            # A real slowdown from a zero-time baseline: infinite, and the
            # report should say so rather than hide the column.
            return float("inf") if self.current_s > 0 else 0.0
        return (self.current_s / self.baseline_s - 1.0) * 100.0


@dataclass
class Comparison:
    """Full verdict of a baseline diff."""

    entries: list = field(default_factory=list)
    max_regression: float = DEFAULT_MAX_REGRESSION
    noise_floor_s: float = DEFAULT_NOISE_FLOOR_S

    @property
    def failures(self) -> list:
        return [entry for entry in self.entries if entry.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_markdown(self) -> str:
        """Render the regression report (CI posts this as the job summary)."""
        lines = [
            "# Benchmark regression report",
            "",
            f"- gate: wall-clock regression > {self.max_regression * 100:.0f}% "
            f"(per-benchmark overrides apply), any fidelity drift",
            f"- noise floor: {self.noise_floor_s:.3f} s",
            f"- verdict: {'PASS' if self.ok else 'FAIL'} "
            f"({len(self.failures)} of {len(self.entries)} benchmarks failing)",
            "",
            "| benchmark | baseline (s) | current (s) | change | status |",
            "|---|---:|---:|---:|---|",
        ]
        for entry in sorted(self.entries, key=lambda e: (not e.failed, e.name)):
            baseline = "—" if entry.baseline_s is None else f"{entry.baseline_s:.3f}"
            current = "—" if entry.current_s is None else f"{entry.current_s:.3f}"
            change = "—" if entry.change_pct is None else f"{entry.change_pct:+.1f}%"
            status = entry.status.upper() if entry.failed else entry.status
            if entry.detail:
                status = f"{status} — {entry.detail}"
            lines.append(
                f"| {entry.name} | {baseline} | {current} | {change} | {status} |"
            )
        return "\n".join(lines) + "\n"


def _compare_metrics(
    baseline: BenchRecord, current: BenchRecord, tolerance: float
) -> Optional[str]:
    """First fidelity drift between two records, or None when clean."""
    for key in sorted(baseline.metrics):
        if key not in current.metrics:
            return f"metric {key!r} disappeared"
        base_value = baseline.metrics[key]
        current_value = current.metrics[key]
        scale = max(abs(base_value), abs(current_value), 1e-12)
        if abs(current_value - base_value) / scale > tolerance:
            return f"metric {key!r} drifted: {base_value!r} -> {current_value!r}"
    return None


def compare_documents(
    baseline: BenchDocument,
    current: BenchDocument,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    noise_floor_s: float = DEFAULT_NOISE_FLOOR_S,
    fidelity_tolerance: float = DEFAULT_FIDELITY_TOLERANCE,
) -> Comparison:
    """Diff two benchmark documents; raises :class:`BenchError` on schema skew."""
    if max_regression <= 0:
        raise BenchError(f"max_regression must be positive, got {max_regression}")
    if noise_floor_s < 0:
        raise BenchError(f"noise_floor_s must be >= 0, got {noise_floor_s}")
    if baseline.schema_version != current.schema_version:
        raise BenchError(
            f"schema version mismatch: baseline v{baseline.schema_version} vs "
            f"current v{current.schema_version}; refresh the baseline "
            f"(see README: Benchmarking & regression gates)"
        )
    comparison = Comparison(max_regression=max_regression, noise_floor_s=noise_floor_s)
    current_names = set(current.names())
    for base_record in baseline.benchmarks:
        record = current.record(base_record.name)
        if record is None:
            comparison.entries.append(
                ComparisonEntry(
                    name=base_record.name,
                    status=STATUS_MISSING,
                    detail="present in baseline but not in the current run",
                    baseline_s=base_record.wall_clock_s,
                )
            )
            continue
        drift = _compare_metrics(base_record, record, fidelity_tolerance)
        if drift is not None:
            comparison.entries.append(
                ComparisonEntry(
                    name=base_record.name,
                    status=STATUS_FIDELITY,
                    detail=drift,
                    baseline_s=base_record.wall_clock_s,
                    current_s=record.wall_clock_s,
                )
            )
            continue
        comparison.entries.append(
            _compare_wall_clock(base_record, record, max_regression, noise_floor_s)
        )
    for record in current.benchmarks:
        if record.name not in {entry.name for entry in comparison.entries}:
            comparison.entries.append(
                ComparisonEntry(
                    name=record.name,
                    status=STATUS_NEW,
                    detail="not in the baseline; refresh it to start gating",
                    current_s=record.wall_clock_s,
                )
            )
    # Guard against diffing disjoint documents (e.g. quick vs full tiers
    # filtered down to nothing): an empty intersection gates nothing.
    if not current_names.intersection(baseline.names()):
        raise BenchError(
            "baseline and current documents share no benchmarks; "
            "nothing would be gated"
        )
    return comparison


def _compare_wall_clock(
    baseline: BenchRecord,
    current: BenchRecord,
    max_regression: float,
    noise_floor_s: float,
) -> ComparisonEntry:
    base_s, current_s = baseline.wall_clock_s, current.wall_clock_s
    threshold = max_regression
    # The spec's per-benchmark override rides along in both documents; the
    # baseline's value wins so a PR cannot quietly raise its own gate.
    if baseline.max_regression is not None:
        threshold = baseline.max_regression
    if base_s < noise_floor_s and current_s < noise_floor_s:
        return ComparisonEntry(
            name=baseline.name,
            status=STATUS_NOISE,
            detail="both runs under the noise floor",
            baseline_s=base_s,
            current_s=current_s,
            threshold=threshold,
        )
    # base_s can still be ~0 with current_s above the floor; that is a real
    # slowdown from nothing, which the ratio below makes infinite-ish and
    # correctly flags.
    ratio = (current_s / base_s - 1.0) if base_s > 0 else float("inf")
    if ratio > threshold:
        return ComparisonEntry(
            name=baseline.name,
            status=STATUS_REGRESSION,
            detail=f"allowed {threshold * 100:.0f}%",
            baseline_s=base_s,
            current_s=current_s,
            threshold=threshold,
        )
    return ComparisonEntry(
        name=baseline.name,
        status=STATUS_OK,
        baseline_s=base_s,
        current_s=current_s,
        threshold=threshold,
    )
