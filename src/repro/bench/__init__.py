"""repro.bench: the declarative performance-benchmark subsystem.

Turns the repo's benchmarks into first-class, machine-readable,
regression-gated artifacts:

* :mod:`repro.bench.spec`    — :class:`BenchSpec` and the registry;
* :mod:`repro.bench.suite`   — the standard suite (one spec per
  ``benchmarks/bench_*.py`` script, which are now thin shims over it);
* :mod:`repro.bench.run`     — the execution harness and the
  schema-versioned :class:`BenchDocument` JSON result format;
* :mod:`repro.bench.compare` — the baseline regression gate with
  per-benchmark thresholds, noise floors and a markdown report.

Driven by the ``repro bench`` CLI (``list`` / ``run`` / ``compare``)::

    repro bench run --tier quick --workers 4 --json BENCH_2026-07-30.json
    repro bench compare benchmarks/baseline.json BENCH_2026-07-30.json \\
        --max-regression 25%
"""

from repro.bench.compare import (
    DEFAULT_FIDELITY_TOLERANCE,
    DEFAULT_MAX_REGRESSION,
    DEFAULT_NOISE_FLOOR_S,
    Comparison,
    ComparisonEntry,
    compare_documents,
)
from repro.bench.run import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    BenchContext,
    BenchDocument,
    BenchRecord,
    artifact_dir,
    default_json_path,
    run_specs,
)
from repro.bench.spec import (
    TIERS,
    BenchError,
    BenchSpec,
    all_specs,
    get_spec,
    load_suite,
    register,
)

__all__ = [
    "BenchContext",
    "BenchDocument",
    "BenchError",
    "BenchRecord",
    "BenchSpec",
    "Comparison",
    "ComparisonEntry",
    "DEFAULT_FIDELITY_TOLERANCE",
    "DEFAULT_MAX_REGRESSION",
    "DEFAULT_NOISE_FLOOR_S",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "TIERS",
    "all_specs",
    "artifact_dir",
    "compare_documents",
    "default_json_path",
    "get_spec",
    "load_suite",
    "register",
    "run_specs",
]
