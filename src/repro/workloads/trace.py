"""Trace representation consumed by the core model.

A trace is an (infinite) stream of :class:`TraceEntry` records, each
describing a memory instruction preceded by a number of non-memory
instructions.  Addresses are byte addresses within the benchmark's private
footprint; the simulator relocates each core's footprint to a disjoint
region of physical memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class TraceEntry:
    """One memory instruction and the non-memory instructions before it."""

    #: Number of non-memory instructions executed before this access.
    gap: int
    #: Byte address of the access (within the benchmark's footprint).
    address: int
    #: True for a store, False for a load.
    is_write: bool
    #: True when this load depends on earlier outstanding loads (pointer
    #: chasing): the core cannot issue it until those loads complete, which
    #: makes the benchmark latency-sensitive rather than bandwidth-bound.
    depends: bool = False


def take(trace: Iterator[TraceEntry], count: int) -> list[TraceEntry]:
    """Materialize the first ``count`` entries of a trace (for testing).

    A trace shorter than ``count`` yields its materialized prefix rather
    than letting the generator's bare ``StopIteration`` escape into the
    caller (where, inside another generator, PEP 479 would turn it into a
    ``RuntimeError`` far from the truncated source).
    """
    result = []
    for _ in range(count):
        try:
            result.append(next(trace))
        except StopIteration:
            break
    return result


def summarize(entries: list[TraceEntry]) -> dict:
    """Aggregate statistics of a trace sample (used in tests and examples)."""
    if not entries:
        return {
            "accesses": 0,
            "instructions": 0,
            "write_fraction": 0.0,
            "memory_fraction": 0.0,
        }
    accesses = len(entries)
    instructions = sum(entry.gap + 1 for entry in entries)
    writes = sum(1 for entry in entries if entry.is_write)
    return {
        "accesses": accesses,
        "instructions": instructions,
        "write_fraction": writes / accesses,
        "memory_fraction": accesses / instructions,
    }
