"""Synthetic workloads standing in for the paper's Pin-captured traces.

The paper drives its simulator with SPEC CPU2006, STREAM, TPC and a
random-access microbenchmark, grouped into memory-intensive (MPKI >= 10)
and non-intensive benchmarks and mixed into 100 eight-core workloads with
0 / 25 / 50 / 75 / 100 % memory-intensive members.  Those traces are not
redistributable, so this package provides parameterized synthetic
benchmarks that reproduce the properties the refresh mechanisms interact
with: memory intensity, row-buffer locality, bank-level spread, and the
read/write mix that produces write batches.
"""

from repro.workloads.benchmark_suite import (
    Benchmark,
    benchmark_suite,
    get_benchmark,
    intensive_benchmarks,
    non_intensive_benchmarks,
)
from repro.workloads.generators import (
    mixed_trace,
    random_trace,
    streaming_trace,
    strided_trace,
)
from repro.workloads.mixes import (
    INTENSITY_CATEGORIES,
    Workload,
    make_workload,
    make_workload_category,
    make_workload_sweep,
)
from repro.workloads.trace import TraceEntry

__all__ = [
    "TraceEntry",
    "streaming_trace",
    "strided_trace",
    "random_trace",
    "mixed_trace",
    "Benchmark",
    "benchmark_suite",
    "get_benchmark",
    "intensive_benchmarks",
    "non_intensive_benchmarks",
    "Workload",
    "make_workload",
    "make_workload_category",
    "make_workload_sweep",
    "INTENSITY_CATEGORIES",
]
