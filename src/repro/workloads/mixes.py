"""Multi-programmed workload construction.

The paper's 100 workloads are random mixes of benchmarks grouped into five
categories by the fraction of memory-intensive members: 0 %, 25 %, 50 %,
75 % and 100 % (20 workloads per category).  :func:`make_workload_category`
reproduces that construction for an arbitrary core count, and
:func:`make_workload_sweep` builds the per-category sweep used by the
figure-level experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.obs.log import get_logger
from repro.workloads.benchmark_suite import (
    Benchmark,
    intensive_benchmarks,
    non_intensive_benchmarks,
)

log = get_logger(__name__)

#: The five memory-intensity categories used throughout the evaluation.
INTENSITY_CATEGORIES: tuple[int, ...] = (0, 25, 50, 75, 100)


@dataclass(frozen=True)
class Workload:
    """A multi-programmed workload: one benchmark per core."""

    name: str
    benchmarks: tuple[Benchmark, ...]
    #: Memory-intensity category (percentage of intensive benchmarks), if known.
    category: int = -1
    seed: int = 0

    @property
    def num_cores(self) -> int:
        return len(self.benchmarks)

    def fingerprint(self) -> tuple:
        """Hashable identity used by the experiment run-cache.

        Built from primitives only, so it is stable across processes (the
        parallel experiment engine keys its persistent stores on it).
        """
        return (self.name, tuple(b.name for b in self.benchmarks), self.seed)

    def to_dict(self) -> dict:
        """JSON-compatible spec; benchmarks are referenced by suite name."""
        return {
            "name": self.name,
            "benchmarks": [benchmark.name for benchmark in self.benchmarks],
            "category": self.category,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Workload":
        """Rebuild a workload from :meth:`to_dict` output.

        Workloads and benchmarks are plain frozen dataclasses and pickle
        fine across process boundaries; this spec form exists for
        human-readable manifests (CLI stores, logs) where pickling is
        inappropriate.
        """
        from repro.workloads.benchmark_suite import get_benchmark

        return cls(
            name=data["name"],
            benchmarks=tuple(get_benchmark(name) for name in data["benchmarks"]),
            category=data.get("category", -1),
            seed=data.get("seed", 0),
        )


def make_workload(
    benchmarks: list[Benchmark] | tuple[Benchmark, ...],
    name: str | None = None,
    seed: int = 0,
) -> Workload:
    """Build a workload from an explicit benchmark list."""
    benchmarks = tuple(benchmarks)
    if not benchmarks:
        raise ValueError("a workload needs at least one benchmark")
    if name is None:
        name = "+".join(b.name for b in benchmarks)
    return Workload(name=name, benchmarks=benchmarks, seed=seed)


def make_workload_category(
    category: int,
    index: int = 0,
    num_cores: int = 8,
    seed: int = 0,
) -> Workload:
    """Build one random workload of a given memory-intensity category.

    ``category`` is the percentage of memory-intensive benchmarks in the
    mix (one of :data:`INTENSITY_CATEGORIES`).  The construction is
    deterministic in (category, index, num_cores, seed).
    """
    if category not in INTENSITY_CATEGORIES:
        raise ValueError(
            f"category must be one of {INTENSITY_CATEGORIES}, got {category}"
        )
    rng = random.Random((seed, category, index, num_cores).__hash__())
    num_intensive = round(num_cores * category / 100)
    intensive_pool = intensive_benchmarks()
    quiet_pool = non_intensive_benchmarks()
    picks = [rng.choice(intensive_pool) for _ in range(num_intensive)]
    picks += [rng.choice(quiet_pool) for _ in range(num_cores - num_intensive)]
    rng.shuffle(picks)
    log.debug(
        "mix%03d_%02d: %s",
        category,
        index,
        "+".join(benchmark.name for benchmark in picks),
    )
    return Workload(
        name=f"mix{category:03d}_{index:02d}",
        benchmarks=tuple(picks),
        category=category,
        seed=seed + index,
    )


def make_workload_sweep(
    workloads_per_category: int = 2,
    num_cores: int = 8,
    seed: int = 0,
    categories: tuple[int, ...] = INTENSITY_CATEGORIES,
) -> list[Workload]:
    """Build the per-category workload sweep used by the figure experiments.

    The paper uses 20 workloads per category (100 total); the default here
    is much smaller so the reproduction runs in reasonable time — pass a
    larger ``workloads_per_category`` to approach the paper's scale.
    """
    sweep = []
    for category in categories:
        for index in range(workloads_per_category):
            sweep.append(
                make_workload_category(
                    category, index=index, num_cores=num_cores, seed=seed
                )
            )
    return sweep


def memory_intensive_workloads(
    count: int = 4, num_cores: int = 8, seed: int = 0
) -> list[Workload]:
    """Random memory-intensive workloads (used by the sensitivity studies).

    Mirrors Section 5's "16 randomly selected memory-intensive workloads"
    used for the tFAW, subarray-count, core-count and retention studies.
    """
    return [
        make_workload_category(100, index=i, num_cores=num_cores, seed=seed + 1000)
        for i in range(count)
    ]
