"""Synthetic address-trace generators.

Each generator yields an infinite stream of :class:`TraceEntry` records.
They are deliberately simple, seeded and reproducible; their parameters are
chosen per benchmark (see :mod:`repro.workloads.benchmark_suite`) to mimic
the memory behaviour classes of the paper's workloads:

* ``streaming_trace``  — sequential sweeps over a large footprint
  (STREAM-like): every access misses the LLC, row-buffer locality is high.
* ``strided_trace``    — constant-stride sweeps (stencil/matrix-like):
  misses with moderate row locality.
* ``random_trace``     — uniformly random lines over the footprint
  (HPCC RandomAccess-like): misses with minimal row locality.
* ``mixed_trace``      — alternating bursts of streaming and random access
  (transaction-processing-like).

``dependent_fraction`` controls how many loads are flagged as depending on
earlier outstanding loads (pointer chasing).  Dependent loads serialize the
core's memory-level parallelism, which is what makes a workload sensitive
to the latency added by refresh operations.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.trace import TraceEntry

LINE_BYTES = 64


def _gap(rng: random.Random, memory_fraction: float) -> int:
    """Draw the number of non-memory instructions before the next access.

    ``memory_fraction`` is the fraction of instructions that are memory
    accesses; gaps follow a geometric-like distribution with the matching
    mean so intensity is controlled precisely in expectation.
    """
    if memory_fraction >= 1.0:
        return 0
    mean_gap = (1.0 - memory_fraction) / memory_fraction
    # Exponential draw, truncated to keep the tail bounded.
    gap = rng.expovariate(1.0 / mean_gap) if mean_gap > 0 else 0.0
    return min(int(gap), int(mean_gap * 8) + 1)


def _entry(
    rng: random.Random,
    address: int,
    memory_fraction: float,
    write_fraction: float,
    dependent_fraction: float,
) -> TraceEntry:
    is_write = rng.random() < write_fraction
    depends = (not is_write) and rng.random() < dependent_fraction
    return TraceEntry(
        gap=_gap(rng, memory_fraction),
        address=address,
        is_write=is_write,
        depends=depends,
    )


def streaming_trace(
    footprint_bytes: int,
    memory_fraction: float,
    write_fraction: float,
    seed: int = 0,
    run_length: int = 128,
    dependent_fraction: float = 0.05,
) -> Iterator[TraceEntry]:
    """Sequential streams: long runs of consecutive cache lines.

    ``run_length`` consecutive lines are touched before jumping to a new
    random position, which keeps DRAM row-buffer locality high while still
    spreading accesses over banks.
    """
    rng = random.Random(seed)
    lines = max(1, footprint_bytes // LINE_BYTES)
    position = rng.randrange(lines)
    remaining = run_length
    while True:
        if remaining == 0:
            position = rng.randrange(lines)
            remaining = run_length
        address = (position % lines) * LINE_BYTES
        yield _entry(rng, address, memory_fraction, write_fraction, dependent_fraction)
        position += 1
        remaining -= 1


def strided_trace(
    footprint_bytes: int,
    memory_fraction: float,
    write_fraction: float,
    stride_bytes: int = 256,
    seed: int = 0,
    dependent_fraction: float = 0.1,
) -> Iterator[TraceEntry]:
    """Constant-stride sweeps over the footprint."""
    rng = random.Random(seed)
    if stride_bytes < LINE_BYTES:
        raise ValueError("stride must be at least one cache line")
    position = 0
    footprint = max(stride_bytes, footprint_bytes)
    while True:
        address = position % footprint
        yield _entry(rng, address, memory_fraction, write_fraction, dependent_fraction)
        position += stride_bytes


def random_trace(
    footprint_bytes: int,
    memory_fraction: float,
    write_fraction: float,
    seed: int = 0,
    dependent_fraction: float = 0.7,
) -> Iterator[TraceEntry]:
    """Uniformly random line accesses (GUPS / HPCC RandomAccess-like)."""
    rng = random.Random(seed)
    lines = max(1, footprint_bytes // LINE_BYTES)
    while True:
        address = rng.randrange(lines) * LINE_BYTES
        yield _entry(rng, address, memory_fraction, write_fraction, dependent_fraction)


def mixed_trace(
    footprint_bytes: int,
    memory_fraction: float,
    write_fraction: float,
    seed: int = 0,
    burst_length: int = 64,
    streaming_share: float = 0.5,
    dependent_fraction: float = 0.4,
) -> Iterator[TraceEntry]:
    """Alternating bursts of streaming and random accesses (TPC-like)."""
    rng = random.Random(seed)
    stream = streaming_trace(
        footprint_bytes,
        memory_fraction,
        write_fraction,
        seed=seed + 1,
        dependent_fraction=dependent_fraction / 4,
    )
    scatter = random_trace(
        footprint_bytes,
        memory_fraction,
        write_fraction,
        seed=seed + 2,
        dependent_fraction=dependent_fraction,
    )
    while True:
        source = stream if rng.random() < streaming_share else scatter
        for _ in range(burst_length):
            yield next(source)


GENERATORS = {
    "streaming": streaming_trace,
    "strided": strided_trace,
    "random": random_trace,
    "mixed": mixed_trace,
}
