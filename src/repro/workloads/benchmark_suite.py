"""The synthetic benchmark suite.

Benchmarks are grouped like the paper's (Section 5): *memory-intensive*
(last-level-cache MPKI >= 10) and *memory non-intensive* (MPKI < 10).
Each benchmark is a parameterization of one of the trace generators; the
``*_like`` names indicate which real workload's memory behaviour class the
parameters imitate (footprint, intensity, access pattern, write share) —
they are not the real programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.workloads.generators import (
    mixed_trace,
    random_trace,
    streaming_trace,
    strided_trace,
)
from repro.workloads.trace import TraceEntry

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class Benchmark:
    """A synthetic benchmark: a named, parameterized trace generator."""

    name: str
    pattern: str
    footprint_bytes: int
    memory_fraction: float
    write_fraction: float
    intensive: bool
    stride_bytes: int = 256
    #: Fraction of loads that depend on earlier outstanding loads
    #: (pointer chasing); higher values make the benchmark latency-bound.
    dependent_fraction: float = 0.3

    def trace(self, seed: int = 0) -> Iterator[TraceEntry]:
        """Instantiate the benchmark's (infinite, reproducible) trace."""
        if self.pattern == "streaming":
            return streaming_trace(
                self.footprint_bytes,
                self.memory_fraction,
                self.write_fraction,
                seed=seed,
                dependent_fraction=self.dependent_fraction,
            )
        if self.pattern == "strided":
            return strided_trace(
                self.footprint_bytes,
                self.memory_fraction,
                self.write_fraction,
                stride_bytes=self.stride_bytes,
                seed=seed,
                dependent_fraction=self.dependent_fraction,
            )
        if self.pattern == "random":
            return random_trace(
                self.footprint_bytes,
                self.memory_fraction,
                self.write_fraction,
                seed=seed,
                dependent_fraction=self.dependent_fraction,
            )
        if self.pattern == "mixed":
            return mixed_trace(
                self.footprint_bytes,
                self.memory_fraction,
                self.write_fraction,
                seed=seed,
                dependent_fraction=self.dependent_fraction,
            )
        raise ValueError(f"unknown pattern {self.pattern!r}")

    @property
    def mpki_class(self) -> str:
        return "intensive" if self.intensive else "non-intensive"


_SUITE: tuple[Benchmark, ...] = (
    # -- memory intensive (MPKI >= 10) ------------------------------------
    # The memory fractions are chosen so the post-LLC MPKI lands in the
    # 15-60 range typical of the paper's memory-intensive benchmarks; the
    # dependent fractions make pointer-chasing benchmarks latency-bound and
    # streaming benchmarks bandwidth-bound.
    Benchmark("stream_copy", "streaming", 128 * MB, 0.045, 0.45, True, dependent_fraction=0.20),
    Benchmark("stream_triad", "streaming", 192 * MB, 0.060, 0.33, True, dependent_fraction=0.20),
    Benchmark("random_access", "random", 256 * MB, 0.040, 0.50, True, dependent_fraction=0.85),
    Benchmark("mcf_like", "random", 96 * MB, 0.035, 0.20, True, dependent_fraction=0.70),
    Benchmark("libquantum_like", "streaming", 64 * MB, 0.040, 0.25, True, dependent_fraction=0.25),
    Benchmark("lbm_like", "strided", 128 * MB, 0.040, 0.45, True, stride_bytes=1024, dependent_fraction=0.30),
    Benchmark("milc_like", "strided", 96 * MB, 0.030, 0.30, True, stride_bytes=512, dependent_fraction=0.35),
    Benchmark("soplex_like", "mixed", 64 * MB, 0.025, 0.25, True, dependent_fraction=0.40),
    Benchmark("gems_like", "streaming", 160 * MB, 0.035, 0.30, True, dependent_fraction=0.30),
    Benchmark("tpcc_like", "mixed", 128 * MB, 0.020, 0.35, True, dependent_fraction=0.50),
    # -- memory non-intensive (MPKI < 10) ----------------------------------
    Benchmark("gcc_like", "mixed", 192 * KB, 0.10, 0.30, False, dependent_fraction=0.30),
    Benchmark("povray_like", "random", 96 * KB, 0.08, 0.20, False, dependent_fraction=0.30),
    Benchmark("calculix_like", "strided", 256 * KB, 0.06, 0.30, False, stride_bytes=128, dependent_fraction=0.20),
    Benchmark("hmmer_like", "streaming", 128 * KB, 0.12, 0.35, False, dependent_fraction=0.10),
    Benchmark("h264_like", "mixed", 320 * KB, 0.07, 0.25, False, dependent_fraction=0.30),
    Benchmark("omnetpp_lite", "random", 768 * KB, 0.04, 0.30, False, dependent_fraction=0.50),
)

_BY_NAME = {benchmark.name: benchmark for benchmark in _SUITE}


def benchmark_suite() -> tuple[Benchmark, ...]:
    """Every benchmark in the suite."""
    return _SUITE


def get_benchmark(name: str) -> Benchmark:
    """Look a benchmark up by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def intensive_benchmarks() -> tuple[Benchmark, ...]:
    """Benchmarks classified as memory intensive (MPKI >= 10)."""
    return tuple(b for b in _SUITE if b.intensive)


def non_intensive_benchmarks() -> tuple[Benchmark, ...]:
    """Benchmarks classified as memory non-intensive (MPKI < 10)."""
    return tuple(b for b in _SUITE if not b.intensive)
