"""Set-associative writeback cache with LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of a cache access."""

    hit: bool
    #: Line-aligned address of a dirty victim that must be written back,
    #: or None if the access caused no writeback.
    writeback_address: Optional[int] = None


class SetAssociativeCache:
    """A write-allocate, writeback, LRU set-associative cache.

    Stores misses allocate the line directly (no fill read is modelled for
    stores); load misses are reported to the caller, which is responsible
    for fetching the line from DRAM.  This matches the paper's observation
    that DRAM writes are exclusively dirty-line writebacks from the LLC.
    """

    def __init__(self, size_bytes: int, associativity: int, line_bytes: int):
        if size_bytes % (associativity * line_bytes):
            raise ValueError("cache size must be a multiple of way size")
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (associativity * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        # Each set is an OrderedDict mapping tag -> dirty flag, in LRU order
        # (least recently used first).
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # -- address helpers ----------------------------------------------------
    def _index_and_tag(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def line_address(self, address: int) -> int:
        """Line-aligned form of ``address``."""
        return (address // self.line_bytes) * self.line_bytes

    # -- access --------------------------------------------------------------
    def access(self, address: int, is_write: bool) -> CacheAccessResult:
        """Perform a load or store; returns hit status and any writeback."""
        index, tag = self._index_and_tag(address)
        cache_set = self._sets[index]
        if tag in cache_set:
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or is_write
            self.hits += 1
            return CacheAccessResult(hit=True)

        self.misses += 1
        writeback = None
        if len(cache_set) >= self.associativity:
            victim_tag, victim_dirty = cache_set.popitem(last=False)
            if victim_dirty:
                victim_line = victim_tag * self.num_sets + index
                writeback = victim_line * self.line_bytes
                self.writebacks += 1
        cache_set[tag] = is_write
        return CacheAccessResult(hit=False, writeback_address=writeback)

    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is resident (no LRU update)."""
        index, tag = self._index_and_tag(address)
        return tag in self._sets[index]

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
