"""Last-level cache model.

Each core owns a private 512 KB, 16-way, 64 B-line writeback LLC slice
(Table 1).  Load misses become DRAM reads; dirty evictions become DRAM
writes — the writeback traffic whose batching DARP's write-refresh
parallelization exploits.
"""

from repro.cache.llc import LastLevelCache
from repro.cache.set_assoc import CacheAccessResult, SetAssociativeCache

__all__ = ["SetAssociativeCache", "CacheAccessResult", "LastLevelCache"]
