"""Per-core last-level cache slice."""

from __future__ import annotations

from repro.cache.set_assoc import CacheAccessResult, SetAssociativeCache
from repro.config.cpu_config import CacheConfig


class LastLevelCache:
    """The private LLC slice of one core (512 KB, 16-way, 64 B lines)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._cache = SetAssociativeCache(
            size_bytes=config.size_bytes,
            associativity=config.associativity,
            line_bytes=config.line_bytes,
        )

    def access(self, address: int, is_write: bool) -> CacheAccessResult:
        """Look up / allocate the line containing ``address``."""
        return self._cache.access(address, is_write)

    def line_address(self, address: int) -> int:
        return self._cache.line_address(address)

    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is resident (no LRU update)."""
        return self._cache.contains(address)

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def writebacks(self) -> int:
        return self._cache.writebacks

    @property
    def miss_rate(self) -> float:
        return self._cache.miss_rate

    def mpki(self, instructions: int) -> float:
        """LLC misses per thousand instructions."""
        if instructions <= 0:
            return 0.0
        return self._cache.misses * 1000.0 / instructions

    def reset_stats(self) -> None:
        self._cache.reset_stats()
