"""Declarative design-space exploration.

The sweep subsystem turns arbitrary multi-axis design-space explorations
into data instead of code:

* :mod:`repro.sweep.spec` — :class:`SweepSpec`: named axes over system
  knobs (density, cores, tFAW, subarrays per bank, retention, ...), grid
  or zip expansion, mechanism lists and workload sets, serializable
  to/from JSON,
* :mod:`repro.sweep.compile` — deterministic expansion of a spec into one
  engine batch executed through an
  :class:`~repro.sim.runner.ExperimentRunner` (parallel fan-out and
  persistent-store caching included), producing a grid of
  :class:`SweepCell` measurements,
* :mod:`repro.sweep.analyze` — Pareto frontier (weighted speedup versus
  energy per access), per-axis sensitivity tables and best-config-per-
  workload summaries,
* :mod:`repro.sweep.artifact` — self-contained run directories
  (``spec.json`` / ``results.jsonl`` / ``summary.md``),
* :mod:`repro.sweep.builtin` — the paper's Tables 3-6 expressed as
  built-in specs.

CLI: ``python -m repro sweep <spec.json|builtin-name> --workers N
--store cache.jsonl --out dir/``.
"""

from repro.sweep.analyze import (
    ConfigSummary,
    best_per_workload,
    config_summaries,
    pareto_frontier,
    sensitivity,
    summarize,
)
from repro.sweep.artifact import load_run_dir, write_run_dir
from repro.sweep.builtin import BUILTIN_SPECS, builtin_spec
from repro.sweep.compile import (
    SweepCell,
    SweepResult,
    build_config,
    build_workloads,
    describe_plan,
    expand_points,
    plan_sweep,
    run_sweep,
)
from repro.sweep.spec import (
    KNOWN_AXES,
    Axis,
    SpecError,
    SweepSpec,
    WorkloadSpec,
    describe_point,
    point_key,
)

__all__ = [
    "Axis",
    "KNOWN_AXES",
    "SpecError",
    "SweepSpec",
    "WorkloadSpec",
    "describe_point",
    "point_key",
    "SweepCell",
    "SweepResult",
    "build_config",
    "build_workloads",
    "describe_plan",
    "expand_points",
    "plan_sweep",
    "run_sweep",
    "ConfigSummary",
    "best_per_workload",
    "config_summaries",
    "pareto_frontier",
    "sensitivity",
    "summarize",
    "load_run_dir",
    "write_run_dir",
    "BUILTIN_SPECS",
    "builtin_spec",
]
