"""Built-in sweep specs reproducing the paper's sensitivity tables.

Each of the paper's sensitivity studies (Tables 3-6) is expressed here as
a thin declarative :class:`~repro.sweep.spec.SweepSpec` — one axis, a
mechanism pair and a workload set — proving that the sweep subsystem
subsumes the hand-rolled loops that previously lived in
:mod:`repro.sim.experiments`.  The ``*_via_sweep`` functions run the spec
and aggregate the resulting cell grid into the *exact* dictionaries the
legacy experiment functions returned, bit-identical floats included, so
:mod:`repro.sim.experiments` delegates to them directly.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.speedup import average_percent_improvement
from repro.sim.experiments import ExperimentScale, default_scale
from repro.sweep.compile import SweepCell, SweepResult, run_sweep
from repro.sweep.spec import Axis, SweepSpec, WorkloadSpec, point_key


def _scale(scale: Optional[ExperimentScale]) -> ExperimentScale:
    return scale if scale is not None else default_scale()


def _sensitivity_workloads(scale: ExperimentScale) -> WorkloadSpec:
    return WorkloadSpec(kind="intensive", count=scale.sensitivity_workloads)


def _pairwise_gain_table(
    sweep: SweepResult, axis: str, mechanism: str, baseline: str
) -> dict:
    """Gmean % WS gain of ``mechanism`` over ``baseline``, keyed by ``axis``.

    The shared aggregation behind Tables 4 and 5: per design point, the
    per-workload normalized-WS gains are gmean-averaged (in plan order,
    keeping the floating-point accumulation identical to the legacy
    loops).
    """
    grouped = _grouped(sweep)
    result = {}
    for point in sweep.points:
        gains = []
        for cells in grouped[point_key(point)].values():
            normalized = (
                cells[mechanism].weighted_speedup / cells[baseline].weighted_speedup
            )
            gains.append((normalized - 1.0) * 100.0)
        result[point[axis]] = average_percent_improvement(gains)
    return result


def _grouped(sweep: SweepResult) -> dict[tuple, dict[str, dict[str, SweepCell]]]:
    """Cells grouped as ``{point_key: {workload: {mechanism: cell}}}``.

    Plain dicts preserve insertion order, so iterating a point's
    workloads visits them in plan order — the same order the legacy
    loops consumed ``compare_many`` results in, which keeps every
    floating-point accumulation identical.
    """
    table: dict[tuple, dict[str, dict[str, SweepCell]]] = {}
    for cell in sweep.cells:
        per_point = table.setdefault(point_key(cell.point), {})
        per_point.setdefault(cell.workload, {})[cell.mechanism] = cell
    return table


# ---------------------------------------------------------------------------
# Table 3: core-count sensitivity
# ---------------------------------------------------------------------------
def table3_spec(
    scale: Optional[ExperimentScale] = None,
    core_counts: tuple[int, ...] = (2, 4, 8),
    density_gb: int = 32,
) -> SweepSpec:
    """Table 3 as a sweep: DSARP vs REFab over a core-count axis."""
    scale = _scale(scale)
    return SweepSpec(
        name="table3_core_count",
        description="DSARP vs REFab across core counts (Table 3)",
        axes=(Axis("num_cores", core_counts),),
        mechanisms=("refab", "dsarp"),
        baseline="refab",
        base={"density_gb": density_gb},
        workloads=_sensitivity_workloads(scale),
    )


def table3_core_count_via_sweep(
    runner=None,
    scale: Optional[ExperimentScale] = None,
    core_counts: tuple[int, ...] = (2, 4, 8),
    density_gb: int = 32,
) -> dict[int, dict[str, float]]:
    """Table 3 through the sweep path (same shape as the legacy function)."""
    sweep = run_sweep(
        table3_spec(scale, core_counts=core_counts, density_gb=density_gb),
        runner=runner,
    )
    grouped = _grouped(sweep)
    result: dict[int, dict[str, float]] = {}
    for point in sweep.points:
        cores = point["num_cores"]
        ws_gains, hs_gains, slowdown_reductions, energy_reductions = [], [], [], []
        for cells in grouped[point_key(point)].values():
            refab, dsarp = cells["refab"], cells["dsarp"]
            ws_gains.append(
                (dsarp.weighted_speedup / refab.weighted_speedup - 1.0) * 100.0
            )
            hs_gains.append(
                (dsarp.harmonic_speedup / refab.harmonic_speedup - 1.0) * 100.0
            )
            slowdown_reductions.append(
                (1.0 - dsarp.maximum_slowdown / refab.maximum_slowdown) * 100.0
            )
            energy_reductions.append(
                (1.0 - dsarp.energy_per_access_nj / refab.energy_per_access_nj) * 100.0
            )
        result[cores] = {
            "weighted_speedup_improvement": sum(ws_gains) / len(ws_gains),
            "harmonic_speedup_improvement": sum(hs_gains) / len(hs_gains),
            "maximum_slowdown_reduction": sum(slowdown_reductions)
            / len(slowdown_reductions),
            "energy_per_access_reduction": sum(energy_reductions)
            / len(energy_reductions),
        }
    return result


# ---------------------------------------------------------------------------
# Table 4: tFAW / tRRD sensitivity
# ---------------------------------------------------------------------------
def table4_spec(
    scale: Optional[ExperimentScale] = None,
    tfaw_values: tuple[int, ...] = (5, 10, 15, 20, 25, 30),
    density_gb: int = 32,
) -> SweepSpec:
    """Table 4 as a sweep: SARPpb vs REFpb over a tFAW axis.

    ``tRRD`` follows the paper's ``max(1, tFAW // 5)`` pairing, applied by
    the sweep compiler when ``tfaw`` is swept without an explicit ``trrd``.
    """
    scale = _scale(scale)
    return SweepSpec(
        name="table4_tfaw_sensitivity",
        description="SARPpb vs REFpb as tFAW / tRRD vary (Table 4)",
        axes=(Axis("tfaw", tfaw_values),),
        mechanisms=("refpb", "sarppb"),
        baseline="refpb",
        base={"density_gb": density_gb},
        workloads=_sensitivity_workloads(scale),
    )


def table4_tfaw_via_sweep(
    runner=None,
    scale: Optional[ExperimentScale] = None,
    tfaw_values: tuple[int, ...] = (5, 10, 15, 20, 25, 30),
    density_gb: int = 32,
) -> dict[int, float]:
    """Table 4 through the sweep path (same shape as the legacy function)."""
    sweep = run_sweep(
        table4_spec(scale, tfaw_values=tfaw_values, density_gb=density_gb),
        runner=runner,
    )
    return _pairwise_gain_table(sweep, "tfaw", "sarppb", "refpb")


# ---------------------------------------------------------------------------
# Table 5: subarrays-per-bank sensitivity
# ---------------------------------------------------------------------------
def table5_spec(
    scale: Optional[ExperimentScale] = None,
    subarray_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    density_gb: int = 32,
) -> SweepSpec:
    """Table 5 as a sweep: SARPpb vs REFpb over a subarrays-per-bank axis."""
    scale = _scale(scale)
    return SweepSpec(
        name="table5_subarray_sensitivity",
        description="SARPpb vs REFpb as subarrays per bank vary (Table 5)",
        axes=(Axis("subarrays_per_bank", subarray_counts),),
        mechanisms=("refpb", "sarppb"),
        baseline="refpb",
        base={"density_gb": density_gb},
        workloads=_sensitivity_workloads(scale),
    )


def table5_subarrays_via_sweep(
    runner=None,
    scale: Optional[ExperimentScale] = None,
    subarray_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    density_gb: int = 32,
) -> dict[int, float]:
    """Table 5 through the sweep path (same shape as the legacy function)."""
    sweep = run_sweep(
        table5_spec(scale, subarray_counts=subarray_counts, density_gb=density_gb),
        runner=runner,
    )
    return _pairwise_gain_table(sweep, "subarrays_per_bank", "sarppb", "refpb")


# ---------------------------------------------------------------------------
# Table 6: retention-time sensitivity
# ---------------------------------------------------------------------------
def table6_spec(
    scale: Optional[ExperimentScale] = None,
    retention_ms: float = 64.0,
) -> SweepSpec:
    """Table 6 as a sweep: DSARP vs REFab/REFpb at 64 ms retention."""
    scale = _scale(scale)
    return SweepSpec(
        name="table6_refresh_interval",
        description="DSARP over REFpb / REFab at 64 ms retention (Table 6)",
        axes=(Axis("density_gb", scale.densities),),
        mechanisms=("refab", "refpb", "dsarp"),
        baseline="refab",
        base={"retention_ms": retention_ms},
        workloads=_sensitivity_workloads(scale),
    )


def table6_refresh_interval_via_sweep(
    runner=None,
    scale: Optional[ExperimentScale] = None,
    retention_ms: float = 64.0,
) -> dict[int, dict[str, float]]:
    """Table 6 through the sweep path (same shape as the legacy function)."""
    sweep = run_sweep(table6_spec(scale, retention_ms=retention_ms), runner=runner)
    grouped = _grouped(sweep)
    result: dict[int, dict[str, float]] = {}
    for point in sweep.points:
        over_refab, over_refpb = [], []
        for cells in grouped[point_key(point)].values():
            base_ws = cells["refab"].weighted_speedup
            norm_dsarp = cells["dsarp"].weighted_speedup / base_ws
            norm_refpb = cells["refpb"].weighted_speedup / base_ws
            over_refab.append((norm_dsarp - 1.0) * 100.0)
            over_refpb.append((norm_dsarp / norm_refpb - 1.0) * 100.0)
        result[point["density_gb"]] = {
            "max_refpb": max(over_refpb),
            "gmean_refpb": average_percent_improvement(over_refpb),
            "max_refab": max(over_refab),
            "gmean_refab": average_percent_improvement(over_refab),
        }
    return result


#: Built-in sweep specs runnable by name via ``python -m repro sweep``.
BUILTIN_SPECS = {
    "table3_core_count": table3_spec,
    "table4_tfaw_sensitivity": table4_spec,
    "table5_subarray_sensitivity": table5_spec,
    "table6_refresh_interval": table6_spec,
}


def builtin_spec(name: str, scale: Optional[ExperimentScale] = None) -> SweepSpec:
    """Look up a built-in spec by name (raises ``KeyError`` with choices)."""
    try:
        factory = BUILTIN_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown builtin sweep {name!r}; available: "
            f"{', '.join(sorted(BUILTIN_SPECS))}"
        ) from None
    return factory(scale)
