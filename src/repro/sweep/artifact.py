"""Sweep run-directory artifacts.

Every executed sweep can be written out as a self-contained run directory:

* ``spec.json``    — the exact :class:`~repro.sweep.spec.SweepSpec` that ran
  (re-runnable via ``python -m repro sweep <dir>/spec.json``),
* ``results.jsonl`` — one JSON record per measured
  :class:`~repro.sweep.compile.SweepCell`,
* ``summary.md``   — the rendered Pareto / sensitivity / best-config
  analysis (see :func:`repro.sweep.analyze.summarize`).

:func:`load_run_dir` round-trips a directory back into a
:class:`~repro.sweep.compile.SweepResult` so analyses can be re-rendered
without re-simulating.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.sweep.analyze import summarize
from repro.sweep.compile import SweepCell, SweepResult, expand_points
from repro.sweep.spec import SweepSpec

SPEC_FILE = "spec.json"
RESULTS_FILE = "results.jsonl"
SUMMARY_FILE = "summary.md"


def write_run_dir(
    out_dir: str | os.PathLike,
    result: SweepResult,
    summary: Optional[str] = None,
) -> Path:
    """Write a sweep's artifact directory; returns its path.

    ``summary`` may be passed when the caller already rendered it
    (the CLI prints the same text); otherwise it is generated here.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / SPEC_FILE).write_text(result.spec.to_json() + "\n", encoding="utf-8")
    with (out / RESULTS_FILE).open("w", encoding="utf-8") as handle:
        for cell in result.cells:
            handle.write(json.dumps(cell.to_dict(), sort_keys=True) + "\n")
    text = summary if summary is not None else summarize(result)
    (out / SUMMARY_FILE).write_text(text, encoding="utf-8")
    return out


def load_run_dir(run_dir: str | os.PathLike) -> SweepResult:
    """Rebuild a :class:`SweepResult` from a run directory's artifacts."""
    run = Path(run_dir)
    spec = SweepSpec.load(run / SPEC_FILE)
    cells = []
    with (run / RESULTS_FILE).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                cells.append(SweepCell.from_dict(json.loads(line)))
    return SweepResult(spec=spec, points=expand_points(spec), cells=cells)
