"""Declarative sweep specifications.

A :class:`SweepSpec` describes a multi-axis design-space exploration as
data: named axes over :class:`~repro.config.system.SystemConfig` knobs,
the refresh mechanisms to compare at every point, and the workload set to
drive each configuration with.  Specs are plain values — serializable to
and from JSON — so sweeps can live in version-controlled files and be
executed by the ``python -m repro sweep`` CLI, instead of each new
combination of axes requiring a hand-written loop in
:mod:`repro.sim.experiments`.

The execution and analysis layers live next door:
:mod:`repro.sweep.compile` expands a spec into deterministic
:class:`~repro.engine.jobs.SimulationJob` batches, and
:mod:`repro.sweep.analyze` post-processes the collected results.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

from repro.config.refresh_config import RefreshMechanism
from repro.workloads.mixes import INTENSITY_CATEGORIES

#: Axis names applied as :func:`~repro.config.presets.paper_system` keywords.
PRESET_AXES: tuple[str, ...] = (
    "density_gb",
    "num_cores",
    "retention_ms",
    "subarrays_per_bank",
    "rows_per_bank",
)

#: Axis names applied as DRAM-timing overrides after the preset is built.
TIMING_AXES: tuple[str, ...] = ("tfaw", "trrd")

#: Axis names applied as memory-controller policy overrides (the scheduler
#: and page-management policies of ``repro.controller.policies``).
CONTROLLER_AXES: tuple[str, ...] = ("scheduler", "page_policy", "row_hit_cap")

#: Axis names applied to the workload construction instead of the config.
WORKLOAD_AXES: tuple[str, ...] = ("workload_seed",)

#: Every axis name a spec may sweep over.
KNOWN_AXES: tuple[str, ...] = (
    PRESET_AXES + TIMING_AXES + CONTROLLER_AXES + WORKLOAD_AXES
)

#: Supported expansion modes: the cross product of all axes, or a
#: position-wise zip of equal-length axes.
EXPANSIONS: tuple[str, ...] = ("grid", "zip")

#: Supported workload-set kinds (see :class:`WorkloadSpec`).
WORKLOAD_KINDS: tuple[str, ...] = ("intensive", "category_sweep")


class SpecError(ValueError):
    """A sweep spec is malformed (unknown axis, bad expansion, ...)."""


@dataclass(frozen=True)
class Axis:
    """One named dimension of the design space."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if self.name not in KNOWN_AXES:
            raise SpecError(
                f"unknown axis {self.name!r}; supported axes: {', '.join(KNOWN_AXES)}"
            )
        if not self.values:
            raise SpecError(f"axis {self.name!r} has no values")
        object.__setattr__(self, "values", tuple(self.values))

    def to_dict(self) -> dict:
        return {"name": self.name, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: dict) -> "Axis":
        try:
            return cls(name=data["name"], values=tuple(data["values"]))
        except KeyError as missing:
            raise SpecError(
                f"axis entry {data!r} is missing its {missing.args[0]!r} key"
            ) from None


@dataclass(frozen=True)
class WorkloadSpec:
    """Which workloads to drive every design point with.

    ``kind="intensive"`` builds ``count`` random memory-intensive
    workloads (the paper's sensitivity-study set, Section 5);
    ``kind="category_sweep"`` builds ``count`` workloads per
    memory-intensity category (the figure-level sweep set).
    """

    kind: str = "intensive"
    count: int = 2
    num_cores: int = 8
    seed: int = 0
    categories: tuple[int, ...] = INTENSITY_CATEGORIES

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise SpecError(
                f"unknown workload kind {self.kind!r}; "
                f"expected one of {', '.join(WORKLOAD_KINDS)}"
            )
        if self.count < 1:
            raise SpecError(f"workload count must be positive, got {self.count}")
        if self.num_cores < 1:
            raise SpecError(f"num_cores must be positive, got {self.num_cores}")
        object.__setattr__(self, "categories", tuple(self.categories))
        invalid = [c for c in self.categories if c not in INTENSITY_CATEGORIES]
        if invalid:
            # Caught at spec-load time so --dry-run cannot bless a spec
            # that would crash once workloads are built.
            raise SpecError(
                f"invalid categories {invalid}; expected members of "
                f"{INTENSITY_CATEGORIES}"
            )
        if not self.categories:
            raise SpecError("a category_sweep needs at least one category")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "num_cores": self.num_cores,
            "seed": self.seed,
            "categories": list(self.categories),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        unknown = sorted(
            set(data) - {"kind", "count", "num_cores", "seed", "categories"},
        )
        if unknown:
            raise SpecError(f"unknown workload keys: {', '.join(unknown)}")
        return cls(
            kind=data.get("kind", "intensive"),
            count=data.get("count", 2),
            num_cores=data.get("num_cores", 8),
            seed=data.get("seed", 0),
            categories=tuple(data.get("categories", INTENSITY_CATEGORIES)),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative multi-axis design-space sweep.

    Parameters
    ----------
    name:
        Identifier for the sweep (names the artifact directory).
    axes:
        The swept dimensions, expanded according to ``expansion``:
        ``"grid"`` takes the cross product in declaration order,
        ``"zip"`` pairs equal-length axes position-wise.
    mechanisms:
        Refresh mechanisms compared at every design point.
    baseline:
        The mechanism improvements are normalized to; must be one of
        ``mechanisms``.
    base:
        Fixed configuration knobs shared by every point (same keys as the
        axes); an axis value overrides a ``base`` entry of the same name.
    workloads:
        The workload set (see :class:`WorkloadSpec`).
    """

    name: str
    axes: tuple[Axis, ...]
    mechanisms: tuple[str, ...] = ("refpb", "sarppb")
    baseline: str = "refpb"
    expansion: str = "grid"
    base: dict = field(default_factory=dict)
    workloads: WorkloadSpec = field(default_factory=WorkloadSpec)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("a sweep spec needs a non-empty name")
        object.__setattr__(
            self, "axes", tuple(a if isinstance(a, Axis) else Axis(**a) for a in self.axes)
        )
        if not self.axes:
            raise SpecError("a sweep spec needs at least one axis")
        names = [axis.name for axis in self.axes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SpecError(f"duplicate axes: {', '.join(sorted(duplicates))}")
        if self.expansion not in EXPANSIONS:
            raise SpecError(
                f"unknown expansion {self.expansion!r}; "
                f"expected one of {', '.join(EXPANSIONS)}"
            )
        if self.expansion == "zip":
            lengths = {len(axis.values) for axis in self.axes}
            if len(lengths) > 1:
                raise SpecError(
                    "zip expansion requires equal-length axes, got lengths "
                    f"{sorted(len(a.values) for a in self.axes)}"
                )
        object.__setattr__(self, "mechanisms", tuple(self.mechanisms))
        if not self.mechanisms:
            raise SpecError("a sweep spec needs at least one mechanism")
        for mechanism in self.mechanisms:
            try:
                RefreshMechanism(mechanism)
            except ValueError:
                valid = ", ".join(m.value for m in RefreshMechanism)
                raise SpecError(
                    f"unknown mechanism {mechanism!r}; expected one of {valid}"
                ) from None
        if self.baseline not in self.mechanisms:
            raise SpecError(
                f"baseline {self.baseline!r} is not among the swept mechanisms "
                f"{self.mechanisms}"
            )
        for key in self.base:
            if key not in KNOWN_AXES:
                raise SpecError(
                    f"unknown base knob {key!r}; supported knobs: "
                    f"{', '.join(KNOWN_AXES)}"
                )

    # -- introspection -----------------------------------------------------
    def axis_names(self) -> tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    def num_points(self) -> int:
        """Number of design points the axes expand to."""
        if self.expansion == "zip":
            return len(self.axes[0].values)
        product = 1
        for axis in self.axes:
            product *= len(axis.values)
        return product

    def with_axis_values(self, name: str, values: Sequence) -> "SweepSpec":
        """Return a copy with one axis' values replaced."""
        axes = tuple(
            Axis(axis.name, tuple(values)) if axis.name == name else axis
            for axis in self.axes
        )
        return replace(self, axes=axes)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "expansion": self.expansion,
            "axes": [axis.to_dict() for axis in self.axes],
            "mechanisms": list(self.mechanisms),
            "baseline": self.baseline,
            "base": dict(self.base),
            "workloads": self.workloads.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        known_keys = {
            "name",
            "description",
            "expansion",
            "axes",
            "mechanisms",
            "baseline",
            "base",
            "workloads",
        }
        unknown = sorted(set(data) - known_keys)
        if unknown:
            # A typo'd key would otherwise silently fall back to defaults
            # and run a different sweep than the author intended.
            raise SpecError(
                f"unknown spec keys: {', '.join(unknown)}; "
                f"expected only: {', '.join(sorted(known_keys))}"
            )
        try:
            raw_axes = data["axes"]
        except KeyError:
            raise SpecError("a sweep spec needs an 'axes' list") from None
        axes = tuple(Axis.from_dict(axis) for axis in raw_axes)
        workloads = data.get("workloads", {})
        if not isinstance(workloads, dict):
            raise SpecError(
                f"'workloads' must be an object, got {type(workloads).__name__}"
            )
        workloads = WorkloadSpec.from_dict(workloads)
        mechanisms = tuple(data.get("mechanisms", ("refpb", "sarppb")))
        if not mechanisms:
            raise SpecError("a sweep spec needs at least one mechanism")
        return cls(
            name=data.get("name", ""),
            description=data.get("description", ""),
            expansion=data.get("expansion", "grid"),
            axes=axes,
            mechanisms=mechanisms,
            baseline=data.get("baseline", mechanisms[0]),
            base=dict(data.get("base", {})),
            workloads=workloads,
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid sweep spec JSON: {error}") from None
        if not isinstance(data, dict):
            raise SpecError("a sweep spec must be a JSON object")
        return cls.from_dict(data)

    def save(self, path: str | os.PathLike) -> Path:
        """Write the spec to a JSON file; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "SweepSpec":
        """Read a spec from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def point_key(point: dict) -> tuple:
    """Canonical hashable identity of a design point (sorted axis items)."""
    return tuple(sorted(point.items()))


def describe_point(point: dict) -> str:
    """Short human-readable rendering of a design point."""
    return ", ".join(f"{name}={value}" for name, value in sorted(point.items()))
