"""Post-processing of sweep results.

Three analyses over the :class:`~repro.sweep.compile.SweepCell` grid:

* :func:`pareto_frontier` — the performance/energy trade-off: per design
  configuration (point x mechanism), average weighted speedup versus
  energy per access, with the non-dominated configurations flagged,
* :func:`sensitivity` — per-axis sensitivity tables: how much each
  mechanism improves over the spec's baseline at every value of every
  swept axis (gmean across workloads and the other axes),
* :func:`best_per_workload` — the best configuration for every workload.

:func:`summarize` renders all three through
:mod:`repro.analysis.tables` into the ``summary.md`` artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.metrics.speedup import average_percent_improvement
from repro.sweep.compile import SweepCell, SweepResult
from repro.sweep.spec import describe_point, point_key


@dataclass
class ConfigSummary:
    """Aggregate outcome of one design configuration (point x mechanism)."""

    point: dict
    mechanism: str
    #: Arithmetic mean weighted speedup across the workload set.
    weighted_speedup: float
    #: Mean energy per access (nJ) across the workload set.
    energy_per_access_nj: float
    #: True if no other configuration is at least as good on both metrics
    #: and strictly better on one.
    on_frontier: bool = False

    def to_dict(self) -> dict:
        return {
            "point": dict(self.point),
            "mechanism": self.mechanism,
            "weighted_speedup": self.weighted_speedup,
            "energy_per_access_nj": self.energy_per_access_nj,
            "on_frontier": self.on_frontier,
        }


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def config_summaries(result: SweepResult) -> list[ConfigSummary]:
    """Aggregate the cell grid per (point, mechanism) configuration."""
    grouped: dict[tuple, list[SweepCell]] = {}
    order: list[tuple] = []
    for cell in result.cells:
        key = (point_key(cell.point), cell.mechanism)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(cell)
    summaries = []
    for key in order:
        cells = grouped[key]
        summaries.append(
            ConfigSummary(
                point=dict(cells[0].point),
                mechanism=cells[0].mechanism,
                weighted_speedup=_mean([c.weighted_speedup for c in cells]),
                energy_per_access_nj=_mean([c.energy_per_access_nj for c in cells]),
            )
        )
    return summaries


def _dominates(a: ConfigSummary, b: ConfigSummary) -> bool:
    """True if ``a`` is at least as good as ``b`` everywhere, better once.

    Weighted speedup is maximized and energy per access minimized.
    """
    at_least_as_good = (
        a.weighted_speedup >= b.weighted_speedup
        and a.energy_per_access_nj <= b.energy_per_access_nj
    )
    strictly_better = (
        a.weighted_speedup > b.weighted_speedup
        or a.energy_per_access_nj < b.energy_per_access_nj
    )
    return at_least_as_good and strictly_better


def pareto_frontier(result: SweepResult) -> list[ConfigSummary]:
    """Every configuration, frontier members flagged and sorted first.

    Returns all :func:`config_summaries` with ``on_frontier`` set, ordered
    frontier-first by descending weighted speedup, so the head of the list
    reads as the performance/energy trade-off curve.
    """
    summaries = config_summaries(result)
    for candidate in summaries:
        candidate.on_frontier = not any(
            _dominates(other, candidate) for other in summaries if other is not candidate
        )
    return sorted(
        summaries,
        key=lambda s: (not s.on_frontier, -s.weighted_speedup, s.energy_per_access_nj),
    )


def sensitivity(result: SweepResult) -> dict[str, dict[object, dict[str, float]]]:
    """Per-axis sensitivity of every mechanism's improvement over baseline.

    Returns ``{axis: {value: {mechanism: gmean_percent_improvement}}}``:
    for each swept axis value, the gmean percentage weighted-speedup
    improvement of each non-baseline mechanism over the spec's baseline,
    pooled across the workload set and every other axis.
    """
    spec = result.spec
    baseline = spec.baseline
    index = result.cell_index()
    gains: dict[str, dict[object, dict[str, list[float]]]] = {
        axis.name: {value: {} for value in axis.values} for axis in spec.axes
    }
    for cell in result.cells:
        if cell.mechanism == baseline:
            continue
        base_cell = index.get((point_key(cell.point), cell.workload, baseline))
        if base_cell is None or base_cell.weighted_speedup <= 0:
            continue
        gain = (cell.weighted_speedup / base_cell.weighted_speedup - 1.0) * 100.0
        for axis_name, value in cell.point.items():
            bucket = gains[axis_name][value].setdefault(cell.mechanism, [])
            bucket.append(gain)
    tables: dict[str, dict[object, dict[str, float]]] = {}
    for axis_name, per_value in gains.items():
        tables[axis_name] = {
            value: {
                mechanism: average_percent_improvement(values)
                for mechanism, values in mechanisms.items()
            }
            for value, mechanisms in per_value.items()
        }
    return tables


def _workload_label(cell: SweepCell) -> str:
    """Identity a cell's workload is ranked under.

    Workload *names* (``mix100_00``) do not encode the axes that change
    the workload itself — sweeping ``num_cores`` or ``workload_seed``
    builds a different benchmark mix (and a different weighted-speedup
    scale) under the same name.  Ranking across those would compare
    incomparable workloads, so the distinguishing axis values become part
    of the label.
    """
    qualifiers = [
        f"{axis}={cell.point[axis]}"
        for axis in ("num_cores", "workload_seed")
        if axis in cell.point
    ]
    if not qualifiers:
        return cell.workload
    return f"{cell.workload} ({', '.join(qualifiers)})"


def best_per_workload(result: SweepResult) -> dict[str, ConfigSummary]:
    """The highest-weighted-speedup configuration for every workload.

    Workloads are keyed by :func:`_workload_label`, so design points that
    rebuild the workload (core-count or seed axes) rank separately.
    """
    best: dict[str, SweepCell] = {}
    for cell in result.cells:
        label = _workload_label(cell)
        incumbent = best.get(label)
        if incumbent is None or cell.weighted_speedup > incumbent.weighted_speedup:
            best[label] = cell
    return {
        label: ConfigSummary(
            point=dict(cell.point),
            mechanism=cell.mechanism,
            weighted_speedup=cell.weighted_speedup,
            energy_per_access_nj=cell.energy_per_access_nj,
        )
        for label, cell in best.items()
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def format_pareto(summaries: list[ConfigSummary]) -> str:
    """Text table of every configuration, frontier members starred."""
    rows = [
        [
            "*" if summary.on_frontier else "",
            describe_point(summary.point),
            summary.mechanism,
            f"{summary.weighted_speedup:.4f}",
            f"{summary.energy_per_access_nj:.3f}",
        ]
        for summary in summaries
    ]
    return format_table(
        ["Pareto", "Design point", "Mechanism", "Avg WS", "Energy/access (nJ)"],
        rows,
        title="Pareto frontier (weighted speedup vs energy per access)",
    )


def format_sensitivity(
    tables: dict[str, dict[object, dict[str, float]]],
    baseline: str,
) -> str:
    """Text tables: one per swept axis, mechanisms as columns."""
    sections = []
    for axis_name, per_value in tables.items():
        mechanisms = sorted({m for row in per_value.values() for m in row})
        if not mechanisms:
            continue
        rows = [
            [str(value)] + [f"{per_value[value].get(m, 0.0):+.2f}" for m in mechanisms]
            for value in per_value
        ]
        sections.append(
            format_table(
                [axis_name] + [f"{m} (% vs {baseline})" for m in mechanisms],
                rows,
                title=f"Sensitivity to {axis_name}",
            )
        )
    return "\n\n".join(sections)


def format_best_per_workload(best: dict[str, ConfigSummary]) -> str:
    rows = [
        [
            workload,
            describe_point(summary.point),
            summary.mechanism,
            f"{summary.weighted_speedup:.4f}",
        ]
        for workload, summary in best.items()
    ]
    return format_table(
        ["Workload", "Best design point", "Mechanism", "WS"],
        rows,
        title="Best configuration per workload",
    )


def summarize(result: SweepResult) -> str:
    """Render the full sweep analysis as a markdown document."""
    spec = result.spec
    axes = ", ".join(
        f"{axis.name} in {list(axis.values)}" for axis in spec.axes
    )
    frontier = pareto_frontier(result)
    lines = [
        f"# Sweep summary: {spec.name}",
        "",
        spec.description or "(no description)",
        "",
        f"- axes ({spec.expansion}): {axes}",
        f"- mechanisms: {', '.join(spec.mechanisms)} (baseline: {spec.baseline})",
        f"- workloads: {spec.workloads.kind} x {spec.workloads.count}"
        f" ({spec.workloads.num_cores} cores)",
        f"- design points: {len(result.points)}; measured cells: {len(result.cells)}",
        "",
        "```",
        format_pareto(frontier),
        "```",
        "",
        "```",
        format_sensitivity(sensitivity(result), spec.baseline),
        "```",
        "",
        "```",
        format_best_per_workload(best_per_workload(result)),
        "```",
        "",
    ]
    return "\n".join(lines)
