"""Compilation and execution of sweep specs.

:func:`expand_points` turns a :class:`~repro.sweep.spec.SweepSpec` into its
deterministic list of design points; :func:`build_config` and
:func:`build_workloads` realize one point as a
:class:`~repro.config.system.SystemConfig` and workload set; and
:func:`run_sweep` plans every (workload, config, mechanism) simulation of
the whole sweep as **one** batch through an
:class:`~repro.sim.runner.ExperimentRunner`, so a parallel executor fans
the entire design space out at once and a warm
:class:`~repro.engine.store.ResultStore` makes re-sweeps free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # runner imports stay lazy to avoid an import cycle
    from repro.sim.runner import ExperimentRunner

from repro.config.presets import paper_system
from repro.config.system import SystemConfig
from repro.sweep.spec import CONTROLLER_AXES, PRESET_AXES, SweepSpec, point_key
from repro.workloads.mixes import (
    Workload,
    make_workload_sweep,
    memory_intensive_workloads,
)


def expand_points(spec: SweepSpec) -> list[dict]:
    """Expand a spec's axes into its ordered list of design points.

    Each point is a ``{axis_name: value}`` dict.  Grid expansion takes the
    cross product of the axes in declaration order (the last axis varies
    fastest); zip expansion pairs the axes position-wise.  The order is a
    pure function of the spec, so re-running a sweep plans the identical
    job sequence.
    """
    names = spec.axis_names()
    if spec.expansion == "zip":
        rows = zip(*(axis.values for axis in spec.axes))
    else:
        rows = itertools.product(*(axis.values for axis in spec.axes))
    return [dict(zip(names, row)) for row in rows]


def build_config(spec: SweepSpec, point: dict) -> SystemConfig:
    """Realize one design point as a system configuration.

    The point's values override the spec's ``base`` knobs; preset-level
    knobs are forwarded to :func:`~repro.config.presets.paper_system`, the
    timing knobs (``tfaw`` / ``trrd``) are applied on top (mirroring the
    paper's Table 4 sweep), and the controller-policy knobs
    (``scheduler`` / ``page_policy`` / ``row_hit_cap``) override the
    controller configuration.  When ``tfaw`` is swept without an explicit
    ``trrd``, ``tRRD`` follows the paper's ``max(1, tFAW // 5)`` pairing.
    """
    knobs = dict(spec.base)
    knobs.update(point)
    preset_kwargs = {name: knobs[name] for name in PRESET_AXES if name in knobs}
    config = paper_system(**preset_kwargs)
    if "tfaw" in knobs or "trrd" in knobs:
        tfaw = knobs.get("tfaw", config.dram.timings.tFAW)
        trrd = knobs.get("trrd", max(1, tfaw // 5))
        config = replace(config, dram=config.dram.with_tfaw(tfaw, trrd))
    controller_kwargs = {
        name: knobs[name] for name in CONTROLLER_AXES if name in knobs
    }
    if controller_kwargs:
        config = replace(
            config, controller=replace(config.controller, **controller_kwargs)
        )
    return config


def build_workloads(spec: SweepSpec, point: dict) -> list[Workload]:
    """Build the workload set driving one design point.

    The workload construction follows the spec's :class:`WorkloadSpec`,
    with the ``num_cores`` and ``workload_seed`` axes (when swept)
    overriding its fixed values — a core-count axis must change the
    workloads and the configuration together, as in the paper's Table 3.
    """
    workload_spec = spec.workloads
    num_cores = point.get(
        "num_cores",
        spec.base.get("num_cores", workload_spec.num_cores),
    )
    seed = point.get(
        "workload_seed",
        spec.base.get("workload_seed", workload_spec.seed),
    )
    if workload_spec.kind == "intensive":
        return memory_intensive_workloads(
            count=workload_spec.count, num_cores=num_cores, seed=seed
        )
    return make_workload_sweep(
        workloads_per_category=workload_spec.count,
        num_cores=num_cores,
        seed=seed,
        categories=workload_spec.categories,
    )


@dataclass
class SweepCell:
    """One measured (design point, workload, mechanism) combination."""

    point: dict
    workload: str
    category: int
    mechanism: str
    weighted_speedup: float
    harmonic_speedup: float
    maximum_slowdown: float
    energy_per_access_nj: float

    def to_dict(self) -> dict:
        return {
            "point": dict(self.point),
            "workload": self.workload,
            "category": self.category,
            "mechanism": self.mechanism,
            "weighted_speedup": self.weighted_speedup,
            "harmonic_speedup": self.harmonic_speedup,
            "maximum_slowdown": self.maximum_slowdown,
            "energy_per_access_nj": self.energy_per_access_nj,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepCell":
        return cls(
            point=dict(data["point"]),
            workload=data["workload"],
            category=data.get("category", -1),
            mechanism=data["mechanism"],
            weighted_speedup=data["weighted_speedup"],
            harmonic_speedup=data["harmonic_speedup"],
            maximum_slowdown=data["maximum_slowdown"],
            energy_per_access_nj=data["energy_per_access_nj"],
        )


@dataclass
class SweepResult:
    """Everything a sweep produced: the spec, its points and all cells.

    Cells are ordered point-major (then workload, then mechanism), the
    same deterministic order the sweep was planned in.
    """

    spec: SweepSpec
    points: list[dict]
    cells: list[SweepCell]

    def mechanisms(self) -> tuple[str, ...]:
        return self.spec.mechanisms

    def workload_names(self) -> list[str]:
        """Distinct workload names, in first-seen (plan) order."""
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.workload, None)
        return list(seen)

    def cell_index(self) -> dict[tuple, SweepCell]:
        """Lookup table keyed by (point key, workload, mechanism)."""
        return {
            (point_key(cell.point), cell.workload, cell.mechanism): cell
            for cell in self.cells
        }

    def cells_at(self, point: dict) -> list[SweepCell]:
        """Every cell measured at one design point, in plan order."""
        key = point_key(point)
        return [cell for cell in self.cells if point_key(cell.point) == key]


def plan_sweep(
    spec: SweepSpec,
) -> tuple[list[dict], list[tuple[Workload, SystemConfig]], list[tuple[int, Workload, str]]]:
    """Expand a spec into its (workload, config) simulation plan.

    Returns the expanded points, the ordered (workload, config) pairs to
    run, and per-pair provenance ``(point_index, workload, mechanism)``
    used to assemble :class:`SweepCell` records after execution.
    """
    points = expand_points(spec)
    pairs: list[tuple[Workload, SystemConfig]] = []
    provenance: list[tuple[int, Workload, str]] = []
    for point_index, point in enumerate(points):
        config = build_config(spec, point)
        workloads = build_workloads(spec, point)
        for workload in workloads:
            for mechanism in spec.mechanisms:
                pairs.append((workload, config.with_mechanism(mechanism)))
                provenance.append((point_index, workload, mechanism))
    return points, pairs, provenance


def run_sweep(
    spec: SweepSpec,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Execute a sweep spec end to end and collect its cells.

    The whole design space is submitted as a single engine batch
    (including the alone-run simulations that normalize weighted speedup),
    so with a :class:`~repro.engine.executor.ParallelExecutor` every
    simulation of the sweep fans out concurrently, and with a persistent
    store a repeated sweep performs zero new simulations.
    """
    from repro.sim.runner import ExperimentRunner, get_default_runner

    runner = runner if runner is not None else get_default_runner()
    points, pairs, provenance = plan_sweep(spec)
    results = runner.run_many(pairs)
    cells = [
        SweepCell(
            point=points[point_index],
            workload=workload.name,
            category=workload.category,
            mechanism=mechanism,
            weighted_speedup=result.weighted_speedup,
            harmonic_speedup=result.harmonic_speedup,
            maximum_slowdown=result.maximum_slowdown,
            energy_per_access_nj=result.energy_per_access_nj,
        )
        for (point_index, workload, mechanism), result in zip(provenance, results)
    ]
    return SweepResult(spec=spec, points=points, cells=cells)


def describe_plan(spec: SweepSpec) -> str:
    """One-paragraph summary of what a spec expands to (for the CLI).

    The workload count is derived from the spec alone — every point
    builds the same number of workloads, so nothing needs constructing
    here.
    """
    points = spec.num_points()
    workload_spec = spec.workloads
    workloads = workload_spec.count
    if workload_spec.kind == "category_sweep":
        workloads *= len(workload_spec.categories)
    simulations = points * workloads * len(spec.mechanisms)
    axes = " x ".join(
        f"{axis.name}[{len(axis.values)}]" for axis in spec.axes
    )
    return (
        f"sweep {spec.name!r}: {axes} -> {points} points x "
        f"{workloads} workloads x {len(spec.mechanisms)} mechanisms = "
        f"{simulations} measured simulations (+ alone runs)"
    )
