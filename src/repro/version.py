"""Version information for the repro package."""

__version__ = "1.0.0"

#: Paper reproduced by this package.
PAPER_TITLE = "Improving DRAM Performance by Parallelizing Refreshes with Accesses"
PAPER_VENUE = "HPCA 2014"
PAPER_AUTHORS = (
    "Kevin K. Chang",
    "Donghyuk Lee",
    "Zeshan Chishti",
    "Alaa R. Alameldeen",
    "Chris Wilkerson",
    "Yoongu Kim",
    "Onur Mutlu",
)
