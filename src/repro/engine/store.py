"""Persistent result stores keyed by job fingerprint.

A :class:`ResultStore` maps the stable string key of a
:class:`~repro.engine.jobs.SimulationJob` to its
:class:`~repro.sim.results.SimulationResult`.  Two implementations are
provided:

* :class:`InMemoryStore` — a plain dict, useful for tests and for sharing
  results inside one process,
* :class:`JsonlStore` — an append-only JSON-lines file.  Every ``put``
  appends one self-contained record, so concurrent runs warming the same
  cache cannot corrupt previously written results, and a store can be
  re-opened by a later process (or CI run) to skip completed simulations.

A third, the WAL-mode :class:`~repro.engine.sqlite_store.SqliteStore`,
lives in its own module; :func:`open_store` picks a backend by name or by
file extension (``.sqlite`` / ``.sqlite3`` / ``.db`` open as SQLite,
everything else as JSONL), which is what the CLI's ``--store-backend``
flag feeds.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # avoid repro.sim <-> repro.engine import cycle
    from repro.sim.results import SimulationResult


class ResultStore(ABC):
    """Interface for persistent simulation-result caches."""

    @abstractmethod
    def get(self, key: str) -> Optional[SimulationResult]:
        """The stored result for ``key``, or ``None``."""

    @abstractmethod
    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` (last write wins)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of distinct keys stored."""

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


class InMemoryStore(ResultStore):
    """A dict-backed store; contents die with the process."""

    def __init__(self) -> None:
        self._results: dict[str, SimulationResult] = {}

    def get(self, key: str) -> Optional[SimulationResult]:
        return self._results.get(key)

    def put(self, key: str, result: SimulationResult) -> None:
        self._results[key] = result

    def __len__(self) -> int:
        return len(self._results)

    def keys(self) -> Iterator[str]:
        return iter(self._results)


#: Backend names ``open_store`` (and the CLI's ``--store-backend``) accept.
STORE_BACKENDS = ("auto", "jsonl", "sqlite")

#: File extensions the ``auto`` backend opens as SQLite.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def open_store(path: str | os.PathLike, backend: str = "auto") -> ResultStore:
    """Open a persistent result store, choosing the backend.

    ``backend="auto"`` infers from the file extension; ``"jsonl"`` and
    ``"sqlite"`` force a format regardless of name.  Both backends share
    the same fingerprint-digest keys, so a path always reopens with the
    backend that created it as long as the extension is kept.
    """
    if backend not in STORE_BACKENDS:
        raise ValueError(
            f"unknown store backend {backend!r}; expected one of "
            f"{', '.join(STORE_BACKENDS)}"
        )
    if backend == "auto":
        suffix = Path(path).suffix.lower()
        backend = "sqlite" if suffix in _SQLITE_SUFFIXES else "jsonl"
    if backend == "sqlite":
        from repro.engine.sqlite_store import SqliteStore

        return SqliteStore(path)
    return JsonlStore(path)


class JsonlStore(ResultStore):
    """An on-disk store: one JSON record per line, append-only.

    The file is read once on open; later ``put`` calls append to both the
    in-memory index and the file.  Records carry their key and the full
    :meth:`SimulationResult.to_dict` payload, so any line is independently
    interpretable and duplicated keys resolve to the latest record.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._results: dict[str, SimulationResult] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        from repro.sim.results import SimulationResult

        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                # A process killed mid-append leaves a truncated last line;
                # results are recomputable, so skip anything unreadable
                # rather than making the whole store unusable.
                try:
                    record = json.loads(line)
                    self._results[record["key"]] = SimulationResult.from_dict(
                        record["result"]
                    )
                except (ValueError, KeyError, TypeError):
                    continue

    def get(self, key: str) -> Optional[SimulationResult]:
        return self._results.get(key)

    def put(self, key: str, result: SimulationResult) -> None:
        self._results[key] = result
        record = {"key": key, "result": result.to_dict()}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def __len__(self) -> int:
        return len(self._results)

    def keys(self) -> Iterator[str]:
        return iter(self._results)

    def record_count(self) -> int:
        """Lines currently in the file, stale duplicates included."""
        if not self.path.exists():
            return 0
        with self.path.open("r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())

    def compact(self) -> dict:
        """Rewrite the file keeping only the latest record per key.

        Append-only last-write-wins means re-put keys accumulate stale
        lines forever; compaction rewrites the live in-memory index to a
        temporary file and atomically replaces the original, so a crash
        mid-compact leaves the old store intact.  Returns before/after
        record and byte counts.
        """
        records_before = self.record_count()
        bytes_before = self.path.stat().st_size if self.path.exists() else 0
        if self._results:
            tmp_path = self.path.with_name(self.path.name + ".compact.tmp")
            with tmp_path.open("w", encoding="utf-8") as handle:
                for key, result in self._results.items():
                    record = {"key": key, "result": result.to_dict()}
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            os.replace(tmp_path, self.path)
        elif self.path.exists():
            self.path.write_text("", encoding="utf-8")
        bytes_after = self.path.stat().st_size if self.path.exists() else 0
        return {
            "records_before": records_before,
            "records_after": len(self._results),
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
        }
