"""Deterministic job-batch executors.

Executors take a batch of :class:`~repro.engine.jobs.SimulationJob` specs
and return their results *in batch order*.  Both executors consult an
optional :class:`~repro.engine.store.ResultStore` before simulating and
write every fresh result back, and both deduplicate repeated fingerprints
inside a batch, so a job is never simulated twice.

Because each simulation is a pure function of its job spec (the simulator
is deterministic given the seed), the :class:`ParallelExecutor` produces
results identical to the :class:`SerialExecutor` for any worker count —
parallelism changes wall-clock time, never outcomes.  The parallel
fan-out is a work-stealing shard queue (:mod:`repro.engine.queue`): job
batches are chunked into cost-balanced shards, idle workers steal queued
shards, hung jobs are killed on a per-job timeout, failing jobs retry
with exponential backoff, and a worker death re-queues its in-flight
shard so the run completes with a warning instead of crashing.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import repro.obs.profile as obs_profile
from repro.engine.jobs import SimulationJob, execute_job
from repro.engine.progress import (
    SOURCE_SIMULATED,
    SOURCE_STORE,
    JobEvent,
    ProgressCallback,
)
from repro.engine.queue import (
    RETRY_BACKOFF_S,
    SHARDS_PER_WORKER,
    CostModel,
    ShardDispatcher,
)
from repro.engine.remote import RemoteCoordinator
from repro.engine.store import ResultStore
from repro.stats import StatsSchema, StatsStruct, register_schema

if TYPE_CHECKING:  # avoid repro.sim <-> repro.engine import cycle
    from repro.sim.results import SimulationResult


@dataclass
class ExecutorStats(StatsStruct):
    """Cumulative counters across every batch an executor has run."""

    SCHEMA = register_schema(
        StatsSchema(
            "executor",
            fields=(
                "jobs",
                "store_hits",
                "simulated",
                "elapsed_s",
                "shards",
                "steals",
                "retries",
                "timeouts",
                "worker_failures",
                "remote_workers",
                "bytes_sent",
                "bytes_received",
                "reassignments",
                "calibrated_jobs",
            ),
        )
    )

    jobs: int = 0
    store_hits: int = 0
    simulated: int = 0
    elapsed_s: float = 0.0
    #: Shards planned for work-stealing dispatch (parallel executor only).
    shards: int = 0
    #: Shards executed by a worker other than the planner's preferred one.
    steals: int = 0
    #: Job re-executions scheduled after an error, crash or timeout.
    retries: int = 0
    #: Jobs killed for exceeding the per-job timeout.
    timeouts: int = 0
    #: Worker processes that died mid-run and were replaced.
    worker_failures: int = 0
    #: Remote workers that completed the TCP handshake (``--serve`` runs).
    remote_workers: int = 0
    #: Protocol bytes streamed to / received from remote workers.
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Shards pulled back from a dead remote worker and re-queued.
    reassignments: int = 0
    #: Jobs whose shard-planning cost came from the calibrated EWMA
    #: table rather than the static cycles x cores estimate.
    calibrated_jobs: int = 0

    def snapshot(self) -> "ExecutorStats":
        """Immutable copy, for before/after delta accounting."""
        return replace(self)

    def delta(self, since: "ExecutorStats") -> "ExecutorStats":
        """Counter movement since an earlier :meth:`snapshot`.

        Lets callers (the benchmark harness, progress reporting) attribute
        a slice of a long-lived executor's cumulative counters to one
        phase of work without resetting shared state.  The subtraction is
        the schema's :meth:`~repro.stats.StatsSchema.diff`, so fields added
        to the schema can never be silently dropped from deltas.
        """
        return ExecutorStats(**self.SCHEMA.diff(self.as_dict(), since.as_dict()))


class JobExecutor(ABC):
    """Runs job batches, resolving each job from the store when possible."""

    def __init__(self) -> None:
        self.stats = ExecutorStats()

    def run(
        self,
        jobs: Iterable[SimulationJob],
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> list[SimulationResult]:
        """Run a batch; the result list is aligned with the input order."""
        jobs = list(jobs)
        total = len(jobs)
        start = perf_counter()
        results: dict[str, SimulationResult] = {}
        order: list[str] = []
        pending: list[tuple[int, SimulationJob]] = []
        pending_keys: set[str] = set()
        for index, job in enumerate(jobs):
            key = job.key()
            order.append(key)
            if key in results or key in pending_keys:
                continue
            stored = store.get(key) if store is not None else None
            if stored is not None:
                results[key] = stored
                self.stats.store_hits += 1
                if progress is not None:
                    progress(
                        JobEvent(
                            index=index,
                            total=total,
                            key=key,
                            label=job.describe(),
                            source=SOURCE_STORE,
                        )
                    )
            else:
                pending.append((index, job))
                pending_keys.add(key)
        if pending:
            executed = self._execute_pending(pending, total, progress, store)
            for (_, job), result in zip(pending, executed):
                results[job.key()] = result
        self.stats.jobs += total
        self.stats.simulated += len(pending)
        self.stats.elapsed_s += perf_counter() - start
        return [results[key] for key in order]

    @abstractmethod
    def _execute_pending(
        self,
        pending: Sequence[tuple[int, SimulationJob]],
        total: int,
        progress: Optional[ProgressCallback],
        store: Optional[ResultStore],
    ) -> list["SimulationResult"]:
        """Simulate the cache-missing jobs; aligned with ``pending``.

        Implementations write each result to ``store`` as soon as it
        completes, so an interrupted batch still warms the store with
        everything finished so far.
        """


class SerialExecutor(JobExecutor):
    """Runs every job in-process, one after another."""

    def _execute_pending(self, pending, total, progress, store):
        results = []
        for index, job in pending:
            job_start = perf_counter()
            result = execute_job(job)
            elapsed_s = perf_counter() - job_start
            _record_job_span(job, elapsed_s)
            results.append(result)
            if store is not None:
                store.put(job.key(), result)
            if progress is not None:
                progress(
                    JobEvent(
                        index=index,
                        total=total,
                        key=job.key(),
                        label=job.describe(),
                        source=SOURCE_SIMULATED,
                        elapsed_s=elapsed_s,
                    )
                )
        return results


def _record_job_span(job: SimulationJob, elapsed_s: float) -> None:
    """Feed one job's wall time to the active span profiler, if any.

    Emitted beside the existing progress events: the aggregate
    ``engine.job`` span measures total simulation time, and the per-job
    label makes slow cells stand out in the ``repro profile`` table.
    """
    profiler = obs_profile.ACTIVE
    if profiler is not None:
        profiler.add("engine.job", elapsed_s)
        profiler.add(f"engine.job:{job.describe()}", elapsed_s)


class ParallelExecutor(JobExecutor):
    """Fans a batch out over a work-stealing shard queue of workers.

    Jobs and results cross the process boundary by pickling; results are
    reassembled in batch order, so the outcome is byte-identical to the
    serial executor regardless of ``workers``, shard plan or completion
    order.  Resilience knobs:

    ``max_retries``
        Per-job retry budget.  A job whose worker crashes, whose
        execution raises, or which exceeds ``job_timeout`` is re-queued
        with exponential backoff up to this many times; exhausting the
        budget raises :class:`~repro.engine.queue.JobFailedError` after
        the rest of the batch drains.
    ``job_timeout``
        Optional per-job wall-clock limit in seconds.  A hung simulation
        no longer stalls the batch forever: its worker is killed and the
        job retried.
    ``serve``
        Optional ``(host, port)``: open a TCP coordinator
        (:mod:`repro.engine.remote`) so remote ``repro worker``
        processes can join the shard queue.  ``workers=0`` is then
        allowed and means serve-only — every job runs on remote hosts
        unless they all die, in which case a local worker finishes the
        batch.  The coordinator outlives batches (workers stay
        connected across a sweep); call :meth:`shutdown_remote` to send
        the shutdown frame and release the port.
    ``min_workers``
        With ``serve``, block before the first batch until this many
        remote workers have joined (bounded by
        ``min_workers_timeout_s``).

    Every finished job's wall-clock feeds a calibrated
    :class:`~repro.engine.queue.CostModel`, so later batches on the same
    executor plan shards from measured seconds instead of the static
    cycles x cores estimate.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_retries: int = 2,
        job_timeout: Optional[float] = None,
        shards_per_worker: int = SHARDS_PER_WORKER,
        retry_backoff_s: float = RETRY_BACKOFF_S,
        serve: Optional[tuple[str, int]] = None,
        min_workers: int = 0,
        min_workers_timeout_s: float = 300.0,
    ) -> None:
        super().__init__()
        if workers is not None and workers < 1 and serve is None:
            raise ValueError(f"workers must be positive, got {workers}")
        if workers is not None and workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if min_workers > 0 and serve is None:
            raise ValueError("min_workers requires serve=(host, port)")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.shards_per_worker = shards_per_worker
        self.retry_backoff_s = retry_backoff_s
        self.min_workers = min_workers
        self.min_workers_timeout_s = min_workers_timeout_s
        self.cost_model = CostModel()
        self.coordinator: Optional[RemoteCoordinator] = None
        if serve is not None:
            host, port = serve
            self.coordinator = RemoteCoordinator(
                stats=self.stats, host=host, port=port, job_timeout=job_timeout
            )
        self._waited_for_workers = False
        self._dispatcher: Optional[ShardDispatcher] = None

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers while a batch is running (else [])."""
        dispatcher = self._dispatcher
        return dispatcher.worker_pids() if dispatcher is not None else []

    def shutdown_remote(self) -> None:
        """Send remote workers the shutdown frame and close the port."""
        if self.coordinator is not None:
            self.coordinator.close()
            self.coordinator = None

    def _execute_pending(self, pending, total, progress, store):
        jobs = [job for _, job in pending]
        indexes = [index for index, _ in pending]

        if (
            self.coordinator is not None
            and self.min_workers > 0
            and not self._waited_for_workers
        ):
            if not self.coordinator.wait_for_workers(
                self.min_workers, self.min_workers_timeout_s
            ):
                raise RuntimeError(
                    f"timed out after {self.min_workers_timeout_s:.0f}s waiting "
                    f"for {self.min_workers} remote worker(s) on "
                    f"{self.coordinator.host}:{self.coordinator.port}"
                )
            self._waited_for_workers = True

        def on_result(slot, result, elapsed_s, attempts):
            job = jobs[slot]
            _record_job_span(job, elapsed_s)
            self.cost_model.observe(job, elapsed_s)
            if store is not None:
                store.put(job.key(), result)
            if progress is not None:
                progress(
                    JobEvent(
                        index=indexes[slot],
                        total=total,
                        key=job.key(),
                        label=job.describe(),
                        source=SOURCE_SIMULATED,
                        elapsed_s=elapsed_s,
                        attempts=attempts,
                    )
                )

        dispatcher = ShardDispatcher(
            workers=self.workers,
            stats=self.stats,
            on_result=on_result,
            max_retries=self.max_retries,
            job_timeout=self.job_timeout,
            shards_per_worker=self.shards_per_worker,
            retry_backoff_s=self.retry_backoff_s,
            remote=self.coordinator,
            cost_model=self.cost_model,
        )
        self._dispatcher = dispatcher
        try:
            return dispatcher.run(jobs)
        finally:
            self._dispatcher = None
