"""Parallel experiment engine.

The engine decouples *what* to simulate from *how* the simulations are
executed and *where* their results live:

* :mod:`repro.engine.jobs` — :class:`SimulationJob`, a picklable spec that
  captures one simulation by fingerprint (config, workload, cycles, warmup,
  seed),
* :mod:`repro.engine.executor` — :class:`SerialExecutor` and
  :class:`ParallelExecutor`, which run job batches deterministically (the
  parallel fan-out produces results identical to serial execution for any
  worker count),
* :mod:`repro.engine.queue` — the work-stealing shard queue behind the
  parallel executor: cost-balanced shard planning, per-job timeout and
  bounded retry with exponential backoff, and worker-death recovery (an
  in-flight shard is re-queued and a replacement worker spawned, so the
  run completes with a warning instead of crashing),
* :mod:`repro.engine.store` — :class:`ResultStore` implementations
  (:class:`InMemoryStore`, :class:`JsonlStore`, and the WAL-mode
  concurrent-safe :class:`SqliteStore`) keyed by job fingerprint, so
  results persist across processes, benchmarks and CI runs and a killed
  run resumes from the store with zero re-simulation,
* :mod:`repro.engine.remote` — multi-host fan-out: a TCP shard-dispatch
  coordinator (``--serve HOST:PORT``) and the ``repro worker`` runtime,
  speaking a length-prefixed JSON protocol, so sweep throughput scales
  with hosts while results stay bit-identical to a serial run,
* :mod:`repro.engine.progress` — job-level progress events and callbacks.

The :class:`~repro.sim.runner.ExperimentRunner` plans job batches and
submits them through an executor; the CLI (``python -m repro``) wires a
:class:`JsonlStore` underneath so figure-level sweeps warm a shared
on-disk cache.
"""

from repro.engine.executor import (
    ExecutorStats,
    JobExecutor,
    ParallelExecutor,
    SerialExecutor,
)
from repro.engine.jobs import SimulationJob, execute_job
from repro.engine.progress import (
    JobEvent,
    ProgressCallback,
    ProgressCollector,
    ProgressPrinter,
)
from repro.engine.queue import (
    CostModel,
    JobFailedError,
    Shard,
    ShardDispatcher,
    plan_shards,
)
from repro.engine.remote import (
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    RemoteCoordinator,
    parse_hostport,
    run_worker,
)
from repro.engine.sqlite_store import SqliteStore, copy_store
from repro.engine.store import (
    STORE_BACKENDS,
    InMemoryStore,
    JsonlStore,
    ResultStore,
    open_store,
)

__all__ = [
    "SimulationJob",
    "execute_job",
    "JobExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "ExecutorStats",
    "JobFailedError",
    "Shard",
    "ShardDispatcher",
    "CostModel",
    "plan_shards",
    "RemoteCoordinator",
    "FrameDecoder",
    "FrameError",
    "PROTOCOL_VERSION",
    "parse_hostport",
    "run_worker",
    "JobEvent",
    "ProgressCallback",
    "ProgressCollector",
    "ProgressPrinter",
    "ResultStore",
    "InMemoryStore",
    "JsonlStore",
    "SqliteStore",
    "copy_store",
    "open_store",
    "STORE_BACKENDS",
]
