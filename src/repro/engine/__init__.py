"""Parallel experiment engine.

The engine decouples *what* to simulate from *how* the simulations are
executed and *where* their results live:

* :mod:`repro.engine.jobs` — :class:`SimulationJob`, a picklable spec that
  captures one simulation by fingerprint (config, workload, cycles, warmup,
  seed),
* :mod:`repro.engine.executor` — :class:`SerialExecutor` and
  :class:`ParallelExecutor`, which run job batches deterministically (the
  parallel fan-out produces results identical to serial execution for any
  worker count),
* :mod:`repro.engine.store` — :class:`ResultStore` implementations
  (:class:`InMemoryStore`, :class:`JsonlStore`) keyed by job fingerprint,
  so results persist across processes, benchmarks and CI runs,
* :mod:`repro.engine.progress` — job-level progress events and callbacks.

The :class:`~repro.sim.runner.ExperimentRunner` plans job batches and
submits them through an executor; the CLI (``python -m repro``) wires a
:class:`JsonlStore` underneath so figure-level sweeps warm a shared
on-disk cache.
"""

from repro.engine.executor import (
    ExecutorStats,
    JobExecutor,
    ParallelExecutor,
    SerialExecutor,
)
from repro.engine.jobs import SimulationJob, execute_job
from repro.engine.progress import (
    JobEvent,
    ProgressCallback,
    ProgressCollector,
    ProgressPrinter,
)
from repro.engine.store import InMemoryStore, JsonlStore, ResultStore

__all__ = [
    "SimulationJob",
    "execute_job",
    "JobExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "ExecutorStats",
    "JobEvent",
    "ProgressCallback",
    "ProgressCollector",
    "ProgressPrinter",
    "ResultStore",
    "InMemoryStore",
    "JsonlStore",
]
