"""Job-level progress events for the experiment engine.

Executors emit one :class:`JobEvent` per completed job, telling listeners
whether the result was simulated or recalled from a store.  Callbacks are
plain callables, so the CLI, tests and notebooks can all observe the same
stream; :class:`ProgressPrinter` renders events to a terminal and
:class:`ProgressCollector` accumulates them for assertions and summaries.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Optional, TextIO

#: How a job's result was obtained.
SOURCE_SIMULATED = "simulated"
SOURCE_STORE = "store"
SOURCE_MEMORY = "memory"


@dataclass(frozen=True)
class JobEvent:
    """One completed job inside a batch."""

    index: int
    total: int
    key: str
    label: str
    #: One of ``"simulated"``, ``"store"`` or ``"memory"``.
    source: str
    elapsed_s: float = 0.0
    #: Execution attempts the job took (``> 1`` after a retry recovered
    #: it from a worker crash, an exception or a timeout).
    attempts: int = 1


ProgressCallback = Callable[[JobEvent], None]


class ProgressPrinter:
    """Prints one line per completed job (used by the CLI)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: JobEvent) -> None:
        mark = "*" if event.source == SOURCE_SIMULATED else "."
        retry = f", attempt {event.attempts}" if event.attempts > 1 else ""
        self.stream.write(
            f"  [{event.index + 1:>4d}/{event.total}] {mark} "
            f"{event.label} ({event.source}, {event.elapsed_s:.2f}s{retry})\n"
        )
        self.stream.flush()


@dataclass
class ProgressCollector:
    """Accumulates events; useful in tests and for run summaries."""

    events: list[JobEvent] = field(default_factory=list)

    def __call__(self, event: JobEvent) -> None:
        self.events.append(event)

    @property
    def simulated(self) -> int:
        return sum(1 for event in self.events if event.source == SOURCE_SIMULATED)

    @property
    def store_hits(self) -> int:
        return sum(1 for event in self.events if event.source == SOURCE_STORE)

    @property
    def memory_hits(self) -> int:
        return sum(1 for event in self.events if event.source == SOURCE_MEMORY)
