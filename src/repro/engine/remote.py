"""Multi-host shard dispatch: TCP coordinator + remote worker runtime.

PR 9 made the engine a resilient *single-host* service; this module adds
the multi-node fan-out from the roadmap.  A sweep started with
``repro run/sweep ... --serve HOST:PORT`` opens a listening socket next
to its local worker pool; any machine that can reach it runs
``repro worker --connect HOST:PORT --workers N`` to advertise ``N``
local simulation processes and pull cost-balanced shards from the very
same :func:`~repro.engine.queue.plan_shards` plan the in-process
dispatcher uses.  Results flow back as
:class:`~repro.sim.results.SimulationResult` dicts and are committed
through the coordinator's fingerprint-keyed store, so ``--resume`` and
warm-cache semantics are unchanged across hosts and the merged output is
bit-identical to a serial run.

Wire protocol
-------------
Length-prefixed JSON over TCP, stdlib ``socket``/``selectors`` only:
every frame is a 4-byte big-endian payload length followed by a UTF-8
JSON object with a ``type`` field.  Oversized frames are rejected on
both ends (:data:`MAX_FRAME_BYTES`), and a connection that closes
mid-frame surfaces as a :class:`FrameError`, never a hang.

============  =========== ==========================================
direction     type        payload
============  =========== ==========================================
worker → coo  hello       version, capacity, host, pid
coo → worker  welcome     version, job_timeout
coo → worker  reject      reason (version mismatch, bad capacity)
coo → worker  shard       shard, slots, jobs (base64 pickles)
worker → coo  started     shard, slot
worker → coo  done        shard, slot, result, elapsed_s
worker → coo  error       shard, slot, reason, elapsed_s
worker → coo  shard_done  shard
worker → coo  heartbeat   --
coo → worker  shutdown    --
============  =========== ==========================================

Job specs cross the wire as pickles (they embed full simulator
configs), so the protocol is for *trusted* networks — the lab cluster
the paper's sweeps were sized for — not the open internet.

Failure semantics mirror the local dispatcher: a worker that drops its
connection or misses heartbeats is reaped, its finished slots are kept,
its in-flight job re-enters the bounded-retry path, and the rest of its
shards are re-queued to any surviving worker (local or remote).  The
run completes with a degradation warning instead of crashing.
"""

from __future__ import annotations

import base64
import json
import multiprocessing
import os
import pickle
import select
import socket
import struct
from dataclasses import dataclass, field
from time import monotonic, perf_counter
from typing import Optional

from repro.engine.queue import (
    MSG_DONE,
    MSG_ERROR,
    MSG_SHARD_DONE,
    MSG_STARTED,
    Shard,
    _worker_main,
)
from repro.obs.log import get_logger

log = get_logger(__name__)

#: Bump on any incompatible wire change; workers with a different
#: version are refused at the handshake.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload, enforced by sender and receiver.
#: Generous for shards of pickled jobs and result dicts; small enough
#: that a corrupt length header cannot balloon into an OOM.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: How often an idle worker pings the coordinator.
HEARTBEAT_S = 2.0

#: Silence longer than this marks a remote worker dead and reassigns
#: its shards.  A SIGKILL is usually seen much sooner as a socket EOF;
#: the timeout catches partitioned networks and frozen hosts.
HEARTBEAT_TIMEOUT_S = 15.0

#: Selector tick for both event loops, matching the local dispatcher.
_TICK_S = 0.05

_HEADER = struct.Struct(">I")


class FrameError(RuntimeError):
    """A frame violated the protocol (truncated, oversized, not JSON)."""


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its on-wire form (header + JSON)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental decoder for the non-blocking receive paths.

    Feed it raw ``recv`` chunks; it returns every complete message and
    buffers the rest, raising :class:`FrameError` on oversized or
    malformed frames.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        messages = []
        while len(self._buffer) >= _HEADER.size:
            (length,) = _HEADER.unpack_from(self._buffer, 0)
            if length > self.max_frame_bytes:
                raise FrameError(
                    f"frame payload of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            if len(self._buffer) < _HEADER.size + length:
                break
            payload = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                raise FrameError(f"frame payload is not valid JSON: {error}")
            if not isinstance(message, dict):
                raise FrameError("frame payload must be a JSON object")
            messages.append(message)
        return messages

    def pending_bytes(self) -> int:
        return len(self._buffer)


def send_frame(sock: socket.socket, message: dict, timeout_s: float = 30.0) -> int:
    """Send one frame, tolerating a non-blocking socket; returns bytes sent."""
    data = encode_frame(message)
    total = len(data)
    deadline = monotonic() + timeout_s
    view = memoryview(data)
    while view:
        try:
            sent = sock.send(view)
        except (BlockingIOError, InterruptedError):
            if monotonic() > deadline:
                raise FrameError(f"send stalled for {timeout_s:.0f}s")
            select.select([], [sock], [], _TICK_S)
            continue
        if sent == 0:
            raise FrameError("connection closed mid-send")
        view = view[sent:]
    return total


def recv_frame(sock: socket.socket) -> dict:
    """Blocking receive of exactly one frame (tests, simple clients)."""

    def recv_exact(count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            chunk = sock.recv(count - len(chunks))
            if not chunk:
                raise FrameError(
                    f"truncated frame: connection closed after "
                    f"{len(chunks)} of {count} bytes"
                )
            chunks.extend(chunk)
        return bytes(chunks)

    (length,) = _HEADER.unpack(recv_exact(_HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    decoder = FrameDecoder()
    messages = decoder.feed(_HEADER.pack(length) + recv_exact(length))
    return messages[0]


def parse_hostport(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (port 0 binds an ephemeral port when serving)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"port must be an integer, got {port_text!r}")
    if not 0 <= port <= 65535:
        raise ValueError(f"port must be in [0, 65535], got {port}")
    return host, port


# ---------------------------------------------------------------------------
# Payload encoding
# ---------------------------------------------------------------------------


def encode_job(job) -> str:
    return base64.b64encode(pickle.dumps(job)).decode("ascii")


def decode_job(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def encode_result(result) -> dict:
    """JSON-safe envelope for one result.

    :class:`~repro.sim.results.SimulationResult` travels as its
    ``to_dict()`` form (the same schema as ``results.jsonl``, so remote
    completions are bit-identical to local ones); anything else — test
    doubles, plain values — falls back to a pickle.
    """
    to_dict = getattr(result, "to_dict", None)
    if callable(to_dict):
        return {"kind": "simulation", "data": to_dict()}
    return {
        "kind": "pickle",
        "data": base64.b64encode(pickle.dumps(result)).decode("ascii"),
    }


def decode_result(payload: dict):
    if payload.get("kind") == "simulation":
        from repro.sim.results import SimulationResult  # lazy: import cycle

        return SimulationResult.from_dict(payload["data"])
    return pickle.loads(base64.b64decode(payload["data"].encode("ascii")))


def _configure(sock: socket.socket) -> None:
    sock.setblocking(False)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass  # not a TCP socket (tests use socketpairs)


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class _RemoteShardState:
    shard: Shard
    finished: set = field(default_factory=set)
    running: Optional[int] = None


class RemoteWorkerHandle:
    """Coordinator-side state for one connected worker."""

    def __init__(self, remote_id: int, sock: socket.socket, address) -> None:
        self.remote_id = remote_id
        self.sock = sock
        self.address = address
        self.decoder = FrameDecoder()
        self.capacity = 0
        self.registered = False
        self.alive = True
        self.last_seen = monotonic()
        self.label = f"{address[0]}:{address[1]}" if address else "?"
        self.shards: dict[int, _RemoteShardState] = {}

    def idle_capacity(self) -> int:
        return self.capacity - len(self.shards)


class RemoteCoordinator:
    """Accepts workers and streams shards to them; driven by ``poll()``.

    The coordinator owns no event loop of its own: the shard dispatcher
    calls :meth:`poll` every tick, right next to its local-pipe
    handling, so remote completions interleave with local ones and land
    in the same ``on_result``/store path.  ``stats`` is the executor's
    :class:`~repro.engine.executor.ExecutorStats`; the coordinator
    increments ``remote_workers``, ``bytes_sent``, ``bytes_received``,
    ``reassignments`` and ``worker_failures``.
    """

    def __init__(
        self,
        stats,
        host: str = "127.0.0.1",
        port: int = 0,
        job_timeout: Optional[float] = None,
        heartbeat_timeout_s: float = HEARTBEAT_TIMEOUT_S,
    ) -> None:
        self.stats = stats
        self.job_timeout = job_timeout
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._workers: dict[int, RemoteWorkerHandle] = {}
        self._orphans: list[tuple[Shard, list[int], list[int], str]] = []
        self._next_id = 0
        self.ever_registered = 0
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(64)
        listener.setblocking(False)
        self._listener: Optional[socket.socket] = listener
        self.host, self.port = listener.getsockname()[:2]
        log.info("coordinator listening on %s:%d", self.host, self.port)

    # -- introspection -----------------------------------------------------
    def live_workers(self) -> list[RemoteWorkerHandle]:
        return [
            worker
            for _, worker in sorted(self._workers.items())
            if worker.alive and worker.registered
        ]

    def live_count(self) -> int:
        return len(self.live_workers())

    def total_capacity(self) -> int:
        return sum(worker.capacity for worker in self.live_workers())

    def wait_channels(self) -> list:
        """Waitable objects (listener + live links) for the dispatcher.

        The shard dispatcher multiplexes these into its tick wait so a
        remote completion wakes it immediately instead of costing up to a
        full tick of latency per message.
        """
        channels: list = []
        if self._listener is not None:
            channels.append(self._listener)
        channels.extend(
            worker.sock for worker in self._workers.values() if worker.alive
        )
        return channels

    # -- event pump --------------------------------------------------------
    def poll(self) -> list[tuple]:
        """Pump the sockets once; returns completion events for the
        dispatcher as ``("done", slot, result, elapsed_s)`` and
        ``("error", slot, reason)`` tuples.  Dead workers' shards are
        collected for :meth:`take_orphans`.
        """
        events: list[tuple] = []
        self._accept_new()
        for worker in list(self._workers.values()):
            if worker.alive:
                self._read(worker, events)
        now = monotonic()
        for worker in list(self._workers.values()):
            if worker.alive and now - worker.last_seen > self.heartbeat_timeout_s:
                self._disconnect(
                    worker,
                    f"missed heartbeats for {self.heartbeat_timeout_s:.0f}s",
                )
        return events

    def take_orphans(self) -> list[tuple[Shard, list[int], list[int], str]]:
        """Shards lost to dead workers since the last call, as
        ``(shard, pending_slots, running_slots, reason)``; the caller
        re-queues pending slots and retries the in-flight ones.
        """
        orphans, self._orphans = self._orphans, []
        return orphans

    # -- dispatch ----------------------------------------------------------
    def next_idle_worker(self) -> Optional[RemoteWorkerHandle]:
        """The live worker with the most spare capacity, if any."""
        best = None
        for worker in self.live_workers():
            spare = worker.idle_capacity()
            if spare > 0 and (best is None or spare > best.idle_capacity()):
                best = worker
        return best

    def dispatch(self, worker: RemoteWorkerHandle, shard: Shard) -> bool:
        """Stream one shard to a worker; False if the send failed (the
        worker is reaped and the caller keeps the shard).
        """
        message = {
            "type": "shard",
            "shard": shard.shard_id,
            "slots": list(shard.slots),
            "jobs": [encode_job(job) for job in shard.jobs],
        }
        try:
            self.stats.bytes_sent += send_frame(worker.sock, message)
        except (OSError, FrameError) as error:
            self._disconnect(worker, f"send failed: {error}")
            return False
        worker.shards[shard.shard_id] = _RemoteShardState(shard=shard)
        log.debug(
            "dispatched shard %d (%d jobs) to remote worker %s",
            shard.shard_id,
            len(shard),
            worker.label,
        )
        return True

    def wait_for_workers(self, count: int, timeout_s: float) -> bool:
        """Block until ``count`` workers finished the handshake."""
        deadline = monotonic() + timeout_s
        while self.live_count() < count:
            if monotonic() > deadline:
                return False
            self.poll()
            select.select([], [], [], _TICK_S)
        return True

    def close(self, send_shutdown: bool = True) -> None:
        for worker in list(self._workers.values()):
            if worker.alive and send_shutdown:
                try:
                    send_frame(worker.sock, {"type": "shutdown"}, timeout_s=2.0)
                except (OSError, FrameError):
                    pass
            try:
                worker.sock.close()
            except OSError:
                pass
        self._workers.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None

    # -- internals ---------------------------------------------------------
    def _accept_new(self) -> None:
        if self._listener is None:
            return
        while True:
            try:
                sock, address = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            _configure(sock)
            handle = RemoteWorkerHandle(self._next_id, sock, address)
            self._next_id += 1
            self._workers[handle.remote_id] = handle
            log.info("connection from %s awaiting handshake", handle.label)

    def _read(self, worker: RemoteWorkerHandle, events: list) -> None:
        while worker.alive:
            try:
                data = worker.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as error:
                self._disconnect(worker, f"connection error: {error}")
                return
            if not data:
                self._disconnect(worker, "connection closed")
                return
            self.stats.bytes_received += len(data)
            worker.last_seen = monotonic()
            try:
                messages = worker.decoder.feed(data)
            except FrameError as error:
                self._disconnect(worker, f"protocol error: {error}")
                return
            for message in messages:
                self._handle(worker, message, events)

    def _handle(self, worker: RemoteWorkerHandle, message: dict, events: list) -> None:
        kind = message.get("type")
        if not worker.registered:
            if kind != "hello":
                self._reject(worker, f"expected hello, got {kind!r}")
            elif message.get("version") != PROTOCOL_VERSION:
                self._reject(
                    worker,
                    f"protocol version mismatch: coordinator speaks "
                    f"v{PROTOCOL_VERSION}, worker sent "
                    f"{message.get('version')!r}",
                )
            elif not isinstance(message.get("capacity"), int) or message["capacity"] < 1:
                self._reject(
                    worker, f"capacity must be a positive int, got "
                    f"{message.get('capacity')!r}"
                )
            else:
                worker.capacity = message["capacity"]
                worker.label = (
                    f"{message.get('host', worker.label)}"
                    f"#{message.get('pid', '?')}"
                )
                worker.registered = True
                self.ever_registered += 1
                self.stats.remote_workers += 1
                try:
                    self.stats.bytes_sent += send_frame(
                        worker.sock,
                        {
                            "type": "welcome",
                            "version": PROTOCOL_VERSION,
                            "job_timeout": self.job_timeout,
                        },
                    )
                except (OSError, FrameError) as error:
                    self._disconnect(worker, f"welcome failed: {error}")
                    return
                log.info(
                    "remote worker %s joined with capacity %d",
                    worker.label,
                    worker.capacity,
                )
            return
        if kind == "heartbeat":
            return
        shard_state = worker.shards.get(message.get("shard"))
        if kind == "started":
            if shard_state is not None:
                shard_state.running = message.get("slot")
        elif kind == "done":
            slot = message["slot"]
            if shard_state is not None:
                shard_state.finished.add(slot)
                if shard_state.running == slot:
                    shard_state.running = None
            try:
                result = decode_result(message["result"])
            except Exception as error:  # noqa: BLE001 - surfaces as retry
                events.append(("error", slot, f"undecodable result: {error}"))
            else:
                events.append(("done", slot, result, message.get("elapsed_s", 0.0)))
        elif kind == "error":
            slot = message["slot"]
            if shard_state is not None:
                shard_state.finished.add(slot)
                if shard_state.running == slot:
                    shard_state.running = None
            events.append(("error", slot, message.get("reason", "remote error")))
        elif kind == "shard_done":
            worker.shards.pop(message.get("shard"), None)
        else:
            log.warning("ignoring unknown frame %r from %s", kind, worker.label)

    def _reject(self, worker: RemoteWorkerHandle, reason: str) -> None:
        log.warning("refusing worker %s: %s", worker.label, reason)
        try:
            send_frame(worker.sock, {"type": "reject", "reason": reason}, timeout_s=2.0)
        except (OSError, FrameError):
            pass
        self._disconnect(worker, reason, count_failure=False)

    def _disconnect(
        self, worker: RemoteWorkerHandle, reason: str, count_failure: bool = True
    ) -> None:
        if not worker.alive:
            return
        worker.alive = False
        try:
            worker.sock.close()
        except OSError:
            pass
        self._workers.pop(worker.remote_id, None)
        if not worker.registered:
            return
        if count_failure:
            self.stats.worker_failures += 1
            log.warning("remote worker %s lost: %s", worker.label, reason)
        for state in worker.shards.values():
            pending = [
                slot
                for slot in state.shard.slots
                if slot not in state.finished and slot != state.running
            ]
            running = [] if state.running is None else [state.running]
            self.stats.reassignments += 1
            self._orphans.append((state.shard, pending, running, reason))
        worker.shards.clear()


# ---------------------------------------------------------------------------
# Worker runtime
# ---------------------------------------------------------------------------


def _proc_main(worker_id: int, tasks, results, close_fds=()) -> None:
    """Child entry: drop inherited coordinator fds, then run shards.

    Under the fork start method the simulation child inherits the
    worker's TCP socket; left open, a SIGKILLed worker would only be
    noticed by the coordinator at the heartbeat timeout instead of as an
    immediate EOF.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    _worker_main(worker_id, tasks, results)


@dataclass
class _LocalProc:
    """One simulation process on the remote host, mirroring queue._Worker."""

    proc_id: int
    process: multiprocessing.Process
    task_conn: object
    result_conn: object
    shard: Optional[Shard] = None
    finished: set = field(default_factory=set)
    running_slot: Optional[int] = None
    running_since: float = 0.0

    def idle(self) -> bool:
        return self.shard is None


class _WorkerRuntime:
    """State machine behind :func:`run_worker`."""

    def __init__(self, sock, workers, heartbeat_s, job_timeout, stderr):
        self.sock = sock
        self.workers = workers
        self.heartbeat_s = heartbeat_s
        self.job_timeout = job_timeout
        self.stderr = stderr
        self.decoder = FrameDecoder()
        self._mp = multiprocessing.get_context()
        self._procs: dict[int, _LocalProc] = {}
        self._next_proc_id = 0
        self._backlog: list[Shard] = []
        self._last_heartbeat = monotonic()
        self.jobs_done = 0
        self.shards_done = 0

    def _say(self, text: str) -> None:
        print(text, file=self.stderr)

    def _spawn(self) -> _LocalProc:
        task_recv, task_send = self._mp.Pipe(duplex=False)
        result_recv, result_send = self._mp.Pipe(duplex=False)
        proc_id = self._next_proc_id
        self._next_proc_id += 1
        close_fds = ()
        if self._mp.get_start_method() == "fork":
            # Besides the TCP socket, the forked child inherits every
            # parent-side pipe end — including the write end of its own
            # task pipe, which would keep ``tasks.recv()`` from ever
            # seeing EOF once this parent dies (e.g. SIGKILL), leaving
            # an orphaned child blocked forever.
            inherited = [self.sock.fileno(), task_send.fileno(), result_recv.fileno()]
            for sibling in self._procs.values():
                inherited.append(sibling.task_conn.fileno())
                inherited.append(sibling.result_conn.fileno())
            close_fds = tuple(inherited)
        process = self._mp.Process(
            target=_proc_main,
            args=(proc_id, task_recv, result_send, close_fds),
            name=f"repro-remote-proc-{proc_id}",
            daemon=True,
        )
        process.start()
        task_recv.close()
        result_send.close()
        proc = _LocalProc(
            proc_id=proc_id,
            process=process,
            task_conn=task_send,
            result_conn=result_recv,
        )
        self._procs[proc_id] = proc
        return proc

    def _send(self, message: dict) -> None:
        send_frame(self.sock, message)

    def _assign(self, proc: _LocalProc, shard: Shard) -> None:
        proc.shard = shard
        proc.finished = set()
        proc.running_slot = None
        try:
            proc.task_conn.send(shard)
        except (OSError, BrokenPipeError):
            self._reap_proc(proc, "died before dispatch")

    def _take_shard(self, shard: Shard) -> None:
        for proc in self._procs.values():
            if proc.idle():
                self._assign(proc, shard)
                return
        self._backlog.append(shard)

    def _drain_backlog(self) -> None:
        for proc in self._procs.values():
            if not self._backlog:
                return
            if proc.idle():
                self._assign(proc, self._backlog.pop(0))

    def _reap_proc(self, proc: _LocalProc, reason: str) -> None:
        """Replace a dead child; report its in-flight job, keep the rest.

        The running slot goes back to the coordinator as an ``error``
        frame (entering the bounded-retry path there); the unstarted
        remainder of the shard re-runs locally on the replacement under
        the *same* shard id, so the coordinator's bookkeeping holds.
        """
        self._procs.pop(proc.proc_id, None)
        for conn in (proc.task_conn, proc.result_conn):
            try:
                conn.close()
            except OSError:
                pass
        if proc.process.is_alive():
            proc.process.kill()
        proc.process.join(timeout=5.0)
        shard = proc.shard
        replacement = self._spawn()
        self._say(f"repro worker: simulation process {reason}; respawned")
        if shard is None:
            self._drain_backlog()
            return
        running = proc.running_slot
        if running is not None:
            self._send(
                {
                    "type": "error",
                    "shard": shard.shard_id,
                    "slot": running,
                    "reason": f"simulation process {reason} on remote worker",
                    "elapsed_s": perf_counter() - proc.running_since,
                }
            )
        remaining = tuple(
            slot
            for slot in shard.slots
            if slot not in proc.finished and slot != running
        )
        if remaining:
            remainder = Shard(
                shard_id=shard.shard_id,
                jobs=tuple(
                    job
                    for slot, job in zip(shard.slots, shard.jobs)
                    if slot in remaining
                ),
                slots=remaining,
                cost=0.0,
                preferred_worker=0,
            )
            self._assign(replacement, remainder)
        else:
            self._send({"type": "shard_done", "shard": shard.shard_id})
            self.shards_done += 1
            self._drain_backlog()

    def _forward(self, proc: _LocalProc, message: tuple) -> None:
        kind = message[0]
        if kind == MSG_STARTED:
            slot = message[3]
            proc.running_slot = slot
            proc.running_since = perf_counter()
            self._send({"type": "started", "shard": message[2], "slot": slot})
        elif kind == MSG_DONE:
            _, _, shard_id, slot, result, elapsed_s = message
            proc.finished.add(slot)
            proc.running_slot = None
            self.jobs_done += 1
            self._send(
                {
                    "type": "done",
                    "shard": shard_id,
                    "slot": slot,
                    "result": encode_result(result),
                    "elapsed_s": elapsed_s,
                }
            )
        elif kind == MSG_ERROR:
            _, _, shard_id, slot, reason, elapsed_s = message
            proc.finished.add(slot)
            proc.running_slot = None
            self._send(
                {
                    "type": "error",
                    "shard": shard_id,
                    "slot": slot,
                    "reason": reason,
                    "elapsed_s": elapsed_s,
                }
            )
        elif kind == MSG_SHARD_DONE:
            proc.shard = None
            proc.finished = set()
            proc.running_slot = None
            self.shards_done += 1
            self._send({"type": "shard_done", "shard": message[2]})
            self._drain_backlog()

    def _tick_children(self) -> None:
        now = perf_counter()
        for proc in list(self._procs.values()):
            try:
                while proc.result_conn.poll():
                    self._forward(proc, proc.result_conn.recv())
            except (EOFError, OSError):
                self._reap_proc(proc, "died mid-run")
                continue
            if not proc.process.is_alive():
                self._reap_proc(
                    proc, f"died (exit code {proc.process.exitcode})"
                )
                continue
            if (
                self.job_timeout is not None
                and proc.running_slot is not None
                and now - proc.running_since > self.job_timeout
            ):
                proc.process.kill()
                self._reap_proc(
                    proc, f"timed out after {self.job_timeout:.2f}s"
                )

    def _handle_frame(self, message: dict) -> bool:
        """React to one coordinator frame; False means shut down."""
        kind = message.get("type")
        if kind == "shard":
            shard = Shard(
                shard_id=message["shard"],
                jobs=tuple(decode_job(text) for text in message["jobs"]),
                slots=tuple(message["slots"]),
                cost=0.0,
                preferred_worker=0,
            )
            self._take_shard(shard)
            return True
        if kind == "shutdown":
            self._say("repro worker: coordinator asked for shutdown")
            return False
        log.warning("ignoring unknown frame %r from coordinator", kind)
        return True

    def serve(self) -> int:
        for _ in range(self.workers):
            self._spawn()
        try:
            while True:
                readable, _, _ = select.select([self.sock], [], [], _TICK_S)
                if readable:
                    try:
                        data = self.sock.recv(65536)
                    except (BlockingIOError, InterruptedError):
                        data = None
                    except OSError:
                        self._say("repro worker: connection lost")
                        return 0
                    if data is not None:
                        if not data:
                            self._say("repro worker: coordinator closed the link")
                            return 0
                        for message in self.decoder.feed(data):
                            if not self._handle_frame(message):
                                return 0
                self._tick_children()
                now = monotonic()
                if now - self._last_heartbeat >= self.heartbeat_s:
                    self._last_heartbeat = now
                    self._send({"type": "heartbeat"})
        except (OSError, FrameError) as error:
            self._say(f"repro worker: connection lost ({error})")
            return 0
        finally:
            self._shutdown_children()
            self._say(
                f"repro worker: executed {self.jobs_done} job(s) over "
                f"{self.shards_done} shard(s)"
            )

    def _shutdown_children(self) -> None:
        for proc in list(self._procs.values()):
            try:
                proc.task_conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        for proc in list(self._procs.values()):
            proc.process.join(timeout=5.0)
            if proc.process.is_alive():
                proc.process.kill()
                proc.process.join(timeout=5.0)
            for conn in (proc.task_conn, proc.result_conn):
                try:
                    conn.close()
                except OSError:
                    pass
        self._procs.clear()


def run_worker(
    host: str,
    port: int,
    workers: int = 1,
    heartbeat_s: float = HEARTBEAT_S,
    connect_timeout_s: float = 30.0,
    stderr=None,
) -> int:
    """Connect to a coordinator and execute shards until it shuts down.

    Retries the TCP connect for ``connect_timeout_s`` so workers may be
    launched before (or while) the coordinator binds its port.  Returns
    0 on a clean shutdown or lost coordinator, 2 when the handshake is
    refused or never answered.
    """
    import sys

    if stderr is None:
        stderr = sys.stderr
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    deadline = monotonic() + connect_timeout_s
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            break
        except OSError as error:
            if monotonic() > deadline:
                print(
                    f"repro worker: cannot reach {host}:{port} after "
                    f"{connect_timeout_s:.0f}s ({error})",
                    file=stderr,
                )
                return 2
            select.select([], [], [], 0.5)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass
    sock.settimeout(30.0)
    try:
        send_frame(
            sock,
            {
                "type": "hello",
                "version": PROTOCOL_VERSION,
                "capacity": workers,
                "host": socket.gethostname(),
                "pid": os.getpid(),
            },
        )
        reply = recv_frame(sock)
    except (OSError, FrameError) as error:
        print(f"repro worker: handshake failed ({error})", file=stderr)
        sock.close()
        return 2
    if reply.get("type") != "welcome":
        print(
            f"repro worker: refused by {host}:{port} — "
            f"{reply.get('reason', reply)}",
            file=stderr,
        )
        sock.close()
        return 2
    job_timeout = reply.get("job_timeout")
    _configure(sock)
    print(
        f"repro worker: serving {workers} process(es) to {host}:{port} "
        f"(protocol v{reply.get('version')})",
        file=stderr,
    )
    runtime = _WorkerRuntime(sock, workers, heartbeat_s, job_timeout, stderr)
    try:
        return runtime.serve()
    finally:
        try:
            sock.close()
        except OSError:
            pass
