"""SQLite-backed result store: WAL mode, concurrent-safe, resumable.

The :class:`SqliteStore` keeps every simulation result in one SQLite
database keyed by the job's fingerprint digest — the same keys the
:class:`~repro.engine.store.JsonlStore` uses, so the two backends are
interchangeable and results migrate between them losslessly
(:func:`copy_store`).

Why SQLite beside JSONL:

* **Concurrent writers.**  WAL journaling plus a busy timeout lets
  several runs (or several hosts on a shared filesystem that supports
  POSIX locks) warm the same store without corrupting it; JSONL is only
  append-atomic within one process.
* **Incremental commits.**  Every ``put`` is its own transaction, so a
  run killed at any instant leaves a consistent database with everything
  committed so far — the foundation of ``repro run --resume``.
* **Cheap point lookups.**  A million-config design-space sweep resumes
  by primary-key probes instead of re-parsing a multi-gigabyte line file
  into memory.

Results are stored as canonical JSON (the
:meth:`~repro.sim.results.SimulationResult.to_dict` payload), so the
database is self-describing and ``sqlite3`` CLI queries stay usable.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

from repro.engine.store import ResultStore

if TYPE_CHECKING:  # avoid repro.sim <-> repro.engine import cycle
    from repro.sim.results import SimulationResult

#: How long a writer waits on a locked database before failing (seconds).
BUSY_TIMEOUT_S = 30.0


class SqliteStore(ResultStore):
    """A WAL-mode SQLite result store keyed by fingerprint digest."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            str(self.path), timeout=BUSY_TIMEOUT_S, isolation_level=None
        )
        # WAL lets readers proceed under a writer and makes each put an
        # atomic, crash-consistent transaction; NORMAL sync is durable
        # against process death (the resume scenario), if not power loss.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            "  key TEXT PRIMARY KEY,"
            "  result TEXT NOT NULL"
            ")"
        )

    def get(self, key: str) -> Optional["SimulationResult"]:
        from repro.sim.results import SimulationResult

        row = self._conn.execute(
            "SELECT result FROM results WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            return SimulationResult.from_dict(json.loads(row[0]))
        except (ValueError, KeyError, TypeError):
            # An unreadable record (schema drift, manual tampering) is
            # treated as a miss: results are recomputable.
            return None

    def put(self, key: str, result: "SimulationResult") -> None:
        payload = json.dumps(result.to_dict(), sort_keys=True)
        self._conn.execute(
            "INSERT INTO results (key, result) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET result = excluded.result",
            (key, payload),
        )

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def keys(self) -> Iterator[str]:
        for (key,) in self._conn.execute("SELECT key FROM results ORDER BY key"):
            yield key

    def compact(self) -> dict:
        """Checkpoint the WAL and VACUUM the database.

        A long sweep leaves a WAL file rivaling the database itself and
        free pages from upserts; compaction folds the WAL back in and
        rewrites the file densely.  Returns before/after record and byte
        counts (bytes include the ``-wal`` sidecar).
        """

        def disk_bytes() -> int:
            # The -shm file is fixed-size shared memory, not data; count
            # only the database and its WAL.
            total = 0
            for suffix in ("", "-wal"):
                sidecar = Path(str(self.path) + suffix)
                if sidecar.exists():
                    total += sidecar.stat().st_size
            return total

        records = len(self)
        bytes_before = disk_bytes()
        # VACUUM first (it writes through the WAL), then truncate the WAL
        # so the rewrite actually lands in the main database file.
        self._conn.execute("VACUUM")
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return {
            "records_before": records,
            "records_after": records,
            "bytes_before": bytes_before,
            "bytes_after": disk_bytes(),
        }

    def close(self) -> None:
        """Close the database connection (idempotent)."""
        self._conn.close()

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def copy_store(source: ResultStore, destination: ResultStore) -> int:
    """Copy every keyed result from one store into another.

    Both JSONL and SQLite stores are keyed by the same fingerprint
    digests, so this migrates a cache between backends without a single
    re-simulation; returns the number of results copied.
    """
    keys = getattr(source, "keys", None)
    if keys is None:
        raise TypeError(
            f"{type(source).__name__} does not enumerate keys; cannot copy"
        )
    copied = 0
    for key in list(keys()):
        result = source.get(key)
        if result is not None:
            destination.put(key, result)
            copied += 1
    return copied
