"""Work-stealing shard queue for the parallel experiment engine.

The fixed fan-out of the original pool-based executor had two failure
modes at scale: a single slow job serialized its whole chunk (static
partitioning), and a single dead worker lost the whole batch (the pool
marks itself broken).  This module replaces it with a resilient shard
dispatcher:

* :func:`plan_shards` chunks a job batch into more shards than workers,
  balanced by each job's *estimated cost* (simulated cycles x cores from
  the fingerprinted config), so the queue drains evenly even when cell
  costs vary by an order of magnitude.
* Worker processes pull shards dynamically: every shard has a *preferred*
  worker (round-robin over the cost-sorted plan), and an idle worker
  taking another worker's shard counts as a **steal** — the load-balancing
  event the executor reports through its stats.
* The parent monitors every worker over private pipes.  A worker that
  dies (``kill -9``, OOM, segfault) or exceeds the per-job timeout is
  reaped: its finished results are kept, its in-flight job is retried
  with exponential backoff up to a bounded retry budget, the rest of its
  shard is re-queued, and a replacement worker is spawned.  The run
  completes with a warning instead of crashing.

Per-worker pipes (rather than one shared queue) are what make the
``kill -9`` path safe: a worker killed mid-``send`` can only corrupt its
own channel, which the parent observes as an EOF and treats as a death,
never as a hang of the whole run.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from time import perf_counter, sleep
from typing import Callable, Optional, Sequence

from repro.engine.jobs import execute_job
from repro.obs.log import get_logger

log = get_logger(__name__)

#: Messages a worker sends to the parent over its result pipe.
MSG_STARTED = "started"
MSG_DONE = "done"
MSG_ERROR = "error"
MSG_SHARD_DONE = "shard_done"

#: How many shards to plan per worker; more shards = finer stealing
#: granularity, at the price of slightly more dispatch chatter.
SHARDS_PER_WORKER = 4

#: First retry delay; doubles per subsequent attempt of the same job.
RETRY_BACKOFF_S = 0.1

#: Parent event-loop tick: the longest a timeout/death can go unnoticed.
_TICK_S = 0.05


class JobFailedError(RuntimeError):
    """A job exhausted its retry budget (crash, timeout or exception)."""

    def __init__(self, failures: dict[int, str]):
        self.failures = dict(failures)
        detail = "; ".join(
            f"job #{slot}: {reason}" for slot, reason in sorted(failures.items())
        )
        super().__init__(
            f"{len(failures)} job(s) failed after exhausting retries — {detail}"
        )


def estimate_cost(job) -> float:
    """Relative wall-clock estimate for one job, for shard balancing.

    Delegates to :meth:`~repro.engine.jobs.SimulationJob.estimated_cost`
    (simulated cycles x cores, from the fingerprinted config); jobs
    without the method (test doubles) cost a flat 1.0 so planning still
    works.
    """
    try:
        return float(job.estimated_cost())
    except AttributeError:
        return 1.0


#: Weight of the newest observation in the calibrated cost model.
COST_EWMA_ALPHA = 0.3


class CostModel:
    """Calibrated per-job cost estimates from observed wall-clock.

    The static :func:`estimate_cost` (cycles x cores) ranks jobs but
    knows nothing about how mechanisms actually differ in work per
    cycle.  This model records each finished job's measured seconds into
    an EWMA table keyed by the fingerprint fields that determine runtime
    — (mechanism, cores, density, window length) — and feeds the
    calibrated figure back into :func:`plan_shards`, so repeat sweeps
    balance on measured cost.  Keys never observed fall back to the
    static estimate scaled by the global seconds-per-unit EWMA, keeping
    mixed batches in one consistent unit (seconds).
    """

    def __init__(self, alpha: float = COST_EWMA_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.observations = 0
        self._measured: dict[tuple, float] = {}
        self._seconds_per_unit: Optional[float] = None

    @staticmethod
    def job_key(job) -> Optional[tuple]:
        """Fingerprint fields that determine a job's runtime, or None
        for jobs without a full config (test doubles)."""
        try:
            config = job.config
            return (
                config.refresh.mechanism.value,
                config.cpu.num_cores,
                config.dram.density_gb,
                job.cycles + job.warmup,
            )
        except AttributeError:
            return None

    def is_calibrated(self, job) -> bool:
        return CostModel.job_key(job) in self._measured

    def observe(self, job, elapsed_s: float) -> None:
        if elapsed_s <= 0:
            return
        key = CostModel.job_key(job)
        if key is None:
            return
        self.observations += 1
        previous = self._measured.get(key)
        if previous is None:
            self._measured[key] = elapsed_s
        else:
            self._measured[key] = previous + self.alpha * (elapsed_s - previous)
        static = estimate_cost(job)
        if static > 0:
            ratio = elapsed_s / static
            if self._seconds_per_unit is None:
                self._seconds_per_unit = ratio
            else:
                self._seconds_per_unit += self.alpha * (
                    ratio - self._seconds_per_unit
                )

    def estimate(self, job) -> float:
        """Calibrated seconds when the key was observed; scaled static
        cost otherwise."""
        key = CostModel.job_key(job)
        if key is not None and key in self._measured:
            return self._measured[key]
        static = estimate_cost(job)
        if self._seconds_per_unit is not None:
            return static * self._seconds_per_unit
        return static

    def snapshot(self) -> dict[tuple, float]:
        """The current EWMA table, for diagnostics and tests."""
        return dict(self._measured)


@dataclass(frozen=True)
class Shard:
    """A contiguous unit of dispatch: several jobs bound for one worker."""

    shard_id: int
    jobs: tuple
    #: Caller-side slot of each job (position in the pending batch).
    slots: tuple
    cost: float
    #: Worker the planner intended this shard for; any other worker
    #: pulling it is a steal.
    preferred_worker: int

    def __len__(self) -> int:
        return len(self.jobs)


def plan_shards(
    jobs: Sequence,
    workers: int,
    shards_per_worker: int = SHARDS_PER_WORKER,
    cost_fn: Callable[[object], float] = estimate_cost,
) -> list[Shard]:
    """Chunk a job batch into cost-balanced shards, heaviest first.

    Longest-processing-time greedy: jobs sorted by estimated cost fall
    into the currently lightest shard, which bounds the heaviest shard at
    ~4/3 of optimal while staying deterministic.  The plan produces up to
    ``workers * shards_per_worker`` shards so the tail of the run is made
    of small units that idle workers can steal.  ``cost_fn`` defaults to
    the static estimate; the executor passes a calibrated
    :class:`CostModel` once wall-clock observations exist.
    """
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if not jobs:
        return []
    count = max(1, min(len(jobs), workers * shards_per_worker))
    costs = [cost_fn(job) for job in jobs]
    bins: list[tuple[list[int], float]] = [([], 0.0) for _ in range(count)]
    order = sorted(range(len(jobs)), key=lambda slot: (-costs[slot], slot))
    for slot in order:
        index = min(range(count), key=lambda b: (bins[b][1], b))
        slots, total = bins[index]
        slots.append(slot)
        bins[index] = (slots, total + costs[slot])
    filled = sorted((b for b in bins if b[0]), key=lambda b: (-b[1], b[0][0]))
    return [
        Shard(
            shard_id=shard_id,
            jobs=tuple(jobs[slot] for slot in slots),
            slots=tuple(slots),
            cost=total,
            preferred_worker=shard_id % workers,
        )
        for shard_id, (slots, total) in enumerate(filled)
    ]


def _worker_main(worker_id: int, tasks, results, close_fds=()) -> None:
    """Child-process loop: execute shards until the ``None`` sentinel.

    ``close_fds`` lists parent-side fds the fork start method leaks into
    this child — notably the write end of its own task pipe, which would
    stop ``tasks.recv()`` from ever reporting EOF once the parent dies.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    while True:
        try:
            shard = tasks.recv()
        except (EOFError, OSError):
            break
        if shard is None:
            break
        for slot, job in zip(shard.slots, shard.jobs):
            results.send((MSG_STARTED, worker_id, shard.shard_id, slot))
            start = perf_counter()
            try:
                result = execute_job(job)
            except Exception as error:  # noqa: BLE001 - reported to the parent
                results.send(
                    (
                        MSG_ERROR,
                        worker_id,
                        shard.shard_id,
                        slot,
                        f"{type(error).__name__}: {error}",
                        perf_counter() - start,
                    )
                )
            else:
                results.send(
                    (
                        MSG_DONE,
                        worker_id,
                        shard.shard_id,
                        slot,
                        result,
                        perf_counter() - start,
                    )
                )
        results.send((MSG_SHARD_DONE, worker_id, shard.shard_id))
    results.close()


@dataclass
class _Worker:
    """Parent-side handle for one worker process."""

    worker_id: int
    process: multiprocessing.Process
    task_conn: object
    result_conn: object
    shard: Optional[Shard] = None
    #: Slots of the current shard already finished (done or errored).
    finished: set = field(default_factory=set)
    #: Slot currently simulating, and when the parent saw it start.
    running_slot: Optional[int] = None
    running_since: float = 0.0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def idle(self) -> bool:
        return self.shard is None


class ShardDispatcher:
    """Runs one job batch over resilient worker processes.

    ``on_result(slot, result, elapsed_s, attempts)`` fires in the parent
    as each job completes, in completion order; the executor uses it for
    store writes and progress events, so an interrupted run still keeps
    everything finished so far.  ``stats`` is duck-typed (the executor's
    :class:`~repro.engine.executor.ExecutorStats`): the dispatcher
    increments ``shards``, ``steals``, ``retries``, ``timeouts`` and
    ``worker_failures`` on it.

    ``remote`` is an optional
    :class:`~repro.engine.remote.RemoteCoordinator`: its connected
    workers join the same shard plan, pulled from the same ready queue
    as the local pool, and a remote death re-queues its shards to any
    survivor.  ``workers=0`` is allowed only with a coordinator
    (serve-only mode); if every remote worker dies after at least one
    had joined, a local worker is spawned so the batch still finishes.
    ``cost_model`` is an optional :class:`CostModel` used for shard
    planning in place of the static estimate.
    """

    def __init__(
        self,
        workers: int,
        stats,
        on_result: Callable[[int, object, float, int], None],
        max_retries: int = 2,
        job_timeout: Optional[float] = None,
        shards_per_worker: int = SHARDS_PER_WORKER,
        retry_backoff_s: float = RETRY_BACKOFF_S,
        remote=None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if workers < 1 and remote is None:
            raise ValueError(f"workers must be positive, got {workers}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be positive, got {job_timeout}")
        self.workers = workers
        self.stats = stats
        self.on_result = on_result
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.shards_per_worker = shards_per_worker
        self.retry_backoff_s = retry_backoff_s
        self.remote = remote
        self.cost_model = cost_model
        self._cost_fn = cost_model.estimate if cost_model is not None else estimate_cost
        self._mp = multiprocessing.get_context()
        self._live: dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._next_shard_id = 0

    # -- introspection (tests, resilience drills) --------------------------
    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes, in worker-id order."""
        return [
            worker.pid
            for _, worker in sorted(self._live.items())
            if worker.pid is not None
        ]

    # -- lifecycle ---------------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        task_recv, task_send = self._mp.Pipe(duplex=False)
        result_recv, result_send = self._mp.Pipe(duplex=False)
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        close_fds = ()
        if self._mp.get_start_method() == "fork":
            inherited = [task_send.fileno(), result_recv.fileno()]
            for sibling in self._live.values():
                inherited.append(sibling.task_conn.fileno())
                inherited.append(sibling.result_conn.fileno())
            close_fds = tuple(inherited)
        process = self._mp.Process(
            target=_worker_main,
            args=(worker_id, task_recv, result_send, close_fds),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        # The parent's copies of the child-side ends must close so a dead
        # worker's pipes actually report EOF.
        task_recv.close()
        result_send.close()
        worker = _Worker(
            worker_id=worker_id,
            process=process,
            task_conn=task_send,
            result_conn=result_recv,
        )
        self._live[worker_id] = worker
        return worker

    def run(self, jobs: Sequence) -> list:
        """Execute every job; returns results aligned with ``jobs``.

        Raises :class:`JobFailedError` after the batch drains if any job
        exhausted its retry budget; every other result is still delivered
        through ``on_result`` first.
        """
        results: list = [None] * len(jobs)
        resolved: set[int] = set()
        failed: dict[int, str] = {}
        attempts: dict[int, int] = {}

        remote = self.remote
        capacity = self.workers + (remote.total_capacity() if remote else 0)
        shards = plan_shards(
            jobs, max(1, capacity), self.shards_per_worker, cost_fn=self._cost_fn
        )
        self._next_shard_id = len(shards)
        self.stats.shards += len(shards)
        if self.cost_model is not None:
            self.stats.calibrated_jobs += sum(
                1 for job in jobs if self.cost_model.is_calibrated(job)
            )
        ready: list[Shard] = list(shards)
        delayed: list[tuple[float, Shard]] = []

        for _ in range(min(self.workers, max(1, len(shards)))):
            self._spawn_worker()

        def outstanding() -> int:
            return len(jobs) - len(resolved) - len(failed)

        def requeue(slots: Sequence[int], delay_s: float = 0.0) -> None:
            pending_slots = tuple(
                slot for slot in slots if slot not in resolved and slot not in failed
            )
            if not pending_slots:
                return
            shard = Shard(
                shard_id=self._next_shard_id,
                jobs=tuple(jobs[slot] for slot in pending_slots),
                slots=pending_slots,
                cost=sum(self._cost_fn(jobs[slot]) for slot in pending_slots),
                preferred_worker=self._next_shard_id % max(1, self.workers),
            )
            self._next_shard_id += 1
            if delay_s > 0:
                delayed.append((perf_counter() + delay_s, shard))
            else:
                ready.append(shard)

        def give_up(slot: int, reason: str) -> None:
            failed[slot] = reason
            log.warning("job #%d permanently failed: %s", slot, reason)

        def retry_or_fail(slot: int, reason: str) -> None:
            attempts[slot] = attempts.get(slot, 0) + 1
            if attempts[slot] > self.max_retries:
                give_up(slot, f"{reason} (after {attempts[slot]} attempts)")
                return
            self.stats.retries += 1
            backoff = self.retry_backoff_s * (2 ** (attempts[slot] - 1))
            log.warning(
                "retrying job #%d (attempt %d/%d, %.2fs backoff): %s",
                slot,
                attempts[slot] + 1,
                self.max_retries + 1,
                backoff,
                reason,
            )
            requeue([slot], delay_s=backoff)

        def reap(worker: _Worker, reason: str, in_flight_failed: bool) -> None:
            """Remove a dead worker, salvaging and re-queuing its shard."""
            self._live.pop(worker.worker_id, None)
            for conn in (worker.task_conn, worker.result_conn):
                try:
                    conn.close()
                except OSError:
                    pass
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=5.0)
            shard = worker.shard
            if shard is not None:
                remaining = [
                    slot for slot in shard.slots if slot not in worker.finished
                ]
                running = worker.running_slot
                if in_flight_failed and running is not None and running in remaining:
                    remaining.remove(running)
                    retry_or_fail(running, reason)
                if remaining:
                    log.warning(
                        "re-queuing %d unstarted job(s) of shard %d after %s",
                        len(remaining),
                        shard.shard_id,
                        reason,
                    )
                    requeue(remaining)
            if outstanding() > 0:
                replacement = self._spawn_worker()
                log.warning(
                    "worker %d %s; spawned replacement worker %d",
                    worker.worker_id,
                    reason,
                    replacement.worker_id,
                )

        def handle_message(worker: _Worker, message: tuple) -> None:
            kind = message[0]
            if kind == MSG_STARTED:
                worker.running_slot = message[3]
                worker.running_since = perf_counter()
            elif kind == MSG_DONE:
                _, _, _, slot, result, elapsed_s = message
                worker.finished.add(slot)
                worker.running_slot = None
                if slot in resolved:
                    return  # a presumed-lost job that actually finished
                resolved.add(slot)
                failed.pop(slot, None)
                results[slot] = result
                self.on_result(slot, result, elapsed_s, attempts.get(slot, 0) + 1)
            elif kind == MSG_ERROR:
                _, _, _, slot, reason, _elapsed_s = message
                worker.finished.add(slot)
                worker.running_slot = None
                if slot not in resolved:
                    retry_or_fail(slot, reason)
            elif kind == MSG_SHARD_DONE:
                worker.shard = None
                worker.finished = set()
                worker.running_slot = None

        try:
            while outstanding() > 0:
                now = perf_counter()
                if delayed:
                    due = [shard for when, shard in delayed if when <= now]
                    delayed[:] = [
                        (when, shard) for when, shard in delayed if when > now
                    ]
                    ready.extend(due)
                remote_alive = remote is not None and remote.live_count() > 0
                if not self._live and not remote_alive and (ready or delayed):
                    # Every worker died while work remains (possible when
                    # respawns were skipped at the very end of the drain).
                    # In serve-only mode, hold off until the first remote
                    # worker has ever joined: before that, the queue is
                    # simply waiting for connections, not degraded.
                    if remote is None or remote.ever_registered > 0:
                        self._spawn_worker()
                for worker in list(self._live.values()):
                    if worker.idle() and ready:
                        shard = ready.pop(0)
                        if shard.preferred_worker != worker.worker_id:
                            self.stats.steals += 1
                            log.debug(
                                "worker %d stole shard %d from worker %d",
                                worker.worker_id,
                                shard.shard_id,
                                shard.preferred_worker,
                            )
                        worker.shard = shard
                        worker.finished = set()
                        worker.running_slot = None
                        try:
                            worker.task_conn.send(shard)
                        except (OSError, BrokenPipeError):
                            worker.shard = shard  # reap() re-queues it whole
                            reap(worker, "died before dispatch", False)

                if remote is not None:
                    while ready:
                        target = remote.next_idle_worker()
                        if target is None:
                            break
                        shard = ready.pop(0)
                        if not remote.dispatch(target, shard):
                            ready.insert(0, shard)  # worker reaped on send
                            break

                watch = [worker.result_conn for worker in self._live.values()]
                watch += [worker.process.sentinel for worker in self._live.values()]
                if remote is not None:
                    # Wake immediately on remote traffic too; otherwise a
                    # serve-only run pays up to a tick of latency per frame.
                    watch += remote.wait_channels()
                if watch:
                    connection_wait(watch, timeout=_TICK_S)
                else:
                    sleep(_TICK_S)

                for worker in list(self._live.values()):
                    try:
                        while worker.result_conn.poll():
                            handle_message(worker, worker.result_conn.recv())
                    except (EOFError, OSError):
                        self.stats.worker_failures += 1
                        reap(worker, "died mid-run", in_flight_failed=True)
                        continue
                    if not worker.process.is_alive():
                        self.stats.worker_failures += 1
                        reap(
                            worker,
                            f"died (exit code {worker.process.exitcode})",
                            in_flight_failed=True,
                        )
                        continue
                    if (
                        self.job_timeout is not None
                        and worker.running_slot is not None
                        and perf_counter() - worker.running_since > self.job_timeout
                    ):
                        self.stats.timeouts += 1
                        slot = worker.running_slot
                        log.warning(
                            "job #%d exceeded the %.2fs timeout on worker %d; "
                            "killing the worker",
                            slot,
                            self.job_timeout,
                            worker.worker_id,
                        )
                        worker.process.kill()
                        reap(
                            worker,
                            f"timed out after {self.job_timeout:.2f}s",
                            in_flight_failed=True,
                        )

                if remote is not None:
                    for event in remote.poll():
                        if event[0] == "done":
                            _, slot, result, elapsed_s = event
                            if slot in resolved:
                                continue  # a presumed-lost job that finished
                            resolved.add(slot)
                            failed.pop(slot, None)
                            results[slot] = result
                            self.on_result(
                                slot, result, elapsed_s, attempts.get(slot, 0) + 1
                            )
                        elif event[0] == "error":
                            _, slot, reason = event
                            if slot not in resolved:
                                retry_or_fail(slot, reason)
                    for shard, pending, running, reason in remote.take_orphans():
                        for slot in running:
                            if slot not in resolved and slot not in failed:
                                retry_or_fail(slot, reason)
                        if pending:
                            log.warning(
                                "re-queuing %d job(s) of shard %d after remote %s",
                                len(pending),
                                shard.shard_id,
                                reason,
                            )
                            requeue(pending)
        finally:
            self._shutdown()

        if failed:
            raise JobFailedError(failed)
        return results

    def _shutdown(self) -> None:
        for worker in list(self._live.values()):
            try:
                worker.task_conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        for worker in list(self._live.values()):
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            for conn in (worker.task_conn, worker.result_conn):
                try:
                    conn.close()
                except OSError:
                    pass
        self._live.clear()


def default_workers() -> int:
    """Worker count when none is requested: every available core."""
    return os.cpu_count() or 1
