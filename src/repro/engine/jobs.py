"""Simulation job specifications.

A :class:`SimulationJob` captures everything that determines one simulation
outcome — the system configuration, the workload, the measured window and
the seed — as a picklable value object.  Jobs travel across process
boundaries (the :class:`~repro.engine.executor.ParallelExecutor` ships them
to worker processes) and their :meth:`~SimulationJob.key` is the stable
identity under which results are cached in a
:class:`~repro.engine.store.ResultStore`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config.system import SystemConfig
from repro.workloads.mixes import Workload

if TYPE_CHECKING:  # avoid repro.sim <-> repro.engine import cycle
    from repro.sim.results import SimulationResult


def fingerprint_digest(fingerprint: object) -> str:
    """Stable hex digest of a (nested) fingerprint tuple.

    Fingerprints are nested tuples of primitives; encoding them as
    canonical JSON (tuples become lists, keys sorted) gives a digest that
    is stable across processes and interpreter runs — unlike ``hash()``,
    which is randomized per process for strings.
    """
    encoded = json.dumps(fingerprint, sort_keys=True, default=str)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SimulationJob:
    """One simulation to perform, identified by its fingerprint."""

    config: SystemConfig
    workload: Workload
    cycles: int
    warmup: int
    seed: int

    def fingerprint(self) -> tuple:
        """Hashable identity: everything that affects the result."""
        return (
            self.config.fingerprint(),
            self.workload.fingerprint(),
            self.cycles,
            self.warmup,
            self.seed,
        )

    def key(self) -> str:
        """Stable string identity used by persistent result stores."""
        return fingerprint_digest(self.fingerprint())

    def describe(self) -> str:
        """Short human-readable label for progress reporting."""
        return (
            f"{self.workload.name}/{self.config.refresh.mechanism.value}"
            f"@{self.config.dram.density_gb}Gb"
        )

    def run(self) -> "SimulationResult":
        """Execute the simulation this job describes."""
        # Imported here to keep job specs importable without pulling the
        # whole simulator into every worker that only plans batches.
        from repro.sim.simulator import Simulator

        simulator = Simulator(self.config, self.workload, seed=self.seed)
        return simulator.run(self.cycles, warmup=self.warmup)


def execute_job(job: SimulationJob) -> "SimulationResult":
    """Module-level entry point for process-pool workers (picklable)."""
    return job.run()
