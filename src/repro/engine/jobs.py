"""Simulation job specifications.

A :class:`SimulationJob` captures everything that determines one simulation
outcome — the system configuration, the workload, the measured window and
the seed — as a picklable value object.  Jobs travel across process
boundaries (the :class:`~repro.engine.executor.ParallelExecutor` ships them
to worker processes) and their :meth:`~SimulationJob.key` is the stable
identity under which results are cached in a
:class:`~repro.engine.store.ResultStore`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config.system import SystemConfig
from repro.obs.log import get_logger
from repro.workloads.mixes import Workload

if TYPE_CHECKING:  # avoid repro.sim <-> repro.engine import cycle
    from repro.sim.results import SimulationResult

log = get_logger(__name__)


def fingerprint_digest(fingerprint: object) -> str:
    """Stable hex digest of a (nested) fingerprint tuple.

    Fingerprints are nested tuples of primitives; encoding them as
    canonical JSON (tuples become lists, keys sorted) gives a digest that
    is stable across processes and interpreter runs — unlike ``hash()``,
    which is randomized per process for strings.
    """
    encoded = json.dumps(fingerprint, sort_keys=True, default=str)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SimulationJob:
    """One simulation to perform, identified by its fingerprint."""

    config: SystemConfig
    workload: Workload
    cycles: int
    warmup: int
    seed: int

    def fingerprint(self) -> tuple:
        """Hashable identity: everything that affects the result."""
        return (
            self.config.fingerprint(),
            self.workload.fingerprint(),
            self.cycles,
            self.warmup,
            self.seed,
        )

    def key(self) -> str:
        """Stable string identity used by persistent result stores."""
        return fingerprint_digest(self.fingerprint())

    def describe(self) -> str:
        """Short human-readable label for progress reporting."""
        return (
            f"{self.workload.name}/{self.config.refresh.mechanism.value}"
            f"@{self.config.dram.density_gb}Gb"
        )

    def estimated_cost(self) -> float:
        """Relative wall-clock estimate, for shard planning.

        Simulated cycles (warmup plus the measured window) times the core
        count tracks the per-cycle work the kernel performs; the shard
        planner (:func:`repro.engine.queue.plan_shards`) balances shards
        by this so an 8-core full-window cell does not share a shard with
        a dozen cheap single-core alone runs.
        """
        return float(max(1, self.cycles + self.warmup)) * float(
            max(1, self.config.cpu.num_cores)
        )

    def run(self) -> "SimulationResult":
        """Execute the simulation this job describes.

        When the configuration arms the tracer and names a trace
        directory, the trace is persisted next to the result — this also
        runs inside pool workers, since the job (and its
        :class:`~repro.config.obs_config.ObsConfig`) pickles across the
        process boundary.
        """
        # Imported here to keep job specs importable without pulling the
        # whole simulator into every worker that only plans batches.
        from repro.sim.simulator import Simulator

        log.debug(
            "simulating %s (%d+%d cycles, seed %d)",
            self.describe(),
            self.warmup,
            self.cycles,
            self.seed,
        )
        simulator = Simulator(self.config, self.workload, seed=self.seed)
        result = simulator.run(self.cycles, warmup=self.warmup)
        obs = self.config.obs
        if obs.trace and obs.trace_dir:
            self._write_trace(simulator, result)
        return result

    def _write_trace(self, simulator, result: "SimulationResult") -> None:
        """Persist the run's command trace (and epoch samples) to disk."""
        from pathlib import Path

        from repro.obs.epochs import merge_epoch_samples
        from repro.obs.trace import trace_header, write_trace

        tracer = simulator.memory.tracer
        if tracer is None:
            return
        obs = self.config.obs
        extra = {
            "device_stats": result.device_stats,
            "refresh_stats": result.refresh_stats,
            "controller_stats": result.controller_stats,
            "epoch_interval": obs.epoch_interval,
            "epochs": [sample.as_dict() for sample in simulator.epoch_samples],
        }
        if simulator.epoch_samples:
            extra["epoch_totals"] = merge_epoch_samples(simulator.epoch_samples)
        header = trace_header(
            workload=self.workload.name,
            mechanism=self.config.refresh.mechanism.value,
            density_gb=self.config.dram.density_gb,
            cycles=self.cycles,
            warmup=self.warmup,
            seed=self.seed,
            job_key=self.key(),
            tracer=tracer,
            extra=extra,
        )
        directory = Path(obs.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        suffix = "jsonl" if obs.trace_format == "jsonl" else "bin"
        name = self.describe().replace("/", "_").replace("@", "_")
        path = directory / f"{name}_{self.key()[:12]}.{suffix}"
        write_trace(path, header, tracer.records, fmt=obs.trace_format)
        log.debug(
            "wrote trace %s (%d records, %d dropped)",
            path,
            len(tracer.records),
            tracer.dropped,
        )


def execute_job(job: SimulationJob) -> "SimulationResult":
    """Module-level entry point for process-pool workers (picklable)."""
    return job.run()
