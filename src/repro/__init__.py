"""repro: reproduction of "Improving DRAM Performance by Parallelizing
Refreshes with Accesses" (Chang et al., HPCA 2014).

The package implements, from scratch, a cycle-level DRAM system simulator
(DDR3-1333 timing model with ranks, banks and subarrays), an FR-FCFS memory
controller with write batching, an out-of-order-lite multi-core front end
with a writeback last-level cache, a Micron-style DRAM power model, and the
paper's refresh mechanisms:

* **DARP**  — Dynamic Access Refresh Parallelization (out-of-order per-bank
  refresh plus write-refresh parallelization),
* **SARP**  — Subarray Access Refresh Parallelization (serving accesses to
  idle subarrays of a refreshing bank),
* **DSARP** — the combination of both,

together with the baselines they are compared against: all-bank refresh,
per-bank refresh, elastic refresh, DDR4 fine-granularity refresh and
adaptive refresh.

Quickstart
----------
>>> from repro import paper_system, run_mechanism_comparison
>>> result = run_mechanism_comparison(
...     density_gb=32, mechanisms=("refab", "refpb", "dsarp", "none"),
...     cycles=6000,
... )
>>> sorted(result.weighted_speedup, key=result.weighted_speedup.get)
"""

from repro.config import (
    CacheConfig,
    ControllerConfig,
    CPUConfig,
    DRAMConfig,
    DRAMOrganization,
    DRAMTimings,
    RefreshConfig,
    RefreshMechanism,
    SystemConfig,
    baseline_densities,
    mechanism_names,
    paper_system,
)
from repro.engine import (
    InMemoryStore,
    JsonlStore,
    ParallelExecutor,
    SerialExecutor,
    SimulationJob,
)
from repro.sim.results import SimulationResult, WorkloadResult
from repro.sim.runner import ExperimentRunner, run_mechanism_comparison, run_workload
from repro.sim.simulator import Simulator
from repro.sweep import Axis, SweepSpec, WorkloadSpec, run_sweep
from repro.version import __version__
from repro.workloads import (
    Benchmark,
    Workload,
    benchmark_suite,
    make_workload,
    make_workload_category,
)

__all__ = [
    "__version__",
    "SimulationJob",
    "SerialExecutor",
    "ParallelExecutor",
    "InMemoryStore",
    "JsonlStore",
    "SystemConfig",
    "DRAMConfig",
    "DRAMOrganization",
    "DRAMTimings",
    "ControllerConfig",
    "CPUConfig",
    "CacheConfig",
    "RefreshConfig",
    "RefreshMechanism",
    "paper_system",
    "baseline_densities",
    "mechanism_names",
    "Simulator",
    "SimulationResult",
    "WorkloadResult",
    "ExperimentRunner",
    "run_workload",
    "run_mechanism_comparison",
    "Axis",
    "SweepSpec",
    "WorkloadSpec",
    "run_sweep",
    "Benchmark",
    "Workload",
    "benchmark_suite",
    "make_workload",
    "make_workload_category",
]
