"""Refresh-mechanism configuration.

The mechanisms evaluated by the paper (Section 6) are:

* ``NONE``    — ideal baseline with refresh eliminated ("No REF"),
* ``REFAB``   — all-bank (rank-level) refresh, the DDR3 baseline,
* ``REFPB``   — per-bank refresh with the LPDDR round-robin order,
* ``ELASTIC`` — elastic refresh (Stuecheli et al., MICRO 2010),
* ``DARP``    — out-of-order per-bank refresh + write-refresh parallelization,
* ``SARPAB``  — subarray access-refresh parallelization on all-bank refresh,
* ``SARPPB``  — subarray access-refresh parallelization on per-bank refresh,
* ``DSARP``   — DARP combined with SARPpb,
* ``FGR2X`` / ``FGR4X`` — DDR4 fine-granularity refresh,
* ``AR``      — adaptive refresh (Mukundan et al., ISCA 2013).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RefreshMechanism(str, enum.Enum):
    """Identifiers for every refresh mechanism evaluated in the paper."""

    NONE = "none"
    REFAB = "refab"
    REFPB = "refpb"
    ELASTIC = "elastic"
    DARP = "darp"
    SARPAB = "sarpab"
    SARPPB = "sarppb"
    DSARP = "dsarp"
    FGR2X = "fgr2x"
    FGR4X = "fgr4x"
    AR = "ar"

    @property
    def uses_per_bank_refresh(self) -> bool:
        """True if the mechanism issues per-bank (REFpb) commands."""
        return self in {
            RefreshMechanism.REFPB,
            RefreshMechanism.DARP,
            RefreshMechanism.SARPPB,
            RefreshMechanism.DSARP,
        }

    @property
    def uses_sarp(self) -> bool:
        """True if the mechanism allows accesses to a refreshing bank."""
        return self in {
            RefreshMechanism.SARPAB,
            RefreshMechanism.SARPPB,
            RefreshMechanism.DSARP,
        }

    @property
    def uses_darp_scheduling(self) -> bool:
        """True if the mechanism uses DARP's out-of-order refresh scheduling."""
        return self in {RefreshMechanism.DARP, RefreshMechanism.DSARP}

    @property
    def fgr_mode(self) -> int:
        """DDR4 fine-granularity-refresh factor implied by the mechanism."""
        if self is RefreshMechanism.FGR2X:
            return 2
        if self is RefreshMechanism.FGR4X:
            return 4
        return 1


@dataclass(frozen=True)
class RefreshConfig:
    """Options for the refresh mechanism under evaluation."""

    mechanism: RefreshMechanism = RefreshMechanism.REFAB
    #: JEDEC allows up to eight refresh commands to be postponed.
    max_postpone: int = 8
    #: JEDEC also allows up to eight refresh commands to be pulled in
    #: (issued early).  The default here is zero: pulling refreshes in ahead
    #: of schedule does not change steady-state refresh work, but in the
    #: finite simulation windows this harness uses it would add refresh
    #: work inside the measured window that a real long-running system
    #: would amortize over future intervals, unfairly penalizing DARP.
    #: DARP's scheduling freedom (refreshing *owed* refreshes out of order
    #: and during writeback mode) is unaffected; set this to 8 to model the
    #: full JEDEC allowance.
    max_pullin: int = 0
    #: DARP ablation switches (Section 6.1.2): disable one component.
    enable_out_of_order: bool = True
    enable_write_refresh_parallelization: bool = True
    #: Initial refresh backlog (per rank for elastic refresh, per bank for
    #: DARP), modelling the steady state reached after running for many
    #: refresh intervals under load.  Without it a short simulation window
    #: would let postponing policies push most of their refresh work past
    #: the end of the window, overstating their benefit.
    steady_state_backlog: int = 7
    #: Elastic refresh: number of idle-period samples in the moving average.
    elastic_history: int = 32
    #: Adaptive refresh: queue-pressure threshold for switching to 4x mode.
    ar_pressure_threshold: int = 4
    #: Seed for the random idle-bank selection in DARP (Figure 8, step 3).
    scheduler_seed: int = 1

    @classmethod
    def for_mechanism(
        cls,
        mechanism: RefreshMechanism | str,
        **kwargs,
    ) -> "RefreshConfig":
        """Build a refresh configuration from a mechanism name."""
        if isinstance(mechanism, str):
            mechanism = RefreshMechanism(mechanism)
        return cls(mechanism=mechanism, **kwargs)

    def fingerprint(self) -> tuple:
        return (
            self.mechanism.value,
            self.max_postpone,
            self.max_pullin,
            self.enable_out_of_order,
            self.enable_write_refresh_parallelization,
            self.steady_state_backlog,
            self.elastic_history,
            self.ar_pressure_threshold,
            self.scheduler_seed,
        )
