"""Observability configuration (:class:`ObsConfig`).

Lives in the config package (not :mod:`repro.obs`) so that
:class:`~repro.config.system.SystemConfig` can embed it without importing
the observability machinery — config stays a leaf package.

Like the ``kernel`` field, observability settings are excluded from
:meth:`SystemConfig.fingerprint`: tracing, epoch sampling and profiling
never change simulated behaviour, so a traced and an untraced run of the
same system share cached results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ObsConfig:
    """Tracing and epoch-sampling knobs for one simulation.

    ``trace`` arms the command-stream tracer; records accumulate in a ring
    buffer of ``trace_buffer`` entries (oldest dropped first, with a drop
    counter).  ``trace_dir``/``trace_format`` tell the engine job runner
    where and how to persist the buffer after a run.  ``epoch_interval``
    (cycles) enables the epoch sampler; 0 disables it.
    """

    trace: bool = False
    trace_buffer: int = 1 << 20
    trace_dir: Optional[str] = None
    trace_format: str = "jsonl"
    epoch_interval: int = 0

    #: Supported on-disk trace formats.
    TRACE_FORMATS = ("jsonl", "binary")

    def __post_init__(self) -> None:
        if self.trace_format not in self.TRACE_FORMATS:
            raise ValueError(
                f"trace_format must be one of {self.TRACE_FORMATS}, "
                f"got {self.trace_format!r}"
            )
        if self.trace_buffer < 1:
            raise ValueError(f"trace_buffer must be >= 1, got {self.trace_buffer}")
        if self.epoch_interval < 0:
            raise ValueError(
                f"epoch_interval must be >= 0, got {self.epoch_interval}"
            )
