"""Processor-core and cache configuration (Table 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUConfig:
    """Core model parameters.

    The paper evaluates 8 cores at 4 GHz with 3-wide issue, a 128-entry
    instruction window and 8 MSHRs per core.  The DRAM bus runs at 666 MHz
    (DDR3-1333), i.e. six CPU cycles per DRAM bus cycle.
    """

    num_cores: int = 8
    frequency_ghz: float = 4.0
    issue_width: int = 3
    instruction_window: int = 128
    mshrs_per_core: int = 8
    #: CPU cycles per DRAM bus cycle (4 GHz / 666 MHz).
    cpu_cycles_per_dram_cycle: int = 6

    @property
    def insts_per_dram_cycle(self) -> int:
        """Maximum instructions a core can retire per DRAM bus cycle."""
        return self.issue_width * self.cpu_cycles_per_dram_cycle

    def fingerprint(self) -> tuple:
        return (
            self.num_cores,
            self.issue_width,
            self.instruction_window,
            self.mshrs_per_core,
            self.cpu_cycles_per_dram_cycle,
        )


@dataclass(frozen=True)
class CacheConfig:
    """Last-level cache parameters: 512 KB, 16-way, 64 B lines per core."""

    size_bytes: int = 512 * 1024
    associativity: int = 16
    line_bytes: int = 64
    #: LLC hit latency in CPU cycles (absorbed into core progress).
    hit_latency_cpu_cycles: int = 20

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.associativity * self.line_bytes)
        if sets <= 0:
            raise ValueError("cache too small for the requested associativity")
        return sets

    def fingerprint(self) -> tuple:
        return (self.size_bytes, self.associativity, self.line_bytes)
