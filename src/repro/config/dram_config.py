"""DRAM organization and timing parameters.

All timing parameters are expressed in DRAM bus cycles of a DDR3-1333 device
(tCK = 1.5 ns) unless the name carries an explicit ``_ns`` suffix.  The
refresh-related parameters follow Section 3.1 and Table 1 of the paper:

* ``tRFCab`` = 350 / 530 / 890 ns for 8 / 16 / 32 Gb chips,
* ``tREFIab`` = 3.9 us for the default 32 ms retention time,
* ``tRFCpb`` = ``tRFCab`` / 2.3 (the LPDDR2-derived ratio).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


#: Measured all-bank refresh latencies (ns) for existing DRAM densities (Gb),
#: taken from DDR3 datasheets; these anchor the linear projections of Fig. 5.
REFRESH_LATENCY_NS: dict[int, float] = {
    1: 110.0,
    2: 160.0,
    4: 260.0,
    8: 350.0,
}

#: Ratio between all-bank and per-bank refresh latency, derived from the
#: 2 Gb LPDDR2 datasheet (tRFCab = 210 ns, tRFCpb = 90 ns), Section 3.1.
TRFC_AB_TO_PB_RATIO = 2.3

#: Number of refresh commands distributed over one retention window
#: (64 ms / 7.8 us for DDR3; the same 8192 commands apply at 32 ms / 3.9 us).
REFRESH_COMMANDS_PER_RETENTION = 8192


def projected_trfc_ns(density_gb: float, projection: int = 2) -> float:
    """Project ``tRFCab`` (ns) for a DRAM density using linear extrapolation.

    ``projection=1`` extrapolates from the 1, 2 and 4 Gb datapoints and
    ``projection=2`` (the paper's choice, more optimistic) from the 4 and
    8 Gb datapoints.  Densities with measured values return the measured
    value regardless of the projection.
    """
    if density_gb in REFRESH_LATENCY_NS:
        return REFRESH_LATENCY_NS[int(density_gb)]
    if projection == 1:
        points = [(1, 110.0), (2, 160.0), (4, 260.0)]
    elif projection == 2:
        points = [(4, 260.0), (8, 350.0)]
    else:
        raise ValueError(f"unknown projection {projection!r}; expected 1 or 2")
    n = len(points)
    mean_x = sum(p[0] for p in points) / n
    mean_y = sum(p[1] for p in points) / n
    denom = sum((p[0] - mean_x) ** 2 for p in points)
    slope = sum((p[0] - mean_x) * (p[1] - mean_y) for p in points) / denom
    intercept = mean_y - slope * mean_x
    return intercept + slope * density_gb


@dataclass(frozen=True)
class DRAMOrganization:
    """Structural organization of the DRAM system (Table 1)."""

    channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    subarrays_per_bank: int = 8
    rows_per_bank: int = 65536
    row_size_bytes: int = 8192
    cacheline_bytes: int = 64

    @property
    def columns_per_row(self) -> int:
        """Number of cache-line-sized columns per DRAM row."""
        return self.row_size_bytes // self.cacheline_bytes

    @property
    def rows_per_subarray(self) -> int:
        """Rows contained in one subarray group."""
        return self.rows_per_bank // self.subarrays_per_bank

    @property
    def banks_per_channel(self) -> int:
        return self.ranks_per_channel * self.banks_per_rank

    @property
    def total_banks(self) -> int:
        return self.channels * self.banks_per_channel

    def capacity_bytes(self) -> int:
        """Total addressable capacity of the DRAM system."""
        return (
            self.channels
            * self.ranks_per_channel
            * self.banks_per_rank
            * self.rows_per_bank
            * self.row_size_bytes
        )

    def subarray_of_row(self, row: int) -> int:
        """Return the subarray group index that contains ``row``."""
        return row // self.rows_per_subarray


@dataclass(frozen=True)
class DRAMTimings:
    """DDR3-1333 timing parameters in DRAM bus cycles (tCK = 1.5 ns)."""

    tCK_ns: float = 1.5
    tCL: int = 9
    tCWL: int = 8
    tRCD: int = 9
    tRP: int = 9
    tRAS: int = 24
    tBL: int = 4
    tCCD: int = 4
    tRTP: int = 5
    tWR: int = 10
    tWTR: int = 5
    tRTW: int = 5
    tRRD: int = 4
    tFAW: int = 20
    tREFIab: int = 2604
    tRFCab: int = 234
    tRFCpb: int = 102

    @property
    def tRC(self) -> int:
        """Row cycle time (ACT-to-ACT on the same bank)."""
        return self.tRAS + self.tRP

    @property
    def tREFIpb(self) -> int:
        """Per-bank refresh interval: one eighth of the all-bank interval."""
        return self.tREFIab // 8

    @property
    def read_latency(self) -> int:
        """Column command to end-of-burst latency for reads."""
        return self.tCL + self.tBL

    @property
    def write_latency(self) -> int:
        """Column command to end-of-burst latency for writes."""
        return self.tCWL + self.tBL

    def ns(self, cycles: int) -> float:
        """Convert a cycle count to nanoseconds."""
        return cycles * self.tCK_ns

    def cycles(self, nanoseconds: float) -> int:
        """Convert nanoseconds to (rounded-up) DRAM cycles."""
        return int(math.ceil(nanoseconds / self.tCK_ns))


@dataclass(frozen=True)
class DRAMConfig:
    """Complete DRAM configuration: organization, timings and density."""

    density_gb: int = 8
    retention_ms: float = 32.0
    organization: DRAMOrganization = field(default_factory=DRAMOrganization)
    timings: DRAMTimings = field(default_factory=DRAMTimings)
    #: Fine-granularity refresh mode: 1 (normal), 2 or 4 (DDR4 FGR).
    fgr_mode: int = 1

    @classmethod
    def for_density(
        cls,
        density_gb: int,
        retention_ms: float = 32.0,
        organization: DRAMOrganization | None = None,
        fgr_mode: int = 1,
        projection: int = 2,
    ) -> "DRAMConfig":
        """Build a configuration for a DRAM density (Gb).

        The refresh latencies are looked up (or linearly projected, Fig. 5)
        and converted to DRAM cycles; ``tREFIab`` follows from the retention
        time and the 8192 refresh commands per retention window.  ``fgr_mode``
        of 2 or 4 applies the DDR4 fine-granularity-refresh scaling of
        Section 6.5 (tREFI / mode, tRFC / 1.35 or / 1.63).
        """
        org = organization or DRAMOrganization()
        base = DRAMTimings()
        trfc_ab_ns = projected_trfc_ns(density_gb, projection=projection)
        trefi_ab_ns = retention_ms * 1e6 / REFRESH_COMMANDS_PER_RETENTION
        if fgr_mode == 1:
            pass
        elif fgr_mode == 2:
            trefi_ab_ns /= 2.0
            trfc_ab_ns /= 1.35
        elif fgr_mode == 4:
            trefi_ab_ns /= 4.0
            trfc_ab_ns /= 1.63
        else:
            raise ValueError(f"unsupported FGR mode {fgr_mode!r}; expected 1, 2 or 4")
        trfc_ab = base.cycles(trfc_ab_ns)
        trfc_pb = base.cycles(trfc_ab_ns / TRFC_AB_TO_PB_RATIO)
        trefi_ab = base.cycles(trefi_ab_ns)
        timings = replace(
            base,
            tRFCab=trfc_ab,
            tRFCpb=trfc_pb,
            tREFIab=trefi_ab,
        )
        return cls(
            density_gb=density_gb,
            retention_ms=retention_ms,
            organization=org,
            timings=timings,
            fgr_mode=fgr_mode,
        )

    def with_subarrays(self, subarrays_per_bank: int) -> "DRAMConfig":
        """Return a copy with a different number of subarrays per bank."""
        org = replace(self.organization, subarrays_per_bank=subarrays_per_bank)
        return replace(self, organization=org)

    def with_tfaw(self, tfaw: int, trrd: int) -> "DRAMConfig":
        """Return a copy with different tFAW / tRRD values (Table 4 sweep)."""
        timings = replace(self.timings, tFAW=tfaw, tRRD=trrd)
        return replace(self, timings=timings)

    @property
    def rows_per_refresh(self) -> int:
        """Rows refreshed in one bank per refresh command.

        8192 all-bank refresh commands cover every row of every bank once per
        retention window, so each command refreshes ``rows_per_bank / 8192``
        rows of each bank (at least one).  Fine-granularity refresh issues
        ``fgr_mode`` times more commands, each refreshing proportionally
        fewer rows.
        """
        per_command = self.organization.rows_per_bank
        per_command //= REFRESH_COMMANDS_PER_RETENTION * self.fgr_mode
        return max(1, per_command)

    def fingerprint(self) -> tuple:
        """Hashable summary used by the experiment run-cache."""
        org = self.organization
        t = self.timings
        return (
            self.density_gb,
            self.retention_ms,
            self.fgr_mode,
            org.channels,
            org.ranks_per_channel,
            org.banks_per_rank,
            org.subarrays_per_bank,
            org.rows_per_bank,
            t.tRFCab,
            t.tRFCpb,
            t.tREFIab,
            t.tFAW,
            t.tRRD,
        )
