"""Named configuration presets that mirror the paper's evaluated systems."""

from __future__ import annotations

from repro.config.controller_config import ControllerConfig
from repro.config.cpu_config import CacheConfig, CPUConfig
from repro.config.dram_config import DRAMConfig, DRAMOrganization
from repro.config.refresh_config import RefreshConfig, RefreshMechanism
from repro.config.system import SystemConfig

#: DRAM densities evaluated in the paper's main results (Gb).
def baseline_densities() -> tuple[int, ...]:
    """The three DRAM chip densities evaluated throughout Section 6."""
    return (8, 16, 32)


def mechanism_names() -> tuple[str, ...]:
    """All refresh mechanisms evaluated in Figure 13, in presentation order."""
    return (
        RefreshMechanism.REFAB.value,
        RefreshMechanism.REFPB.value,
        RefreshMechanism.ELASTIC.value,
        RefreshMechanism.DARP.value,
        RefreshMechanism.SARPAB.value,
        RefreshMechanism.SARPPB.value,
        RefreshMechanism.DSARP.value,
        RefreshMechanism.NONE.value,
    )


def paper_system(
    density_gb: int = 8,
    mechanism: RefreshMechanism | str = RefreshMechanism.REFAB,
    num_cores: int = 8,
    retention_ms: float = 32.0,
    subarrays_per_bank: int = 8,
    rows_per_bank: int = 65536,
    **refresh_kwargs,
) -> SystemConfig:
    """Build the paper's evaluated system (Table 1) with the given knobs.

    Parameters
    ----------
    density_gb:
        DRAM chip density; determines tRFCab / tRFCpb (Section 3.1).
    mechanism:
        Refresh mechanism to evaluate (see :class:`RefreshMechanism`).
    num_cores:
        Number of processor cores (Table 3 varies 2 / 4 / 8).
    retention_ms:
        DRAM retention time; the paper uses 32 ms by default and 64 ms in
        Table 6.
    subarrays_per_bank:
        Subarray groups per bank (Table 5 varies 1 through 64).
    rows_per_bank:
        Rows per bank (64 K in Table 1).
    refresh_kwargs:
        Extra options forwarded to :class:`RefreshConfig` (for ablations).
    """
    if isinstance(mechanism, str):
        mechanism = RefreshMechanism(mechanism)
    organization = DRAMOrganization(
        subarrays_per_bank=subarrays_per_bank,
        rows_per_bank=rows_per_bank,
    )
    dram = DRAMConfig.for_density(
        density_gb,
        retention_ms=retention_ms,
        organization=organization,
        fgr_mode=mechanism.fgr_mode,
    )
    return SystemConfig(
        dram=dram,
        controller=ControllerConfig(),
        cpu=CPUConfig(num_cores=num_cores),
        cache=CacheConfig(),
        refresh=RefreshConfig.for_mechanism(mechanism, **refresh_kwargs),
    )
