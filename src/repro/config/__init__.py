"""Configuration objects for the DRAM refresh-parallelization simulator.

The configuration layer mirrors Table 1 of Chang et al. (HPCA 2014): a
DDR3-1333 DRAM system with 2 channels, 2 ranks per channel, 8 banks per rank
and 8 subarrays per bank, driven by an 8-core, 4 GHz processor with a 512 KB
per-core last-level cache slice and an FR-FCFS memory controller that drains
writes in batches.
"""

from repro.config.controller_config import ControllerConfig
from repro.config.cpu_config import CacheConfig, CPUConfig
from repro.config.dram_config import (
    REFRESH_LATENCY_NS,
    DRAMConfig,
    DRAMOrganization,
    DRAMTimings,
    projected_trfc_ns,
)
from repro.config.presets import baseline_densities, mechanism_names, paper_system
from repro.config.refresh_config import RefreshConfig, RefreshMechanism
from repro.config.system import SystemConfig

__all__ = [
    "DRAMOrganization",
    "DRAMTimings",
    "DRAMConfig",
    "REFRESH_LATENCY_NS",
    "projected_trfc_ns",
    "ControllerConfig",
    "CPUConfig",
    "CacheConfig",
    "RefreshConfig",
    "RefreshMechanism",
    "SystemConfig",
    "paper_system",
    "baseline_densities",
    "mechanism_names",
]
