"""Top-level system configuration combining all subsystem configurations."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config.controller_config import ControllerConfig
from repro.config.cpu_config import CacheConfig, CPUConfig
from repro.config.dram_config import DRAMConfig
from repro.config.obs_config import ObsConfig
from repro.config.refresh_config import RefreshConfig, RefreshMechanism


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of the simulated system.

    A :class:`SystemConfig` fully determines a simulation apart from the
    workload: DRAM density and timings, memory controller parameters, core
    and cache parameters, and the refresh mechanism under evaluation.
    """

    dram: DRAMConfig = field(default_factory=DRAMConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    cpu: CPUConfig = field(default_factory=CPUConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    refresh: RefreshConfig = field(default_factory=RefreshConfig)
    #: Execution kernel: ``"event"`` advances time in one jump across
    #: provably idle spans (identical results, much faster), ``"cycle"``
    #: is the legacy tick-every-cycle loop kept as the differential
    #: reference.  Excluded from :meth:`fingerprint` on purpose — the two
    #: kernels are bit-identical, so cached results are shared.
    kernel: str = "event"
    #: Observability settings (command tracing, epoch sampling).  Like
    #: ``kernel``, excluded from :meth:`fingerprint`: observation never
    #: changes simulated results, so traced and untraced runs of the same
    #: system share cached results.
    obs: ObsConfig = field(default_factory=ObsConfig)

    KERNELS = ("event", "cycle")

    def __post_init__(self) -> None:
        if self.kernel not in self.KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of {self.KERNELS}"
            )

    def with_kernel(self, kernel: str) -> "SystemConfig":
        """Return a copy running on a different execution kernel."""
        return replace(self, kernel=kernel)

    def with_obs(self, **changes) -> "SystemConfig":
        """Return a copy with observability settings changed."""
        return replace(self, obs=replace(self.obs, **changes))

    def with_scheduler(self, scheduler: str) -> "SystemConfig":
        """Return a copy using a different demand-scheduling policy."""
        return replace(self, controller=replace(self.controller, scheduler=scheduler))

    def with_page_policy(self, page_policy: str) -> "SystemConfig":
        """Return a copy using a different page-management policy."""
        return replace(
            self, controller=replace(self.controller, page_policy=page_policy)
        )

    def with_mechanism(
        self,
        mechanism: RefreshMechanism | str,
        **kwargs,
    ) -> "SystemConfig":
        """Return a copy configured for a different refresh mechanism.

        FGR mechanisms also change the DRAM refresh timings (tREFI / tRFC),
        so the DRAM configuration is rebuilt accordingly.
        """
        refresh = RefreshConfig.for_mechanism(mechanism, **kwargs)
        dram = self.dram
        if refresh.mechanism.fgr_mode != self.dram.fgr_mode:
            dram = DRAMConfig.for_density(
                self.dram.density_gb,
                retention_ms=self.dram.retention_ms,
                organization=self.dram.organization,
                fgr_mode=refresh.mechanism.fgr_mode,
            )
        return replace(self, refresh=refresh, dram=dram)

    def with_cores(self, num_cores: int) -> "SystemConfig":
        """Return a copy with a different core count (Table 3 sweep)."""
        return replace(self, cpu=replace(self.cpu, num_cores=num_cores))

    def with_density(self, density_gb: int) -> "SystemConfig":
        """Return a copy for a different DRAM density, keeping other knobs."""
        dram = DRAMConfig.for_density(
            density_gb,
            retention_ms=self.dram.retention_ms,
            organization=self.dram.organization,
            fgr_mode=self.dram.fgr_mode,
        )
        return replace(self, dram=dram)

    def fingerprint(self) -> tuple:
        """Hashable summary of everything that affects simulation results.

        The fingerprint is built exclusively from primitives (numbers,
        strings, booleans) nested in tuples, so it is stable across
        processes and interpreter runs — unlike ``hash()``, which is
        salted per process.  The experiment engine relies on this to key
        its persistent result stores (see
        :func:`repro.engine.jobs.fingerprint_digest`).
        """
        return (
            self.dram.fingerprint(),
            self.controller.fingerprint(),
            self.cpu.fingerprint(),
            self.cache.fingerprint(),
            self.refresh.fingerprint(),
        )

    def to_dict(self) -> dict:
        """JSON-compatible representation of the full configuration tree.

        Round-trips through :meth:`from_dict`: nested sub-configs become
        nested dicts and the refresh mechanism serializes as its name, so
        configurations can live in version-controlled JSON files alongside
        sweep specs.
        """
        from repro.config.serialize import to_plain

        return to_plain(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Inverse of :meth:`to_dict`; unknown keys are an error and every
        sub-config's validation re-runs during reconstruction."""
        from repro.config.serialize import from_plain

        return from_plain(cls, data)
