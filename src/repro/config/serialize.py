"""Dict serialization for the (nested, frozen) configuration dataclasses.

The configuration tree is plain frozen dataclasses with primitive fields,
nested sub-configs and the :class:`~repro.config.refresh_config.RefreshMechanism`
enum.  These two helpers give every config class a JSON-compatible
``to_dict``/``from_dict`` pair without hand-maintaining field lists:
``to_plain`` walks dataclasses and enums down to primitives, and
``from_plain`` rebuilds the tree from type hints, re-running each
dataclass's ``__post_init__`` validation on the way up.
"""

from __future__ import annotations

import dataclasses
import enum
import typing


def to_plain(value: object) -> object:
    """Recursively convert a config value to JSON-compatible primitives."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_plain(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [to_plain(item) for item in value]
    return value


def from_plain(cls: type, data: dict):
    """Rebuild a config dataclass from :func:`to_plain` output.

    Unknown keys are an error (a typo'd key would otherwise silently fall
    back to the field default and configure a different system than the
    author intended); missing keys keep their defaults.
    """
    if not isinstance(data, dict):
        raise ValueError(
            f"{cls.__name__} expects a mapping, got {type(data).__name__}"
        )
    field_types = typing.get_type_hints(cls)
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown {cls.__name__} keys: {', '.join(unknown)}")
    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue
        target = field_types[field.name]
        value = data[field.name]
        if dataclasses.is_dataclass(target) and isinstance(value, dict):
            value = from_plain(target, value)
        elif isinstance(target, type) and issubclass(target, enum.Enum):
            value = target(value)
        kwargs[field.name] = value
    return cls(**kwargs)
