"""Memory-controller configuration (Table 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ControllerConfig:
    """Per-channel memory controller parameters.

    The paper's controller uses 64-entry read and write request queues, an
    FR-FCFS scheduling policy, a closed-row page policy, and batches writes:
    the channel enters writeback mode when the write queue fills beyond a
    high watermark and drains until it falls to the low watermark (32).
    """

    read_queue_entries: int = 64
    write_queue_entries: int = 64
    #: Write-queue occupancy that triggers writeback (drain) mode.
    write_high_watermark: int = 48
    #: Write-queue occupancy at which writeback mode ends (Table 1: 32).
    write_low_watermark: int = 32
    #: Closed-row policy: precharge as soon as no queued request hits the row.
    closed_row: bool = True
    #: Maximum candidate commands examined by FR-FCFS per cycle.
    scheduling_window: int = 16

    def __post_init__(self) -> None:
        if self.write_low_watermark >= self.write_high_watermark:
            raise ValueError(
                "write_low_watermark must be below write_high_watermark "
                f"(got {self.write_low_watermark} >= {self.write_high_watermark})"
            )
        if self.write_high_watermark > self.write_queue_entries:
            raise ValueError("write_high_watermark exceeds write queue size")

    def fingerprint(self) -> tuple:
        """Hashable summary used by the experiment run-cache."""
        return (
            self.read_queue_entries,
            self.write_queue_entries,
            self.write_high_watermark,
            self.write_low_watermark,
            self.closed_row,
        )
