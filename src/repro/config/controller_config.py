"""Memory-controller configuration (Table 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

#: Page-management policies every scheduler honours.  Single source of
#: truth for names and descriptions: the scheduler layer imports the
#: constants for its column-command construction and the CLI renders the
#: descriptions.  A new policy added here must also be given behaviour in
#: ``SchedulerPolicy._column_command`` (repro.controller.policies.base).
PAGE_POLICY_CLOSED = "closed"
PAGE_POLICY_OPEN = "open"
PAGE_POLICY_DESCRIPTIONS: dict[str, str] = {
    PAGE_POLICY_CLOSED: (
        "precharge as soon as no queued request hits the open row"
    ),
    PAGE_POLICY_OPEN: (
        "keep rows open until a conflict (or row-hit cap) closes them"
    ),
}
PAGE_POLICIES: tuple[str, ...] = tuple(PAGE_POLICY_DESCRIPTIONS)


@dataclass(frozen=True)
class ControllerConfig:
    """Per-channel memory controller parameters.

    The paper's controller uses 64-entry read and write request queues, an
    FR-FCFS scheduling policy, a closed-row page policy, and batches writes:
    the channel enters writeback mode when the write queue fills beyond a
    high watermark and drains until it falls to the low watermark (32).

    Both the demand-scheduling policy and the page-management policy are
    pluggable: ``scheduler`` names a registered
    :class:`~repro.controller.policies.SchedulerPolicy` (``frfcfs`` —
    the paper's baseline — plus ``fcfs`` and ``frfcfs-cap``), and
    ``page_policy`` selects closed- or open-row management shared by every
    scheduler.  The defaults reproduce the paper's system bit-identically.
    """

    read_queue_entries: int = 64
    write_queue_entries: int = 64
    #: Write-queue occupancy that triggers writeback (drain) mode.
    write_high_watermark: int = 48
    #: Write-queue occupancy at which writeback mode ends (Table 1: 32).
    write_low_watermark: int = 32
    #: Registered demand-scheduling policy (see ``repro.controller.policies``).
    scheduler: str = "frfcfs"
    #: Page-management policy: ``closed`` or ``open`` (see ``PAGE_POLICIES``).
    page_policy: str = "closed"
    #: ``frfcfs-cap`` only: consecutive row hits a bank may serve before the
    #: scheduler forces the row closed.
    row_hit_cap: int = 4
    #: Maximum candidate commands examined by the scheduler per cycle.
    scheduling_window: int = 16

    def __post_init__(self) -> None:
        if self.write_low_watermark >= self.write_high_watermark:
            raise ValueError(
                "write_low_watermark must be below write_high_watermark "
                f"(got {self.write_low_watermark} >= {self.write_high_watermark})"
            )
        if self.write_high_watermark > self.write_queue_entries:
            raise ValueError("write_high_watermark exceeds write queue size")
        if self.page_policy not in PAGE_POLICIES:
            raise ValueError(
                f"unknown page policy {self.page_policy!r}; "
                f"expected one of {PAGE_POLICIES}"
            )
        if self.row_hit_cap < 1:
            raise ValueError(f"row_hit_cap must be positive, got {self.row_hit_cap}")
        # Imported lazily: the registry lives in the controller layer, which
        # sits above the configuration layer (mirrors the refresh-policy
        # factory import in MemorySystem).
        from repro.controller.policies import scheduler_class

        scheduler_class(self.scheduler)

    @property
    def closed_row(self) -> bool:
        """Whether the closed-row page policy is in force (compatibility)."""
        return self.page_policy == "closed"

    def fingerprint(self) -> tuple:
        """Hashable summary used by the experiment run-cache.

        ``row_hit_cap`` only participates when the configured scheduler
        actually reads it — otherwise configurations differing only in an
        inert knob would simulate (and cache) separately despite being
        bit-identical.
        """
        from repro.controller.policies import scheduler_class

        row_hit_cap = (
            self.row_hit_cap
            if scheduler_class(self.scheduler).uses_row_hit_cap
            else None
        )
        return (
            self.read_queue_entries,
            self.write_queue_entries,
            self.write_high_watermark,
            self.write_low_watermark,
            self.scheduler,
            self.page_policy,
            row_hit_cap,
        )

    def to_dict(self) -> dict:
        """JSON-compatible representation (see :meth:`from_dict`)."""
        from repro.config.serialize import to_plain

        return to_plain(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ControllerConfig":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        from repro.config.serialize import from_plain

        return from_plain(cls, data)
