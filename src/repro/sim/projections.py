"""Refresh-latency scaling projections (Figure 5).

The paper estimates how tRFCab grows with DRAM density by linear
extrapolation: Projection 1 from the 1 / 2 / 4 Gb datapoints and
Projection 2 (the more optimistic one used for the evaluation) from the
4 / 8 Gb datapoints.  This module regenerates the figure's data series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram_config import REFRESH_LATENCY_NS, projected_trfc_ns


@dataclass(frozen=True)
class RefreshLatencyPoint:
    """One point of Figure 5."""

    density_gb: int
    present_ns: float | None
    projection1_ns: float
    projection2_ns: float


def refresh_latency_trend(
    densities: tuple[int, ...] = (1, 8, 16, 24, 32, 40, 48, 56, 64),
) -> list[RefreshLatencyPoint]:
    """Regenerate Figure 5's data: tRFCab versus DRAM density."""
    points = []
    for density in densities:
        present = REFRESH_LATENCY_NS.get(density)
        points.append(
            RefreshLatencyPoint(
                density_gb=density,
                present_ns=present,
                projection1_ns=projected_trfc_ns(density, projection=1),
                projection2_ns=projected_trfc_ns(density, projection=2),
            )
        )
    return points
