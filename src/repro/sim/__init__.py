"""Simulation driver, experiment runner and the paper's experiment definitions."""

from repro.sim.projections import refresh_latency_trend
from repro.sim.results import MechanismComparison, SimulationResult, WorkloadResult
from repro.sim.runner import ExperimentRunner, run_mechanism_comparison, run_workload
from repro.sim.simulator import Simulator

__all__ = [
    "Simulator",
    "SimulationResult",
    "WorkloadResult",
    "MechanismComparison",
    "ExperimentRunner",
    "run_workload",
    "run_mechanism_comparison",
    "refresh_latency_trend",
]
