"""Simulation driver, experiment runner and the paper's experiment definitions."""

from repro.sim.simulator import Simulator
from repro.sim.results import SimulationResult, WorkloadResult, MechanismComparison
from repro.sim.runner import ExperimentRunner, run_workload, run_mechanism_comparison
from repro.sim.projections import refresh_latency_trend

__all__ = [
    "Simulator",
    "SimulationResult",
    "WorkloadResult",
    "MechanismComparison",
    "ExperimentRunner",
    "run_workload",
    "run_mechanism_comparison",
    "refresh_latency_trend",
]
