"""Experiment runner with result caching, built on the experiment engine.

Reproducing the paper's figures requires many simulations sharing common
pieces (the REFab baseline, the alone-run IPCs of each benchmark, ...).
The :class:`ExperimentRunner` memoizes every simulation it performs, keyed
by the configuration and workload fingerprints, so the figure- and
table-level experiments can be composed without repeating work.

Execution is delegated to the :mod:`repro.engine` subsystem: the runner
*plans* batches of :class:`~repro.engine.jobs.SimulationJob` specs and
submits them through a :class:`~repro.engine.executor.JobExecutor`.  With a
:class:`~repro.engine.executor.ParallelExecutor` the batch fans out across
cores, and with a persistent :class:`~repro.engine.store.ResultStore` the
results are shared across processes, benchmarks and CI runs.  The
single-call API (:meth:`ExperimentRunner.simulate`, ...) is a thin wrapper
over the batched one (:meth:`simulate_many`, :meth:`run_many`,
:meth:`compare_many`).
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Iterable, Optional, Sequence

from repro.config.controller_config import PAGE_POLICIES
from repro.config.obs_config import ObsConfig
from repro.config.presets import paper_system
from repro.config.refresh_config import RefreshMechanism
from repro.config.system import SystemConfig
from repro.controller.policies import scheduler_class
from repro.obs.log import get_logger
from repro.engine.executor import JobExecutor, SerialExecutor
from repro.engine.jobs import SimulationJob
from repro.engine.progress import SOURCE_MEMORY, JobEvent, ProgressCallback
from repro.engine.store import ResultStore
from repro.sim.results import MechanismComparison, SimulationResult, WorkloadResult
from repro.workloads.benchmark_suite import Benchmark
from repro.workloads.mixes import Workload, make_workload, make_workload_category

#: Default measured window, in DRAM cycles (~39 us of DDR3-1333 time, i.e.
#: ten all-bank refresh intervals at 32 ms retention).
DEFAULT_CYCLES = 26000
#: Default warmup window (one refresh interval).
DEFAULT_WARMUP = 2600

log = get_logger(__name__)


def default_cycles() -> int:
    """Measured-window length, overridable through ``REPRO_CYCLES``."""
    return int(os.environ.get("REPRO_CYCLES", DEFAULT_CYCLES))


def default_warmup() -> int:
    """Warmup length, overridable through ``REPRO_WARMUP``."""
    return int(os.environ.get("REPRO_WARMUP", DEFAULT_WARMUP))


class ExperimentRunner:
    """Plans, runs and caches simulations for the experiment harness.

    Parameters
    ----------
    cycles, warmup, seed:
        The measured window shared by every simulation this runner plans.
    executor:
        Engine executor the job batches are submitted through; defaults to
        a :class:`~repro.engine.executor.SerialExecutor`.  Pass a
        :class:`~repro.engine.executor.ParallelExecutor` to fan batches
        out over worker processes.
    store:
        Optional persistent result store consulted before simulating and
        warmed with every fresh result.
    progress:
        Optional callback receiving one
        :class:`~repro.engine.progress.JobEvent` per resolved job.
    kernel:
        Optional execution-kernel override (``"event"`` or ``"cycle"``)
        applied to every configuration this runner simulates.  The two
        kernels produce bit-identical results (enforced by the
        differential suite in ``tests/test_kernel_equivalence.py``), so
        the kernel is not part of the result fingerprint and cached
        results are shared across kernels.
    scheduler, page_policy:
        Optional controller-policy overrides applied to every configuration
        this runner simulates (including the alone runs), mirroring the
        ``--scheduler`` / ``--page-policy`` CLI flags.  Unlike the kernel,
        these *do* change results, so they are part of every fingerprint
        through :meth:`ControllerConfig.fingerprint`.
    obs:
        Optional :class:`~repro.config.obs_config.ObsConfig` applied to
        every configuration this runner simulates (the ``--trace`` /
        ``--epoch-interval`` CLI flags).  Like the kernel, observability
        never changes results and is excluded from fingerprints — but
        note the flip side: a job resolved from a store or memory cache
        skips simulation entirely and therefore writes no trace.
    """

    def __init__(
        self,
        cycles: Optional[int] = None,
        warmup: Optional[int] = None,
        seed: int = 0,
        executor: Optional[JobExecutor] = None,
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressCallback] = None,
        kernel: Optional[str] = None,
        scheduler: Optional[str] = None,
        page_policy: Optional[str] = None,
        obs: Optional[ObsConfig] = None,
    ):
        self.cycles = cycles if cycles is not None else default_cycles()
        self.warmup = warmup if warmup is not None else default_warmup()
        self.seed = seed
        self.executor = executor if executor is not None else SerialExecutor()
        self.store = store
        self.progress = progress
        if kernel is not None and kernel not in SystemConfig.KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {SystemConfig.KERNELS}"
            )
        self.kernel = kernel
        if scheduler is not None:
            scheduler_class(scheduler)  # unknown names fail fast, listing choices
        if page_policy is not None and page_policy not in PAGE_POLICIES:
            raise ValueError(
                f"unknown page policy {page_policy!r}; expected one of {PAGE_POLICIES}"
            )
        self.scheduler = scheduler
        self.page_policy = page_policy
        self.obs = obs
        self.memory_hits = 0
        self._simulation_cache: dict[tuple, SimulationResult] = {}
        self._alone_ipc_cache: dict[tuple, float] = {}

    # -- job planning ------------------------------------------------------------
    def _effective_config(self, config: SystemConfig) -> SystemConfig:
        """Apply this runner's kernel/policy overrides to a configuration.

        Every code path that fingerprints or simulates a configuration
        must go through this, so cache lookups and the jobs that populate
        the cache always agree on the (post-override) identity.
        """
        if self.kernel is not None and config.kernel != self.kernel:
            config = config.with_kernel(self.kernel)
        if self.scheduler is not None and config.controller.scheduler != self.scheduler:
            config = config.with_scheduler(self.scheduler)
        if (
            self.page_policy is not None
            and config.controller.page_policy != self.page_policy
        ):
            config = config.with_page_policy(self.page_policy)
        if self.obs is not None and config.obs != self.obs:
            config = replace(config, obs=self.obs)
        return config

    def _job(self, config: SystemConfig, workload: Workload) -> SimulationJob:
        return SimulationJob(
            config=self._effective_config(config),
            workload=workload,
            cycles=self.cycles,
            warmup=self.warmup,
            seed=self.seed,
        )

    def _fingerprint(self, config: SystemConfig, workload: Workload) -> tuple:
        return (
            self._effective_config(config).fingerprint(),
            workload.fingerprint(),
            self.cycles,
            self.warmup,
            self.seed,
        )

    def _result_for(self, config: SystemConfig, workload: Workload) -> SimulationResult:
        """Cached result if present, without touching the hit counters."""
        cached = self._simulation_cache.get(self._fingerprint(config, workload))
        if cached is not None:
            return cached
        return self.simulate(config, workload)

    # -- raw simulations ---------------------------------------------------------
    def simulate(self, config: SystemConfig, workload: Workload) -> SimulationResult:
        """Run (or recall) one simulation."""
        return self.simulate_many([(config, workload)])[0]

    def simulate_many(
        self, pairs: Iterable[tuple[SystemConfig, Workload]]
    ) -> list[SimulationResult]:
        """Run (or recall) a batch of simulations, preserving order.

        Cache misses are planned as one job batch and submitted through
        the engine executor, so independent simulations run concurrently
        when the executor is parallel.
        """
        pairs = list(pairs)
        jobs = [self._job(config, workload) for config, workload in pairs]
        fingerprints = [job.fingerprint() for job in jobs]
        missing: list[SimulationJob] = []
        missing_fingerprints: set[tuple] = set()
        missing_positions: list[int] = []
        for index, (job, fingerprint) in enumerate(zip(jobs, fingerprints)):
            if (
                fingerprint in self._simulation_cache
                or fingerprint in missing_fingerprints
            ):
                # Either already known, or a duplicate within this batch
                # that the first occurrence will resolve — no new work.
                self.memory_hits += 1
                if self.progress is not None:
                    self.progress(
                        JobEvent(
                            index=index,
                            total=len(jobs),
                            key=job.key(),
                            label=job.describe(),
                            source=SOURCE_MEMORY,
                        )
                    )
            else:
                missing.append(job)
                missing_fingerprints.add(fingerprint)
                missing_positions.append(index)
        if missing:
            log.debug(
                "batch of %d jobs: %d cache hits, %d to execute",
                len(jobs),
                len(jobs) - len(missing),
                len(missing),
            )
            progress = self.progress
            forward = None
            if progress is not None:
                # The executor numbers events within the missing-only
                # sub-batch; renumber them into this batch's index space so
                # the [i/total] counters stay consistent with memory hits.
                def forward(event: JobEvent) -> None:
                    progress(
                        replace(
                            event,
                            index=missing_positions[event.index],
                            total=len(jobs),
                        )
                    )

            results = self.executor.run(missing, store=self.store, progress=forward)
            for job, result in zip(missing, results):
                self._simulation_cache[job.fingerprint()] = result
        return [self._simulation_cache[fingerprint] for fingerprint in fingerprints]

    # -- alone runs for weighted speedup ---------------------------------------------
    def _alone_config(self, config: SystemConfig) -> SystemConfig:
        return (
            config.with_mechanism(RefreshMechanism.NONE).with_cores(1).with_density(8)
        )

    @staticmethod
    def _alone_workload(benchmark: Benchmark) -> Workload:
        return make_workload([benchmark], name=f"alone_{benchmark.name}", seed=0)

    def alone_ipc(self, benchmark: Benchmark, config: SystemConfig) -> float:
        """IPC of a benchmark running alone (single core, no refresh).

        The alone IPC only normalizes the weighted-speedup metric; using the
        refresh-free system for it keeps the normalization identical across
        mechanisms, so mechanism orderings are unaffected.  The alone run is
        also pinned to the 8 Gb density: without refresh the density only
        changes unused refresh timings, and pinning it lets the alone runs
        be shared across density sweeps.
        """
        alone_config = self._alone_config(config)
        key = (
            benchmark.name,
            alone_config.fingerprint(),
            self.cycles,
            self.warmup,
            self.seed,
        )
        if key not in self._alone_ipc_cache:
            result = self._result_for(alone_config, self._alone_workload(benchmark))
            ipc = result.cores[0].ipc
            self._alone_ipc_cache[key] = max(ipc, 1e-6)
        return self._alone_ipc_cache[key]

    def alone_ipcs(self, workload: Workload, config: SystemConfig) -> list[float]:
        return [self.alone_ipc(benchmark, config) for benchmark in workload.benchmarks]

    # -- workload-level experiments --------------------------------------------------
    def run_workload(self, workload: Workload, config: SystemConfig) -> WorkloadResult:
        """Simulate a workload and derive its system-level metrics."""
        return self.run_many([(workload, config)])[0]

    def run_many(
        self, pairs: Sequence[tuple[Workload, SystemConfig]]
    ) -> list[WorkloadResult]:
        """Batched :meth:`run_workload`: one engine submission for everything.

        The batch contains every main simulation *and* every distinct
        alone-run simulation the weighted-speedup normalization needs, so a
        parallel executor can fan the whole figure-level sweep out at once.
        """
        pairs = list(pairs)
        plan: list[tuple[SystemConfig, Workload]] = [
            (config, workload) for workload, config in pairs
        ]
        planned_alone: set[tuple] = set()
        for workload, config in pairs:
            alone_config = self._alone_config(config)
            for benchmark in workload.benchmarks:
                alone_key = (benchmark.name, alone_config.fingerprint())
                if alone_key not in planned_alone:
                    planned_alone.add(alone_key)
                    plan.append((alone_config, self._alone_workload(benchmark)))
        log.debug(
            "run_many: %d workload runs + %d alone runs planned",
            len(pairs),
            len(plan) - len(pairs),
        )
        self.simulate_many(plan)
        # Assembly is all cache hits now that the batch has run.
        return [
            WorkloadResult(
                simulation=self._result_for(config, workload),
                alone_ipcs=self.alone_ipcs(workload, config),
            )
            for workload, config in pairs
        ]

    def compare(
        self,
        workload: Workload,
        base_config: SystemConfig,
        mechanisms: Iterable[RefreshMechanism | str],
    ) -> MechanismComparison:
        """Run one workload under several refresh mechanisms."""
        return self.compare_many([workload], base_config, mechanisms)[0]

    def compare_many(
        self,
        workloads: Sequence[Workload],
        base_config: SystemConfig,
        mechanisms: Iterable[RefreshMechanism | str],
    ) -> list[MechanismComparison]:
        """Batched :meth:`compare`: every (workload, mechanism) in one batch."""
        mechanisms = list(mechanisms)
        configs = [base_config.with_mechanism(mechanism) for mechanism in mechanisms]
        results = self.run_many(
            [(workload, config) for workload in workloads for config in configs]
        )
        comparisons = []
        for workload_index, workload in enumerate(workloads):
            comparison = MechanismComparison(
                workload=workload.name, density_gb=base_config.dram.density_gb
            )
            for mechanism_index, config in enumerate(configs):
                name = config.refresh.mechanism.value
                comparison.results[name] = results[
                    workload_index * len(configs) + mechanism_index
                ]
            comparisons.append(comparison)
        return comparisons

    # -- bookkeeping -------------------------------------------------------------
    def cache_size(self) -> int:
        """Number of distinct simulations known to this runner."""
        return len(self._simulation_cache)

    def summary(self) -> dict:
        """Counters for run reporting: where every planned job came from."""
        stats = self.executor.stats
        return {
            "jobs": stats.jobs + self.memory_hits,
            "memory_hits": self.memory_hits,
            "store_hits": stats.store_hits,
            "simulated": stats.simulated,
            "elapsed_s": stats.elapsed_s,
            "shards": stats.shards,
            "steals": stats.steals,
            "retries": stats.retries,
            "timeouts": stats.timeouts,
            "worker_failures": stats.worker_failures,
            "remote_workers": stats.remote_workers,
            "bytes_sent": stats.bytes_sent,
            "bytes_received": stats.bytes_received,
            "reassignments": stats.reassignments,
            "calibrated_jobs": stats.calibrated_jobs,
        }


# -- module-level conveniences ------------------------------------------------------
_DEFAULT_RUNNER: Optional[ExperimentRunner] = None


def get_default_runner() -> ExperimentRunner:
    """A process-wide runner so tests, examples and benches share the cache."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = ExperimentRunner()
    return _DEFAULT_RUNNER


def run_workload(
    workload: Workload,
    density_gb: int = 8,
    mechanism: RefreshMechanism | str = RefreshMechanism.REFAB,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    **config_kwargs,
) -> WorkloadResult:
    """Convenience wrapper: run one workload on the paper's system."""
    runner = (
        get_default_runner()
        if cycles is None and warmup is None
        else ExperimentRunner(cycles=cycles, warmup=warmup)
    )
    config = paper_system(
        density_gb=density_gb,
        mechanism=mechanism,
        num_cores=workload.num_cores,
        **config_kwargs,
    )
    return runner.run_workload(workload, config)


def run_mechanism_comparison(
    density_gb: int = 8,
    mechanisms: Iterable[RefreshMechanism | str] = ("refab", "refpb", "dsarp", "none"),
    workload: Optional[Workload] = None,
    category: int = 100,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    num_cores: int = 8,
    **config_kwargs,
) -> MechanismComparison:
    """Convenience wrapper: compare mechanisms on one workload."""
    if workload is None:
        workload = make_workload_category(category, index=0, num_cores=num_cores)
    runner = (
        get_default_runner()
        if cycles is None and warmup is None
        else ExperimentRunner(cycles=cycles, warmup=warmup)
    )
    config = paper_system(
        density_gb=density_gb, num_cores=workload.num_cores, **config_kwargs
    )
    return runner.compare(workload, config, mechanisms)
