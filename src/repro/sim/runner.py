"""Experiment runner with result caching.

Reproducing the paper's figures requires many simulations sharing common
pieces (the REFab baseline, the alone-run IPCs of each benchmark, ...).
The :class:`ExperimentRunner` memoizes every simulation it performs, keyed
by the configuration and workload fingerprints, so the figure- and
table-level experiments can be composed without repeating work.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Iterable, Optional

from repro.config.presets import paper_system
from repro.config.refresh_config import RefreshMechanism
from repro.config.system import SystemConfig
from repro.sim.results import MechanismComparison, SimulationResult, WorkloadResult
from repro.sim.simulator import Simulator
from repro.workloads.benchmark_suite import Benchmark
from repro.workloads.mixes import Workload, make_workload, make_workload_category

#: Default measured window, in DRAM cycles (~39 us of DDR3-1333 time, i.e.
#: ten all-bank refresh intervals at 32 ms retention).
DEFAULT_CYCLES = 26000
#: Default warmup window (one refresh interval).
DEFAULT_WARMUP = 2600


def default_cycles() -> int:
    """Measured-window length, overridable through ``REPRO_CYCLES``."""
    return int(os.environ.get("REPRO_CYCLES", DEFAULT_CYCLES))


def default_warmup() -> int:
    """Warmup length, overridable through ``REPRO_WARMUP``."""
    return int(os.environ.get("REPRO_WARMUP", DEFAULT_WARMUP))


class ExperimentRunner:
    """Runs and caches simulations for the experiment harness."""

    def __init__(
        self,
        cycles: Optional[int] = None,
        warmup: Optional[int] = None,
        seed: int = 0,
    ):
        self.cycles = cycles if cycles is not None else default_cycles()
        self.warmup = warmup if warmup is not None else default_warmup()
        self.seed = seed
        self._simulation_cache: dict[tuple, SimulationResult] = {}
        self._alone_ipc_cache: dict[tuple, float] = {}

    # -- raw simulations ---------------------------------------------------------
    def simulate(self, config: SystemConfig, workload: Workload) -> SimulationResult:
        """Run (or recall) one simulation."""
        key = (config.fingerprint(), workload.fingerprint(), self.cycles, self.warmup, self.seed)
        if key not in self._simulation_cache:
            simulator = Simulator(config, workload, seed=self.seed)
            self._simulation_cache[key] = simulator.run(self.cycles, warmup=self.warmup)
        return self._simulation_cache[key]

    # -- alone runs for weighted speedup ---------------------------------------------
    def alone_ipc(self, benchmark: Benchmark, config: SystemConfig) -> float:
        """IPC of a benchmark running alone (single core, no refresh).

        The alone IPC only normalizes the weighted-speedup metric; using the
        refresh-free system for it keeps the normalization identical across
        mechanisms, so mechanism orderings are unaffected.  The alone run is
        also pinned to the 8 Gb density: without refresh the density only
        changes unused refresh timings, and pinning it lets the alone runs
        be shared across density sweeps.
        """
        alone_config = (
            config.with_mechanism(RefreshMechanism.NONE).with_cores(1).with_density(8)
        )
        key = (benchmark.name, alone_config.fingerprint(), self.cycles, self.warmup)
        if key not in self._alone_ipc_cache:
            workload = make_workload([benchmark], name=f"alone_{benchmark.name}", seed=0)
            result = self.simulate(alone_config, workload)
            ipc = result.cores[0].ipc
            self._alone_ipc_cache[key] = max(ipc, 1e-6)
        return self._alone_ipc_cache[key]

    def alone_ipcs(self, workload: Workload, config: SystemConfig) -> list[float]:
        return [self.alone_ipc(benchmark, config) for benchmark in workload.benchmarks]

    # -- workload-level experiments --------------------------------------------------
    def run_workload(self, workload: Workload, config: SystemConfig) -> WorkloadResult:
        """Simulate a workload and derive its system-level metrics."""
        simulation = self.simulate(config, workload)
        alone = self.alone_ipcs(workload, config)
        return WorkloadResult(simulation=simulation, alone_ipcs=alone)

    def compare(
        self,
        workload: Workload,
        base_config: SystemConfig,
        mechanisms: Iterable[RefreshMechanism | str],
    ) -> MechanismComparison:
        """Run one workload under several refresh mechanisms."""
        comparison = MechanismComparison(
            workload=workload.name, density_gb=base_config.dram.density_gb
        )
        for mechanism in mechanisms:
            config = base_config.with_mechanism(mechanism)
            name = config.refresh.mechanism.value
            comparison.results[name] = self.run_workload(workload, config)
        return comparison

    def cache_size(self) -> int:
        """Number of distinct simulations performed so far."""
        return len(self._simulation_cache)


# -- module-level conveniences ------------------------------------------------------
_DEFAULT_RUNNER: Optional[ExperimentRunner] = None


def get_default_runner() -> ExperimentRunner:
    """A process-wide runner so tests, examples and benches share the cache."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = ExperimentRunner()
    return _DEFAULT_RUNNER


def run_workload(
    workload: Workload,
    density_gb: int = 8,
    mechanism: RefreshMechanism | str = RefreshMechanism.REFAB,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    **config_kwargs,
) -> WorkloadResult:
    """Convenience wrapper: run one workload on the paper's system."""
    runner = (
        get_default_runner()
        if cycles is None and warmup is None
        else ExperimentRunner(cycles=cycles, warmup=warmup)
    )
    config = paper_system(
        density_gb=density_gb,
        mechanism=mechanism,
        num_cores=workload.num_cores,
        **config_kwargs,
    )
    return runner.run_workload(workload, config)


def run_mechanism_comparison(
    density_gb: int = 8,
    mechanisms: Iterable[RefreshMechanism | str] = ("refab", "refpb", "dsarp", "none"),
    workload: Optional[Workload] = None,
    category: int = 100,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    num_cores: int = 8,
    **config_kwargs,
) -> MechanismComparison:
    """Convenience wrapper: compare mechanisms on one workload."""
    if workload is None:
        workload = make_workload_category(category, index=0, num_cores=num_cores)
    runner = (
        get_default_runner()
        if cycles is None and warmup is None
        else ExperimentRunner(cycles=cycles, warmup=warmup)
    )
    config = paper_system(
        density_gb=density_gb, num_cores=workload.num_cores, **config_kwargs
    )
    return runner.compare(workload, config, mechanisms)
