"""Result records produced by simulations and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.speedup import (
    harmonic_speedup,
    maximum_slowdown,
    weighted_speedup,
)


@dataclass
class CoreResult:
    """Per-core outcome of one simulation."""

    core_id: int
    benchmark: str
    instructions: int
    ipc: float
    mpki: float
    dram_reads: int
    dram_writes: int
    stall_cycles: int

    def as_dict(self) -> dict:
        return {
            "core_id": self.core_id,
            "benchmark": self.benchmark,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "mpki": self.mpki,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "stall_cycles": self.stall_cycles,
        }

    #: Alias so core results serialize like :class:`SimulationResult`.
    to_dict = as_dict

    @classmethod
    def from_dict(cls, data: dict) -> "CoreResult":
        return cls(
            core_id=data["core_id"],
            benchmark=data["benchmark"],
            instructions=data["instructions"],
            ipc=data["ipc"],
            mpki=data["mpki"],
            dram_reads=data["dram_reads"],
            dram_writes=data["dram_writes"],
            stall_cycles=data["stall_cycles"],
        )


@dataclass
class SimulationResult:
    """Raw outcome of one simulation run."""

    workload: str
    mechanism: str
    density_gb: int
    cycles: int
    warmup_cycles: int
    cores: list[CoreResult]
    device_stats: dict
    controller_stats: dict
    refresh_stats: dict
    energy: dict

    @property
    def ipcs(self) -> list[float]:
        return [core.ipc for core in self.cores]

    @property
    def total_instructions(self) -> int:
        return sum(core.instructions for core in self.cores)

    @property
    def reads_serviced(self) -> int:
        return self.device_stats.get("reads", 0)

    @property
    def writes_serviced(self) -> int:
        return self.device_stats.get("writes", 0)

    @property
    def energy_per_access_nj(self) -> float:
        return self.energy.get("energy_per_access_nj", 0.0)

    def to_dict(self) -> dict:
        """JSON-compatible representation (see :meth:`from_dict`)."""
        return {
            "workload": self.workload,
            "mechanism": self.mechanism,
            "density_gb": self.density_gb,
            "cycles": self.cycles,
            "warmup_cycles": self.warmup_cycles,
            "cores": [core.to_dict() for core in self.cores],
            "device_stats": dict(self.device_stats),
            "controller_stats": dict(self.controller_stats),
            "refresh_stats": dict(self.refresh_stats),
            "energy": dict(self.energy),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Inverse of :meth:`to_dict`: rebuild an equal result record."""
        return cls(
            workload=data["workload"],
            mechanism=data["mechanism"],
            density_gb=data["density_gb"],
            cycles=data["cycles"],
            warmup_cycles=data["warmup_cycles"],
            cores=[CoreResult.from_dict(core) for core in data["cores"]],
            device_stats=dict(data["device_stats"]),
            controller_stats=dict(data["controller_stats"]),
            refresh_stats=dict(data["refresh_stats"]),
            energy=dict(data["energy"]),
        )


@dataclass
class WorkloadResult:
    """A simulation result paired with alone-run IPCs and derived metrics."""

    simulation: SimulationResult
    alone_ipcs: list[float]

    @property
    def workload(self) -> str:
        return self.simulation.workload

    @property
    def mechanism(self) -> str:
        return self.simulation.mechanism

    @property
    def weighted_speedup(self) -> float:
        return weighted_speedup(self.simulation.ipcs, self.alone_ipcs)

    @property
    def harmonic_speedup(self) -> float:
        return harmonic_speedup(self.simulation.ipcs, self.alone_ipcs)

    @property
    def maximum_slowdown(self) -> float:
        return maximum_slowdown(self.simulation.ipcs, self.alone_ipcs)

    @property
    def energy_per_access_nj(self) -> float:
        return self.simulation.energy_per_access_nj

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "mechanism": self.mechanism,
            "weighted_speedup": self.weighted_speedup,
            "harmonic_speedup": self.harmonic_speedup,
            "maximum_slowdown": self.maximum_slowdown,
            "energy_per_access_nj": self.energy_per_access_nj,
        }


@dataclass
class MechanismComparison:
    """Results of running one workload under several refresh mechanisms."""

    workload: str
    density_gb: int
    results: dict[str, WorkloadResult] = field(default_factory=dict)

    @property
    def weighted_speedup(self) -> dict[str, float]:
        return {name: result.weighted_speedup for name, result in self.results.items()}

    @property
    def energy_per_access_nj(self) -> dict[str, float]:
        return {
            name: result.energy_per_access_nj for name, result in self.results.items()
        }

    def normalized_to(self, baseline: str) -> dict[str, float]:
        """Weighted speedup of every mechanism normalized to ``baseline``."""
        if baseline not in self.results:
            raise KeyError(f"baseline {baseline!r} not part of this comparison")
        base = self.results[baseline].weighted_speedup
        if base <= 0:
            raise ValueError("baseline weighted speedup is not positive")
        return {
            name: result.weighted_speedup / base for name, result in self.results.items()
        }

    def improvement_percent(self, mechanism: str, baseline: str) -> float:
        """Percentage weighted-speedup improvement of one mechanism over another."""
        normalized = self.normalized_to(baseline)
        return (normalized[mechanism] - 1.0) * 100.0
