"""Paper experiment definitions: one function per figure / table.

Every function reproduces the *structure* of one of the paper's results —
the same mechanisms, sweeps and aggregation — on the synthetic workload
suite.  The default scale (workloads per category, simulated cycles) is far
below the paper's 100 workloads x 256 M cycles so the whole harness runs on
a laptop; set ``REPRO_FULL=1`` or pass explicit parameters to scale up.

All functions share an :class:`~repro.sim.runner.ExperimentRunner`, whose
memoization ensures that, e.g., the REFab baseline runs are simulated only
once even though several figures need them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config.presets import paper_system
from repro.config.refresh_config import RefreshMechanism
from repro.metrics.speedup import average_percent_improvement, geometric_mean
from repro.sim.projections import RefreshLatencyPoint, refresh_latency_trend
from repro.sim.runner import ExperimentRunner, get_default_runner
from repro.workloads.mixes import (
    INTENSITY_CATEGORIES,
    Workload,
    make_workload_sweep,
    memory_intensive_workloads,
)

#: The paper's three evaluated DRAM densities (Gb).
DEFAULT_DENSITIES: tuple[int, ...] = (8, 16, 32)


@dataclass(frozen=True)
class ExperimentScale:
    """How large to make each experiment."""

    workloads_per_category: int = 1
    sensitivity_workloads: int = 2
    densities: tuple[int, ...] = DEFAULT_DENSITIES

    @classmethod
    def from_environment(cls) -> "ExperimentScale":
        """Default scale, enlarged when ``REPRO_FULL`` is set."""
        if os.environ.get("REPRO_FULL"):
            return cls(workloads_per_category=4, sensitivity_workloads=4)
        return cls()


def default_scale() -> ExperimentScale:
    return ExperimentScale.from_environment()


def _runner(runner: Optional[ExperimentRunner]) -> ExperimentRunner:
    return runner if runner is not None else get_default_runner()


def _sweep_workloads(scale: ExperimentScale) -> list[Workload]:
    return make_workload_sweep(workloads_per_category=scale.workloads_per_category)


def _sensitivity_workloads(scale: ExperimentScale) -> list[Workload]:
    return memory_intensive_workloads(count=scale.sensitivity_workloads)


# ---------------------------------------------------------------------------
# Figure 5: refresh-latency scaling trend
# ---------------------------------------------------------------------------
def figure5_refresh_latency_trend(
    densities: tuple[int, ...] = (1, 8, 16, 24, 32, 40, 48, 56, 64),
) -> list[RefreshLatencyPoint]:
    """Figure 5: projected tRFCab versus DRAM density (no simulation)."""
    return refresh_latency_trend(densities)


# ---------------------------------------------------------------------------
# Figures 6 and 7: performance loss of the refresh baselines vs the ideal
# ---------------------------------------------------------------------------
def figure6_refab_performance_loss(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
) -> dict[int, dict[int, float]]:
    """Figure 6: % WS loss of REFab vs the no-refresh ideal.

    Returns ``{category: {density: loss_percent}}`` with an extra key
    ``-1`` holding the all-category average per density.
    """
    runner = _runner(runner)
    scale = scale or default_scale()
    workloads = _sweep_workloads(scale)
    losses: dict[int, dict[int, list[float]]] = {
        category: {density: [] for density in scale.densities}
        for category in INTENSITY_CATEGORIES
    }
    for density in scale.densities:
        base_config = paper_system(density_gb=density)
        comparisons = runner.compare_many(
            workloads, base_config, (RefreshMechanism.NONE, RefreshMechanism.REFAB)
        )
        for workload, comparison in zip(workloads, comparisons):
            normalized = comparison.normalized_to(RefreshMechanism.NONE.value)
            loss = (1.0 - normalized[RefreshMechanism.REFAB.value]) * 100.0
            losses[workload.category][density].append(loss)
    result: dict[int, dict[int, float]] = {}
    for category, per_density in losses.items():
        result[category] = {
            density: (sum(vals) / len(vals) if vals else 0.0)
            for density, vals in per_density.items()
        }
    result[-1] = {
        density: sum(result[c][density] for c in INTENSITY_CATEGORIES)
        / len(INTENSITY_CATEGORIES)
        for density in scale.densities
    }
    return result


def figure7_refab_vs_refpb_loss(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
) -> dict[int, dict[str, float]]:
    """Figure 7: average % WS loss of REFab and REFpb vs the ideal, per density."""
    runner = _runner(runner)
    scale = scale or default_scale()
    workloads = _sweep_workloads(scale)
    result: dict[int, dict[str, float]] = {}
    for density in scale.densities:
        base_config = paper_system(density_gb=density)
        losses = {"refab": [], "refpb": []}
        comparisons = runner.compare_many(
            workloads,
            base_config,
            (RefreshMechanism.NONE, RefreshMechanism.REFAB, RefreshMechanism.REFPB),
        )
        for comparison in comparisons:
            normalized = comparison.normalized_to(RefreshMechanism.NONE.value)
            losses["refab"].append((1.0 - normalized["refab"]) * 100.0)
            losses["refpb"].append((1.0 - normalized["refpb"]) * 100.0)
        result[density] = {
            mech: sum(values) / len(values) for mech, values in losses.items()
        }
    return result


# ---------------------------------------------------------------------------
# Figure 12 and Table 2: the main per-workload evaluation
# ---------------------------------------------------------------------------
MAIN_MECHANISMS: tuple[str, ...] = ("refab", "refpb", "darp", "sarppb", "dsarp")


def figure12_workload_sweep(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    mechanisms: Sequence[str] = MAIN_MECHANISMS,
) -> dict[int, dict[str, dict[str, float]]]:
    """Figure 12: per-workload WS normalized to REFab, per density.

    Returns ``{density: {workload_name: {mechanism: normalized_ws}}}``.
    """
    runner = _runner(runner)
    scale = scale or default_scale()
    workloads = _sweep_workloads(scale)
    result: dict[int, dict[str, dict[str, float]]] = {}
    for density in scale.densities:
        base_config = paper_system(density_gb=density)
        per_workload: dict[str, dict[str, float]] = {}
        comparisons = runner.compare_many(workloads, base_config, mechanisms)
        for workload, comparison in zip(workloads, comparisons):
            per_workload[workload.name] = comparison.normalized_to("refab")
        result[density] = per_workload
    return result


def table2_improvement_summary(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    sweep: Optional[dict[int, dict[str, dict[str, float]]]] = None,
) -> dict[int, dict[str, dict[str, float]]]:
    """Table 2: max and gmean WS improvement over REFpb and REFab.

    Returns ``{density: {mechanism: {"max_refpb", "gmean_refpb",
    "max_refab", "gmean_refab"}}}`` (all in percent) for DARP, SARPpb and
    DSARP.
    """
    if sweep is None:
        sweep = figure12_workload_sweep(runner=runner, scale=scale)
    result: dict[int, dict[str, dict[str, float]]] = {}
    for density, per_workload in sweep.items():
        result[density] = {}
        for mechanism in ("darp", "sarppb", "dsarp"):
            over_refab = []
            over_refpb = []
            for norms in per_workload.values():
                over_refab.append((norms[mechanism] - 1.0) * 100.0)
                over_refpb.append((norms[mechanism] / norms["refpb"] - 1.0) * 100.0)
            result[density][mechanism] = {
                "max_refpb": max(over_refpb),
                "gmean_refpb": average_percent_improvement(over_refpb),
                "max_refab": max(over_refab),
                "gmean_refab": average_percent_improvement(over_refab),
            }
    return result


# ---------------------------------------------------------------------------
# Figure 13 and Figure 14: all mechanisms, performance and energy
# ---------------------------------------------------------------------------
ALL_MECHANISMS: tuple[str, ...] = (
    "refab",
    "refpb",
    "elastic",
    "darp",
    "sarpab",
    "sarppb",
    "dsarp",
    "none",
)


def figure13_all_mechanisms(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    mechanisms: Sequence[str] = ALL_MECHANISMS,
) -> dict[int, dict[str, float]]:
    """Figure 13: average % WS improvement over REFab for every mechanism."""
    runner = _runner(runner)
    scale = scale or default_scale()
    workloads = _sweep_workloads(scale)
    result: dict[int, dict[str, float]] = {}
    for density in scale.densities:
        base_config = paper_system(density_gb=density)
        improvements: dict[str, list[float]] = {m: [] for m in mechanisms}
        for comparison in runner.compare_many(workloads, base_config, mechanisms):
            normalized = comparison.normalized_to("refab")
            for mechanism in mechanisms:
                improvements[mechanism].append((normalized[mechanism] - 1.0) * 100.0)
        result[density] = {
            mechanism: average_percent_improvement(values)
            for mechanism, values in improvements.items()
        }
    return result


def figure14_energy_per_access(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    mechanisms: Sequence[str] = ALL_MECHANISMS,
) -> dict[int, dict[str, float]]:
    """Figure 14: average energy per access (nJ) for every mechanism.

    The average is weighted by the number of accesses each workload serves
    (total energy over total accesses).  An unweighted mean would be
    dominated by the 0 %-intensive mix, whose handful of DRAM accesses make
    its per-access energy mostly background noise.
    """
    runner = _runner(runner)
    scale = scale or default_scale()
    workloads = _sweep_workloads(scale)
    result: dict[int, dict[str, float]] = {}
    for density in scale.densities:
        base_config = paper_system(density_gb=density)
        total_energy: dict[str, float] = {m: 0.0 for m in mechanisms}
        total_accesses: dict[str, int] = {m: 0 for m in mechanisms}
        for comparison in runner.compare_many(workloads, base_config, mechanisms):
            for mechanism in mechanisms:
                energy = comparison.results[mechanism].simulation.energy
                total_energy[mechanism] += energy["total_nj"]
                total_accesses[mechanism] += energy["accesses"]
        result[density] = {
            mechanism: total_energy[mechanism] / max(1, total_accesses[mechanism])
            for mechanism in mechanisms
        }
    return result


# ---------------------------------------------------------------------------
# Figure 15: DSARP gains versus memory intensity
# ---------------------------------------------------------------------------
def figure15_memory_intensity(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
) -> dict[int, dict[int, dict[str, float]]]:
    """Figure 15: DSARP % WS gain over REFab and REFpb by intensity category.

    Returns ``{category: {density: {"vs_refab": pct, "vs_refpb": pct}}}``.
    """
    runner = _runner(runner)
    scale = scale or default_scale()
    workloads = _sweep_workloads(scale)
    gains: dict[int, dict[int, dict[str, list[float]]]] = {
        category: {
            density: {"vs_refab": [], "vs_refpb": []} for density in scale.densities
        }
        for category in INTENSITY_CATEGORIES
    }
    for density in scale.densities:
        base_config = paper_system(density_gb=density)
        comparisons = runner.compare_many(
            workloads, base_config, ("refab", "refpb", "dsarp")
        )
        for workload, comparison in zip(workloads, comparisons):
            normalized = comparison.normalized_to("refab")
            bucket = gains[workload.category][density]
            bucket["vs_refab"].append((normalized["dsarp"] - 1.0) * 100.0)
            bucket["vs_refpb"].append(
                (normalized["dsarp"] / normalized["refpb"] - 1.0) * 100.0
            )
    result: dict[int, dict[int, dict[str, float]]] = {}
    for category, per_density in gains.items():
        result[category] = {}
        for density, buckets in per_density.items():
            result[category][density] = {
                key: (sum(vals) / len(vals) if vals else 0.0)
                for key, vals in buckets.items()
            }
    return result


# ---------------------------------------------------------------------------
# Table 3: core-count sensitivity
# ---------------------------------------------------------------------------
def table3_core_count(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    core_counts: tuple[int, ...] = (2, 4, 8),
    density_gb: int = 32,
) -> dict[int, dict[str, float]]:
    """Table 3: DSARP vs REFab across core counts (WS, HS, fairness, energy)."""
    # Delegated to the declarative sweep subsystem (a one-axis core-count
    # spec); imported lazily because repro.sweep builds on this module.
    from repro.sweep.builtin import table3_core_count_via_sweep

    return table3_core_count_via_sweep(
        runner=_runner(runner),
        scale=scale or default_scale(),
        core_counts=core_counts,
        density_gb=density_gb,
    )


# ---------------------------------------------------------------------------
# Table 4: tFAW / tRRD sensitivity of SARPpb
# ---------------------------------------------------------------------------
def table4_tfaw_sensitivity(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    tfaw_values: tuple[int, ...] = (5, 10, 15, 20, 25, 30),
    density_gb: int = 32,
) -> dict[int, float]:
    """Table 4: % WS improvement of SARPpb over REFpb as tFAW/tRRD vary."""
    from repro.sweep.builtin import table4_tfaw_via_sweep

    return table4_tfaw_via_sweep(
        runner=_runner(runner),
        scale=scale or default_scale(),
        tfaw_values=tfaw_values,
        density_gb=density_gb,
    )


# ---------------------------------------------------------------------------
# Table 5: subarrays-per-bank sensitivity of SARPpb
# ---------------------------------------------------------------------------
def table5_subarray_sensitivity(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    subarray_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    density_gb: int = 32,
) -> dict[int, float]:
    """Table 5: % WS improvement of SARPpb over REFpb vs subarrays per bank."""
    from repro.sweep.builtin import table5_subarrays_via_sweep

    return table5_subarrays_via_sweep(
        runner=_runner(runner),
        scale=scale or default_scale(),
        subarray_counts=subarray_counts,
        density_gb=density_gb,
    )


# ---------------------------------------------------------------------------
# Table 6: 64 ms retention time
# ---------------------------------------------------------------------------
def table6_refresh_interval(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    retention_ms: float = 64.0,
) -> dict[int, dict[str, float]]:
    """Table 6: DSARP improvement over REFpb / REFab at 64 ms retention."""
    from repro.sweep.builtin import table6_refresh_interval_via_sweep

    return table6_refresh_interval_via_sweep(
        runner=_runner(runner),
        scale=scale or default_scale(),
        retention_ms=retention_ms,
    )


# ---------------------------------------------------------------------------
# Figure 16: DDR4 fine-granularity refresh and adaptive refresh
# ---------------------------------------------------------------------------
FGR_MECHANISMS: tuple[str, ...] = ("refab", "fgr2x", "fgr4x", "ar", "dsarp")


def figure16_fgr_comparison(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    mechanisms: Sequence[str] = FGR_MECHANISMS,
) -> dict[int, dict[str, float]]:
    """Figure 16: WS normalized to REFab for FGR 2x/4x, AR and DSARP."""
    runner = _runner(runner)
    scale = scale or default_scale()
    workloads = _sensitivity_workloads(scale)
    result: dict[int, dict[str, float]] = {}
    for density in scale.densities:
        base_config = paper_system(density_gb=density)
        ratios: dict[str, list[float]] = {m: [] for m in mechanisms}
        for comparison in runner.compare_many(workloads, base_config, mechanisms):
            normalized = comparison.normalized_to("refab")
            for mechanism in mechanisms:
                ratios[mechanism].append(normalized[mechanism])
        result[density] = {
            mechanism: geometric_mean(values) for mechanism, values in ratios.items()
        }
    return result


# ---------------------------------------------------------------------------
# Ablations (Section 6.1.2): DARP component breakdown, DSARP additivity
# ---------------------------------------------------------------------------
def darp_component_breakdown(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
) -> dict[int, dict[str, float]]:
    """Section 6.1.2: out-of-order refresh alone versus full DARP.

    Returns ``{density: {"out_of_order_only": pct, "darp": pct}}`` as % WS
    improvement over REFab.
    """
    runner = _runner(runner)
    scale = scale or default_scale()
    workloads = _sweep_workloads(scale)
    result: dict[int, dict[str, float]] = {}
    for density in scale.densities:
        base_config = paper_system(density_gb=density)
        ooo_only = base_config.with_mechanism(
            "darp", enable_write_refresh_parallelization=False
        )
        refab_config = base_config.with_mechanism("refab")
        darp_config = base_config.with_mechanism("darp")
        ooo_gains, darp_gains = [], []
        results = runner.run_many(
            [
                (workload, config)
                for workload in workloads
                for config in (refab_config, darp_config, ooo_only)
            ]
        )
        for offset in range(0, len(results), 3):
            refab, darp, ooo = results[offset : offset + 3]
            base_ws = refab.weighted_speedup
            ooo_gains.append((ooo.weighted_speedup / base_ws - 1.0) * 100.0)
            darp_gains.append((darp.weighted_speedup / base_ws - 1.0) * 100.0)
        result[density] = {
            "out_of_order_only": average_percent_improvement(ooo_gains),
            "darp": average_percent_improvement(darp_gains),
        }
    return result


def dsarp_additivity(
    runner: Optional[ExperimentRunner] = None,
    scale: Optional[ExperimentScale] = None,
    density_gb: int = 32,
) -> dict[str, float]:
    """Ablation: DARP, SARPpb and their combination DSARP over REFab (one density)."""
    runner = _runner(runner)
    scale = scale or default_scale()
    workloads = _sweep_workloads(scale)
    base_config = paper_system(density_gb=density_gb)
    gains: dict[str, list[float]] = {"darp": [], "sarppb": [], "dsarp": []}
    for comparison in runner.compare_many(
        workloads, base_config, ("refab", "darp", "sarppb", "dsarp")
    ):
        normalized = comparison.normalized_to("refab")
        for mechanism in gains:
            gains[mechanism].append((normalized[mechanism] - 1.0) * 100.0)
    return {
        mechanism: average_percent_improvement(values) for mechanism, values in gains.items()
    }
