"""The top-level simulator: cores + caches + memory controller + DRAM.

The simulator advances in DRAM bus cycles.  Every cycle it first ticks the
memory system (which may issue one command per channel and returns read
requests whose data arrived), wakes up the cores waiting on those reads,
and then lets every core execute up to one DRAM cycle's worth of
instructions (``issue_width * cpu_cycles_per_dram_cycle``).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

import repro.obs.profile as obs_profile
from repro.cache.llc import LastLevelCache
from repro.config.system import SystemConfig
from repro.controller.memory_controller import MemorySystem
from repro.cpu.core_model import CORE_ACTIVE, CORE_GAP, Core
from repro.power.dram_power import DRAMPowerModel
from repro.sim.results import CoreResult, SimulationResult
from repro.workloads.mixes import Workload


class Simulator:
    """One simulation instance for a (configuration, workload) pair."""

    def __init__(
        self,
        config: SystemConfig,
        workload: Workload,
        seed: int = 0,
        functional_warmup_accesses: Optional[int] = None,
    ):
        self.config = config
        self.workload = workload
        self.seed = seed
        self.memory = MemorySystem(config)
        self.power_model = DRAMPowerModel(config.dram)
        capacity = self.memory.mapper.capacity_bytes
        region = capacity // max(1, workload.num_cores)
        self.cores: list[Core] = []
        for core_id, benchmark in enumerate(workload.benchmarks):
            trace = benchmark.trace(seed=workload.seed + seed + core_id)
            llc = LastLevelCache(config.cache)
            self._functional_warmup(
                llc, benchmark, core_id * region, functional_warmup_accesses
            )
            self.cores.append(
                Core(
                    core_id=core_id,
                    config=config.cpu,
                    trace=trace,
                    llc=llc,
                    memory=self.memory,
                    address_offset=core_id * region,
                )
            )
        self._current_cycle = 0
        #: Event-kernel core-sleep records, one per core:
        #: ``None`` (awake) or ``(kind, channel, counter, first_unaccounted)``
        #: where ``kind`` is "completion"/"read_queue"/"write_queue",
        #: ``counter`` snapshots the matching retirement counter at sleep
        #: time, and ``first_unaccounted`` is the first cycle whose stall
        #: has not yet been added to the core's statistics.
        self._core_sleep: list = [None] * len(self.cores)
        #: Epoch samples of the most recent :meth:`run` (empty unless
        #: ``config.obs.epoch_interval`` > 0).
        self.epoch_samples: list = []
        if config.obs.epoch_interval > 0:
            from repro.obs.epochs import EpochSampler

            self._epoch_sampler = EpochSampler(config.obs.epoch_interval)
        else:
            self._epoch_sampler = None

    def _functional_warmup(
        self,
        llc: LastLevelCache,
        benchmark,
        address_offset: int,
        accesses: Optional[int],
    ) -> None:
        """Pre-populate a core's LLC so the timed run sees steady-state traffic.

        Short timed windows would otherwise start with a cold (and therefore
        eviction-free) cache, which both under-reports non-intensive hit
        rates and suppresses the dirty-writeback traffic that DARP's
        write-refresh parallelization relies on.  The warmup streams trace
        accesses through the cache model only — no DRAM cycles are
        simulated — and uses a distinct trace instance so the timed run
        still consumes the benchmark's trace from its beginning.
        """
        cache_lines = self.config.cache.size_bytes // self.config.cache.line_bytes
        if accesses is None:
            footprint_lines = max(
                1,
                benchmark.footprint_bytes // self.config.cache.line_bytes,
            )
            accesses = min(3 * cache_lines, 4 * footprint_lines)
        if accesses <= 0:
            return
        warm_trace = benchmark.trace(seed=self.workload.seed + self.seed + 7919)
        for _ in range(accesses):
            entry = next(warm_trace)
            llc.access(llc.line_address(address_offset + entry.address), entry.is_write)
        llc.reset_stats()

    # -- execution -------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole system by one DRAM cycle."""
        self._tick(self._current_cycle)
        self._current_cycle += 1

    def _tick(self, cycle: int) -> bool:
        """Advance every component one DRAM cycle; True if anything happened.

        "Anything happened" means an observable state change: a read's
        data arrived, a controller issued a DRAM command, or a core made
        progress (retired instructions, fetched a trace entry, or drained
        a writeback).  When it returns False the whole system is provably
        frozen until the next timing event, which is what licenses the
        event kernel to skip ahead.
        """
        completed = self.memory.tick(cycle)
        for request in completed:
            self.cores[request.core_id].complete_load(request)
        activity = bool(completed) or self.memory.last_tick_issued
        for core in self.cores:
            if core.tick(cycle):
                activity = True
        return activity

    def _wake_core(self, core_id: int, cycle: int) -> None:
        """End a core's sleep, charging the stalls the slept span accrued."""
        record = self._core_sleep[core_id]
        if record is None:
            return
        self._core_sleep[core_id] = None
        self.cores[core_id].skip_stalled_cycles(cycle - record[3])

    def _flush_core_sleep(self) -> None:
        """Materialize lazily accumulated stall cycles of sleeping cores.

        Called at measurement boundaries (warmup reset, end of run) so
        the statistics match the legacy kernel's exactly; the cores stay
        asleep, accounting restarting at the current cycle.
        """
        cycle = self._current_cycle
        for core_id, record in enumerate(self._core_sleep):
            if record is not None:
                self.cores[core_id].skip_stalled_cycles(cycle - record[3])
                self._core_sleep[core_id] = record[:3] + (cycle,)

    def _step_event(self, limit: int) -> None:
        """One event-kernel step: tick what can act, sleep what provably can't.

        Three levels of cycle-skipping compose here, each licensed by a
        frozen-state argument and each replaying exactly the per-cycle
        side effects the legacy loop would have produced:

        * controllers micro-sleep between their own timing events while
          their queues are untouched (inside
          :meth:`~repro.controller.memory_controller.ChannelController.tick_event`);
        * a core whose tick changed nothing sleeps until its recorded
          wake-up — a data arrival for its own loads, or space in the one
          queue that rejected it — accruing stall cycles lazily;
        * when additionally no command issued and every awake core is in
          pure gap retirement, the whole system jumps to the earliest
          event (clamped to ``limit`` so measurement windows end exactly
          where the legacy kernel's do).
        """
        cycle = self._current_cycle
        memory = self.memory
        sleep = self._core_sleep
        cores = self.cores
        completed = memory.tick_event(cycle)
        if completed:
            for request in completed:
                core_id = request.core_id
                if sleep[core_id] is not None:
                    self._wake_core(core_id, cycle)
                cores[core_id].complete_load(request)
        controllers = memory.controllers
        active = bool(completed) or memory.last_tick_issued
        gap_cores = None
        for core_id, core in enumerate(cores):
            record = sleep[core_id]
            if record is not None:
                kind = record[0]
                if kind == "completion":
                    continue
                controller = controllers[record[1]]
                counter = (
                    controller.read_retires
                    if kind == "read_queue"
                    else controller.write_retires
                )
                if counter == record[2]:
                    continue
                self._wake_core(core_id, cycle)
            status = core.tick(cycle)
            if status == CORE_ACTIVE:
                active = True
            elif status == CORE_GAP:
                if gap_cores is None:
                    gap_cores = [core]
                else:
                    gap_cores.append(core)
            else:
                reason = core.block_reason
                if reason[0] == "completion":
                    sleep[core_id] = ("completion", -1, -1, cycle + 1)
                else:
                    controller = controllers[reason[1]]
                    counter = (
                        controller.read_retires
                        if reason[0] == "read_queue"
                        else controller.write_retires
                    )
                    sleep[core_id] = (reason[0], reason[1], counter, cycle + 1)
        self._current_cycle = cycle + 1
        if active:
            return
        next_event = memory.next_skip_event(cycle)
        target = limit if next_event is None else min(next_event, limit)
        if gap_cores is not None:
            for core in gap_cores:
                horizon = cycle + 1 + core.pure_gap_ticks()
                if horizon < target:
                    target = horizon
        skipped = target - cycle - 1
        if skipped <= 0:
            return
        memory.skip_idle_cycles(skipped)
        if gap_cores is not None:
            for core in gap_cores:
                core.skip_gap_cycles(skipped)
        self._current_cycle = target

    def _advance_to(self, limit: int) -> None:
        """Advance the system to ``limit`` using the configured kernel.

        When span profiling is active every kernel step is timed
        individually (``kernel.step_event`` / ``kernel.step``); the
        profiler reference is hoisted out of the loop so the disabled
        path costs one module-attribute load per call.
        """
        profiler = obs_profile.ACTIVE
        if self.config.kernel == "event":
            if profiler is None:
                while self._current_cycle < limit:
                    self._step_event(limit)
            else:
                add = profiler.add
                while self._current_cycle < limit:
                    start = perf_counter()
                    self._step_event(limit)
                    add("kernel.step_event", perf_counter() - start)
        else:
            if profiler is None:
                while self._current_cycle < limit:
                    self.step()
            else:
                add = profiler.add
                while self._current_cycle < limit:
                    start = perf_counter()
                    self.step()
                    add("kernel.step", perf_counter() - start)

    def run(self, cycles: int, warmup: int = 0) -> SimulationResult:
        """Run ``warmup`` + ``cycles`` DRAM cycles and report the measured window.

        With ``config.obs.epoch_interval`` > 0 the measured window is
        advanced in epoch-sized chunks, sampling at every boundary.  The
        chunking cannot change results: each kernel step is already
        clamped to its limit, and the boundary flush only materializes
        stall accounting that would have been charged later anyway — a
        property pinned by the epoch bit-identity tests.
        """
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        with obs_profile.span("sim.warmup"):
            self._advance_to(self._current_cycle + warmup)
        if warmup:
            self._flush_core_sleep()
            self._reset_measurement_state()
        start_cycle = self._current_cycle
        sampler = self._epoch_sampler
        with obs_profile.span("sim.measure"):
            if sampler is None:
                self._advance_to(start_cycle + cycles)
            else:
                sampler.begin(self, start_cycle)
                limit = start_cycle + cycles
                boundary = start_cycle
                while boundary < limit:
                    boundary = min(boundary + sampler.interval, limit)
                    self._advance_to(boundary)
                    self._flush_core_sleep()
                    sampler.sample(self, self._current_cycle)
                self.epoch_samples = sampler.samples
        self._flush_core_sleep()
        elapsed = self._current_cycle - start_cycle
        return self._build_result(elapsed, warmup)

    # -- internals ----------------------------------------------------------------
    def _reset_measurement_state(self) -> None:
        """Clear statistics accumulated during warmup (state is preserved).

        Every holder resets through its schema-driven
        :meth:`~repro.stats.StatsStruct.reset`, so a counter added to a
        schema can never be silently carried across the warmup boundary.
        """
        for core in self.cores:
            core.reset_stats()
        if self.memory.tracer is not None:
            # The trace should cover exactly the measured window, so its
            # totals can be cross-checked against the run's aggregates.
            self.memory.tracer.reset()
        self.memory.device.stats.reset()
        for controller in self.memory.controllers:
            controller.stats.reset()
            controller.refresh_policy.stats.reset()
        for channel in self.memory.device.channels:
            channel.stats.reset()

    def _build_result(self, elapsed: int, warmup: int) -> SimulationResult:
        core_results = []
        for core, benchmark in zip(self.cores, self.workload.benchmarks):
            stats = core.stats
            core_results.append(
                CoreResult(
                    core_id=core.core_id,
                    benchmark=benchmark.name,
                    instructions=stats.instructions,
                    ipc=core.ipc(elapsed),
                    mpki=stats.mpki(),
                    dram_reads=stats.dram_reads_issued,
                    dram_writes=stats.dram_writes_issued,
                    stall_cycles=stats.stall_cycles,
                )
            )
        device_stats = self.memory.device.stats.as_dict()
        # Schema-driven cross-channel merge: counters sum, while the
        # latency averages are recomputed from the merged raw totals (a
        # per-channel-average sum would be meaningless).
        controller_stats = self.memory.merged_controller_stats()
        energy = self.power_model.energy(self.memory.device.stats, elapsed)
        return SimulationResult(
            workload=self.workload.name,
            mechanism=self.config.refresh.mechanism.value,
            density_gb=self.config.dram.density_gb,
            cycles=elapsed,
            warmup_cycles=warmup,
            cores=core_results,
            device_stats=device_stats,
            controller_stats=controller_stats,
            refresh_stats=self.memory.refresh_policy_stats(),
            energy=energy.as_dict(),
        )
