"""The top-level simulator: cores + caches + memory controller + DRAM.

The simulator advances in DRAM bus cycles.  Every cycle it first ticks the
memory system (which may issue one command per channel and returns read
requests whose data arrived), wakes up the cores waiting on those reads,
and then lets every core execute up to one DRAM cycle's worth of
instructions (``issue_width * cpu_cycles_per_dram_cycle``).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.llc import LastLevelCache
from repro.config.system import SystemConfig
from repro.controller.memory_controller import MemorySystem
from repro.core.base import RefreshStats
from repro.cpu.core_model import Core
from repro.dram.device import DeviceStats
from repro.controller.memory_controller import ControllerStats
from repro.power.dram_power import DRAMPowerModel
from repro.sim.results import CoreResult, SimulationResult
from repro.workloads.mixes import Workload


class Simulator:
    """One simulation instance for a (configuration, workload) pair."""

    def __init__(
        self,
        config: SystemConfig,
        workload: Workload,
        seed: int = 0,
        functional_warmup_accesses: Optional[int] = None,
    ):
        self.config = config
        self.workload = workload
        self.seed = seed
        self.memory = MemorySystem(config)
        self.power_model = DRAMPowerModel(config.dram)
        capacity = self.memory.mapper.capacity_bytes
        region = capacity // max(1, workload.num_cores)
        self.cores: list[Core] = []
        for core_id, benchmark in enumerate(workload.benchmarks):
            trace = benchmark.trace(seed=workload.seed + seed + core_id)
            llc = LastLevelCache(config.cache)
            self._functional_warmup(
                llc, benchmark, core_id * region, functional_warmup_accesses
            )
            self.cores.append(
                Core(
                    core_id=core_id,
                    config=config.cpu,
                    trace=trace,
                    llc=llc,
                    memory=self.memory,
                    address_offset=core_id * region,
                )
            )
        self._current_cycle = 0

    def _functional_warmup(
        self,
        llc: LastLevelCache,
        benchmark,
        address_offset: int,
        accesses: Optional[int],
    ) -> None:
        """Pre-populate a core's LLC so the timed run sees steady-state traffic.

        Short timed windows would otherwise start with a cold (and therefore
        eviction-free) cache, which both under-reports non-intensive hit
        rates and suppresses the dirty-writeback traffic that DARP's
        write-refresh parallelization relies on.  The warmup streams trace
        accesses through the cache model only — no DRAM cycles are
        simulated — and uses a distinct trace instance so the timed run
        still consumes the benchmark's trace from its beginning.
        """
        cache_lines = self.config.cache.size_bytes // self.config.cache.line_bytes
        if accesses is None:
            footprint_lines = max(1, benchmark.footprint_bytes // self.config.cache.line_bytes)
            accesses = min(3 * cache_lines, 4 * footprint_lines)
        if accesses <= 0:
            return
        warm_trace = benchmark.trace(seed=self.workload.seed + self.seed + 7919)
        for _ in range(accesses):
            entry = next(warm_trace)
            llc.access(llc.line_address(address_offset + entry.address), entry.is_write)
        llc.reset_stats()

    # -- execution -------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole system by one DRAM cycle."""
        cycle = self._current_cycle
        completed = self.memory.tick(cycle)
        for request in completed:
            self.cores[request.core_id].complete_load(request)
        for core in self.cores:
            core.tick(cycle)
        self._current_cycle += 1

    def run(self, cycles: int, warmup: int = 0) -> SimulationResult:
        """Run ``warmup`` + ``cycles`` DRAM cycles and report the measured window."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        for _ in range(warmup):
            self.step()
        if warmup:
            self._reset_measurement_state()
        start_cycle = self._current_cycle
        for _ in range(cycles):
            self.step()
        elapsed = self._current_cycle - start_cycle
        return self._build_result(elapsed, warmup)

    # -- internals ----------------------------------------------------------------
    def _reset_measurement_state(self) -> None:
        """Clear statistics accumulated during warmup (state is preserved)."""
        for core in self.cores:
            core.reset_stats()
        self.memory.device.stats = DeviceStats()
        for controller in self.memory.controllers:
            controller.stats = ControllerStats()
            controller.refresh_policy.stats = RefreshStats()
        for channel in self.memory.device.channels:
            channel.read_bursts = 0
            channel.write_bursts = 0
            channel.busy_cycles = 0

    def _build_result(self, elapsed: int, warmup: int) -> SimulationResult:
        core_results = []
        for core, benchmark in zip(self.cores, self.workload.benchmarks):
            stats = core.stats
            core_results.append(
                CoreResult(
                    core_id=core.core_id,
                    benchmark=benchmark.name,
                    instructions=stats.instructions,
                    ipc=core.ipc(elapsed),
                    mpki=stats.mpki(),
                    dram_reads=stats.dram_reads_issued,
                    dram_writes=stats.dram_writes_issued,
                    stall_cycles=stats.stall_cycles,
                )
            )
        device_stats = self.memory.device.stats.as_dict()
        controller_stats: dict[str, float] = {}
        for controller in self.memory.controllers:
            for key, value in controller.stats.as_dict().items():
                controller_stats[key] = controller_stats.get(key, 0) + value
        energy = self.power_model.energy(self.memory.device.stats, elapsed)
        return SimulationResult(
            workload=self.workload.name,
            mechanism=self.config.refresh.mechanism.value,
            density_gb=self.config.dram.density_gb,
            cycles=elapsed,
            warmup_cycles=warmup,
            cores=core_results,
            device_stats=device_stats,
            controller_stats=controller_stats,
            refresh_stats=self.memory.refresh_policy_stats(),
            energy=energy.as_dict(),
        )
