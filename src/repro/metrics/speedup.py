"""Multi-programmed performance metrics."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def _validate(shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> None:
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError(
            "shared and alone IPC lists must have the same length "
            f"({len(shared_ipcs)} != {len(alone_ipcs)})"
        )
    if not shared_ipcs:
        raise ValueError("at least one core is required")
    if any(ipc <= 0 for ipc in alone_ipcs):
        raise ValueError("alone IPCs must be positive")


def weighted_speedup(
    shared_ipcs: Sequence[float],
    alone_ipcs: Sequence[float],
) -> float:
    """Weighted speedup: sum of per-core shared-to-alone IPC ratios.

    This is the paper's primary system-performance metric (Section 5).
    """
    _validate(shared_ipcs, alone_ipcs)
    return sum(s / a for s, a in zip(shared_ipcs, alone_ipcs))


def harmonic_speedup(
    shared_ipcs: Sequence[float],
    alone_ipcs: Sequence[float],
) -> float:
    """Harmonic speedup (Luo et al.): balances throughput and fairness."""
    _validate(shared_ipcs, alone_ipcs)
    n = len(shared_ipcs)
    denominator = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if shared <= 0:
            return 0.0
        denominator += alone / shared
    return n / denominator


def maximum_slowdown(
    shared_ipcs: Sequence[float],
    alone_ipcs: Sequence[float],
) -> float:
    """Maximum slowdown: the worst per-core alone-to-shared IPC ratio."""
    _validate(shared_ipcs, alone_ipcs)
    worst = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if shared <= 0:
            return math.inf
        worst = max(worst, alone / shared)
    return worst


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports gmean improvements (Table 2)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def average_percent_improvement(values: Iterable[float]) -> float:
    """Average percentage improvement via the geometric mean of the ratios.

    This is how the paper aggregates per-workload percentage gains (the
    "gmean" rows of Tables 2 and 6): each percentage is converted back to
    a ratio, the ratios are gmean-averaged, and the result converted back
    to a percentage.
    """
    ratios = [1.0 + value / 100.0 for value in values]
    return (geometric_mean(ratios) - 1.0) * 100.0


def percent_improvement(value: float, baseline: float) -> float:
    """Percentage improvement of ``value`` over ``baseline``."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (value / baseline - 1.0) * 100.0


def percent_loss(value: float, reference: float) -> float:
    """Percentage loss of ``value`` relative to a (better) ``reference``."""
    if reference <= 0:
        raise ValueError("reference must be positive")
    return (1.0 - value / reference) * 100.0
