"""System-level performance metrics used in the evaluation.

The paper reports weighted speedup (its primary metric), harmonic speedup,
maximum slowdown (fairness) and energy per access.  All of them compare a
benchmark's IPC when sharing the system against its IPC when running alone.
"""

from repro.metrics.speedup import (
    geometric_mean,
    harmonic_speedup,
    maximum_slowdown,
    percent_improvement,
    percent_loss,
    weighted_speedup,
)

__all__ = [
    "weighted_speedup",
    "harmonic_speedup",
    "maximum_slowdown",
    "geometric_mean",
    "percent_improvement",
    "percent_loss",
]
