"""IDD current specifications used by the power model.

The values are representative of a Micron 8 Gb DDR3 device (the paper's
power reference, [29]); they are used for all densities, matching the
paper's note that it conservatively assumes the same power parameters for
8, 16 and 32 Gb chips.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IDDValues:
    """DDR3 IDD currents (mA) and supply voltage (V).

    IDD currents are specified per DRAM device (chip); a 64-bit rank built
    from x8 devices contains eight of them, all active on every command, so
    the power model multiplies per-event energy by ``devices_per_rank``.
    """

    vdd: float = 1.5
    #: DRAM chips per rank (x8 devices on a 64-bit channel).
    devices_per_rank: int = 8
    #: One-bank activate-precharge current.
    idd0: float = 95.0
    #: Precharge standby current.
    idd2n: float = 42.0
    #: Active standby current.
    idd3n: float = 67.0
    #: Burst read current.
    idd4r: float = 180.0
    #: Burst write current.
    idd4w: float = 185.0
    #: Burst refresh current (all-bank).
    idd5b: float = 215.0

    def activate_current(self) -> float:
        """Current attributable to one ACTIVATE beyond active standby."""
        return max(0.0, self.idd0 - self.idd3n)

    def refresh_current(self) -> float:
        """Current attributable to a refresh beyond precharge standby."""
        return max(0.0, self.idd5b - self.idd2n)


#: The default device parameters (Micron 8 Gb DDR3, reference [29]).
MICRON_8GB_DDR3 = IDDValues()
