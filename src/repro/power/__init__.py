"""DRAM power and energy model (Micron power-calculator methodology).

The paper reports DRAM system power as energy per memory access serviced
(Figure 14) using the Micron DDR3 power calculator with the 8 Gb TwinDie
device parameters.  This package re-implements that methodology: per-event
energies for activation, read/write bursts and refresh derived from IDD
currents, plus background power integrated over the simulated interval.
"""

from repro.power.dram_power import DRAMPowerModel, EnergyBreakdown
from repro.power.idd import MICRON_8GB_DDR3, IDDValues

__all__ = ["IDDValues", "MICRON_8GB_DDR3", "DRAMPowerModel", "EnergyBreakdown"]
