"""Energy accounting following the Micron power-calculator methodology.

Energy is attributed to four components:

* **background** — standby power of every rank over the simulated interval,
* **activate/precharge** — per ACTIVATE command,
* **read/write bursts** — per column command,
* **refresh** — per refresh command (per-bank refreshes draw roughly an
  eighth of an all-bank refresh's current, Section 4.3.3).

The headline metric matches Figure 14: energy per memory access serviced,
which falls as mechanisms improve performance because the (dominant)
background energy is amortized over the same number of accesses in fewer
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram_config import DRAMConfig
from repro.dram.device import DeviceStats
from repro.power.idd import MICRON_8GB_DDR3, IDDValues


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (nanojoules) attributed to each component."""

    background_nj: float
    activation_nj: float
    read_write_nj: float
    refresh_nj: float
    accesses: int

    @property
    def total_nj(self) -> float:
        return (
            self.background_nj
            + self.activation_nj
            + self.read_write_nj
            + self.refresh_nj
        )

    @property
    def energy_per_access_nj(self) -> float:
        """Energy per memory access serviced (Figure 14's metric)."""
        if self.accesses <= 0:
            return 0.0
        return self.total_nj / self.accesses

    def as_dict(self) -> dict:
        return {
            "background_nj": self.background_nj,
            "activation_nj": self.activation_nj,
            "read_write_nj": self.read_write_nj,
            "refresh_nj": self.refresh_nj,
            "total_nj": self.total_nj,
            "accesses": self.accesses,
            "energy_per_access_nj": self.energy_per_access_nj,
        }


class DRAMPowerModel:
    """Computes the energy consumed by the DRAM system during a simulation."""

    def __init__(self, config: DRAMConfig, idd: IDDValues = MICRON_8GB_DDR3):
        self.config = config
        self.idd = idd

    def _event_energy_nj(self, current_ma: float, duration_cycles: float) -> float:
        """Energy of one event drawing ``current_ma`` for a cycle count.

        The IDD current is per device; every device of the rank participates
        in every command, so the energy is scaled by ``devices_per_rank``.
        """
        seconds = duration_cycles * self.config.timings.tCK_ns * 1e-9
        watts = current_ma * 1e-3 * self.idd.vdd * self.idd.devices_per_rank
        return watts * seconds * 1e9

    def energy(self, stats: DeviceStats, elapsed_cycles: int) -> EnergyBreakdown:
        """Energy breakdown for the device activity in ``stats``."""
        timings = self.config.timings
        org = self.config.organization
        idd = self.idd
        num_ranks = org.channels * org.ranks_per_channel

        background = num_ranks * self._event_energy_nj(idd.idd2n, elapsed_cycles)
        activation = stats.activates * self._event_energy_nj(
            idd.activate_current(), timings.tRC
        )
        reads = stats.reads * self._event_energy_nj(
            idd.idd4r - idd.idd3n, timings.tBL
        )
        writes = stats.writes * self._event_energy_nj(
            idd.idd4w - idd.idd3n, timings.tBL
        )
        refresh_ab = stats.all_bank_refreshes * self._event_energy_nj(
            idd.refresh_current(), timings.tRFCab
        )
        # A per-bank refresh draws roughly one eighth of an all-bank
        # refresh's current (it refreshes one bank instead of eight).
        refresh_pb = stats.per_bank_refreshes * self._event_energy_nj(
            idd.refresh_current() / org.banks_per_rank, timings.tRFCpb
        )
        accesses = stats.reads + stats.writes
        return EnergyBreakdown(
            background_nj=background,
            activation_nj=activation,
            read_write_nj=reads + writes,
            refresh_nj=refresh_ab + refresh_pb,
            accesses=accesses,
        )
