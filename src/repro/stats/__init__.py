"""Unified statistics registry with declarative merge semantics.

See :mod:`repro.stats.registry` for the model: every statistics holder
declares a :class:`StatsSchema` (raw counters + merge kind + derived
weighted averages) and registers it under a short name, so aggregation
across channels / ranks / policies happens through one audited code path
instead of hand-rolled loops at every call site.
"""

from repro.stats.registry import (
    MAX,
    MERGE_KINDS,
    SUM,
    StatField,
    StatsSchema,
    StatsStruct,
    WeightedAverage,
    get_schema,
    merge_stats,
    register_schema,
    schema_names,
)

__all__ = [
    "MAX",
    "MERGE_KINDS",
    "SUM",
    "StatField",
    "StatsSchema",
    "StatsStruct",
    "WeightedAverage",
    "get_schema",
    "merge_stats",
    "register_schema",
    "schema_names",
]
