"""Declarative statistics schemas with explicit merge semantics.

Every statistics holder in the simulator (controller, device, channel,
refresh policy, core, engine executor) declares a :class:`StatsSchema`:
the counter fields it owns, how each merges across instances (``sum`` or
``max``), and the ratios derived from them (:class:`WeightedAverage`).
Merging then happens in exactly one place — :meth:`StatsSchema.merge` —
instead of being re-implemented ad hoc at every aggregation site.

The crucial property the schema enforces is that *derived* values are
never merged directly: a weighted average is recomputed from the merged
raw totals.  Summing per-channel ``average_read_latency`` values (the bug
this module was introduced to make impossible) produces a meaningless
sum-of-averages; merging ``total_read_latency`` and ``served_reads`` and
dividing once is the only behaviour the schema can express.

Schemas register themselves in a process-wide registry under a short name
(``"controller"``, ``"device"``, ...), so aggregation code can look up
merge semantics by name and tests can enumerate every holder.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Iterable, Optional

#: Merge kinds a raw field may declare.
SUM = "sum"
MAX = "max"
MERGE_KINDS = (SUM, MAX)


@dataclass(frozen=True)
class StatField:
    """One raw counter: a name and how it merges across instances."""

    name: str
    merge: str = SUM

    def __post_init__(self) -> None:
        if self.merge not in MERGE_KINDS:
            raise ValueError(
                f"unknown merge kind {self.merge!r} for field {self.name!r}; "
                f"expected one of {MERGE_KINDS}"
            )


@dataclass(frozen=True)
class WeightedAverage:
    """A derived ratio: ``scale * total / count`` over *merged* raw fields.

    ``total`` and ``count`` name raw fields of the same schema.  Because
    the ratio is computed after the raw fields merge, averaging across
    instances is automatically weighted by ``count`` — per-instance
    averages never participate in a merge.
    """

    name: str
    total: str
    count: str
    scale: float = 1.0

    def compute(self, values: dict) -> float:
        count = values[self.count]
        if count <= 0:
            return 0.0
        return self.scale * values[self.total] / count


class StatsSchema:
    """Field declarations and merge semantics for one statistics holder."""

    def __init__(
        self,
        name: str,
        fields: Iterable[StatField | str],
        derived: Iterable[WeightedAverage] = (),
    ):
        self.name = name
        self.fields: tuple[StatField, ...] = tuple(
            field if isinstance(field, StatField) else StatField(field)
            for field in fields
        )
        self.derived: tuple[WeightedAverage, ...] = tuple(derived)
        names = [field.name for field in self.fields]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(
                f"schema {name!r} declares duplicate fields: "
                f"{', '.join(sorted(duplicates))}"
            )
        declared = set(names)
        for ratio in self.derived:
            missing = {ratio.total, ratio.count} - declared
            if missing:
                raise ValueError(
                    f"derived stat {ratio.name!r} of schema {name!r} references "
                    f"undeclared fields: {', '.join(sorted(missing))}"
                )
            if ratio.name in declared:
                raise ValueError(
                    f"derived stat {ratio.name!r} of schema {name!r} collides "
                    f"with a raw field"
                )
        self._merge_of = {field.name: field.merge for field in self.fields}
        self._derived_names = {ratio.name for ratio in self.derived}

    # -- introspection -----------------------------------------------------
    def field_names(self) -> tuple[str, ...]:
        return tuple(field.name for field in self.fields)

    def derived_names(self) -> tuple[str, ...]:
        return tuple(ratio.name for ratio in self.derived)

    # -- serialization -----------------------------------------------------
    def as_dict(self, obj) -> dict:
        """Raw fields read off ``obj`` plus the derived ratios."""
        values = {field.name: getattr(obj, field.name) for field in self.fields}
        for ratio in self.derived:
            values[ratio.name] = ratio.compute(values)
        return values

    # -- aggregation -------------------------------------------------------
    def merge(self, dicts: Iterable[dict]) -> dict:
        """Merge several :meth:`as_dict` payloads into one.

        Raw fields combine according to their declared kind; derived
        values present in the inputs are *discarded* and recomputed from
        the merged raw fields.  Keys the schema does not declare are
        summed — statistics holders may carry implementation-specific
        extras (a policy subclass's private counter) without registering
        a new schema, and summing is the only safe default for counters.
        """
        merged: dict = {field.name: 0 for field in self.fields}
        merge_of = self._merge_of
        derived_names = self._derived_names
        for payload in dicts:
            for key, value in payload.items():
                if key in derived_names:
                    continue
                kind = merge_of.get(key)
                if kind == MAX:
                    current = merged.get(key, value)
                    merged[key] = value if value > current else current
                else:
                    merged[key] = merged.get(key, 0) + value
        for ratio in self.derived:
            merged[ratio.name] = ratio.compute(merged)
        return merged

    def diff(self, current: dict, since: dict) -> dict:
        """Field-wise movement between two :meth:`as_dict` payloads.

        Only meaningful for ``sum``-merged fields (cumulative counters);
        derived ratios are recomputed from the differenced raw fields.
        """
        values = {
            field.name: current[field.name] - since.get(field.name, 0)
            for field in self.fields
        }
        for ratio in self.derived:
            values[ratio.name] = ratio.compute(values)
        return values


#: Process-wide schema registry, keyed by schema name.
_REGISTRY: dict[str, StatsSchema] = {}


def register_schema(schema: StatsSchema) -> StatsSchema:
    """Add a schema to the registry; duplicate names are an error."""
    if schema.name in _REGISTRY:
        raise ValueError(f"a stats schema named {schema.name!r} is already registered")
    _REGISTRY[schema.name] = schema
    return schema


def get_schema(name: str) -> StatsSchema:
    """Look up a registered schema; unknown names list the alternatives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown stats schema {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def schema_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def merge_stats(name: str, dicts: Iterable[dict]) -> dict:
    """Merge payloads under the named schema's declared semantics."""
    return get_schema(name).merge(dicts)


class StatsStruct:
    """Mixin giving a stats dataclass schema-driven ``as_dict``/``reset``.

    The concrete dataclass sets ``SCHEMA`` to its registered
    :class:`StatsSchema`; every raw field of the schema must be a
    dataclass field with a default, which :meth:`reset` restores.
    """

    SCHEMA: ClassVar[Optional[StatsSchema]] = None

    def as_dict(self) -> dict:
        return self.SCHEMA.as_dict(self)

    def reset(self) -> None:
        """Restore every counter to its dataclass default."""
        for field in dataclasses.fields(self):
            if field.default is not dataclasses.MISSING:
                setattr(self, field.name, field.default)
            elif field.default_factory is not dataclasses.MISSING:
                setattr(self, field.name, field.default_factory())
            else:
                raise TypeError(
                    f"{type(self).__name__}.{field.name} has no default to "
                    f"reset to"
                )

    @classmethod
    def merge_dicts(cls, dicts: Iterable[dict]) -> dict:
        """Merge :meth:`as_dict` payloads under this class's schema."""
        return cls.SCHEMA.merge(dicts)
