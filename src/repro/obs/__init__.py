"""Observability: command traces, epoch metrics, profiling spans, logging.

The subsystem has four deliberately independent pieces:

* :mod:`repro.obs.trace` — the command-stream tracer (ring buffer plus
  JSONL / binary sinks) hooked into the memory controller;
* :mod:`repro.obs.epochs` — the fixed-interval epoch sampler, whose
  samples merge through the :mod:`repro.stats` registry;
* :mod:`repro.obs.profile` — wall-clock span profiling for the event
  kernel and the experiment engine;
* :mod:`repro.obs.log` — the structured logger shared by the runner,
  engine and workload layers.

Everything here is observation-only: enabling any of it never changes
simulated results (enforced by tests and the ``trace_overhead`` bench).
This module keeps imports light so hot paths can guard on
``tracer is not None`` without paying for unused machinery.
"""

from repro.obs.log import get_logger
from repro.obs.record import TraceRecord
from repro.obs.trace import CommandTracer, read_trace, write_trace

__all__ = [
    "CommandTracer",
    "TraceRecord",
    "get_logger",
    "read_trace",
    "write_trace",
]
