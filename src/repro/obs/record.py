"""Typed trace records and the operation vocabulary.

A :class:`TraceRecord` is one event in a command-stream trace: either a
DRAM command issued by a channel controller (``op`` is the command kind's
name — ACT, RD, WR, RDA, WRA, PRE, REFAB, REFPB) or a refresh-policy
decision (DARP out-of-order issue variants, SARP subarray-overlap
conflicts).  Records are plain frozen dataclasses so both sinks — JSONL
and the packed binary format — serialize the same stream.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: DRAM command operations, as emitted by the controller issue path.
COMMAND_OPS: tuple[str, ...] = (
    "ACT",
    "RD",
    "WR",
    "RDA",
    "WRA",
    "PRE",
    "REFAB",
    "REFPB",
)

#: Refresh-policy decision operations.  DARP_* record out-of-order refresh
#: scheduling decisions; SARP_CONFLICT records subarray-overlap accounting
#: (``done`` carries the conflict count, ``cycle`` is -1 because SARP
#: charges conflicts to a span, not an instant).
DECISION_OPS: tuple[str, ...] = (
    "DARP_POSTPONE",
    "DARP_FORCED",
    "DARP_IDLE",
    "DARP_WRITE_MODE",
    "DARP_POSTDEMAND",
    "SARP_CONFLICT",
)

#: Every op either sink may carry, in a fixed order (the binary format
#: indexes into this table).
ALL_OPS: tuple[str, ...] = COMMAND_OPS + DECISION_OPS

#: Ops that occupy a refresh window ``[cycle, done)``.
REFRESH_OPS = frozenset({"REFAB", "REFPB"})

#: Column commands — the accesses whose overlap with refreshes the paper's
#: DARP/SARP mechanisms create.
COLUMN_OPS = frozenset({"RD", "WR", "RDA", "WRA"})


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace event.

    ``cycle`` is the issue cycle (-1 for span-accounted decisions),
    ``done`` the completion cycle for commands (the device's returned
    ready-cycle) or a count for SARP_CONFLICT decisions.  ``bank`` and
    ``row`` are -1 when the op does not address one (e.g. all-bank
    refresh has no bank, a decision may have no row).
    """

    cycle: int
    op: str
    channel: int
    rank: int
    bank: int = -1
    row: int = -1
    done: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TraceRecord":
        return cls(**data)
