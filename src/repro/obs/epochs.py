"""Fixed-interval epoch sampling of simulator state.

An epoch is a window of ``interval`` DRAM cycles inside the measured run.
At every epoch boundary the :class:`EpochSampler` captures two kinds of
data: *deltas* of cumulative counters over the epoch (instructions
retired, stall cycles, commands issued, refreshes, subarray conflicts)
and *boundary snapshots* of instantaneous occupancy (queue depths, open
banks, banks under refresh).

Samples merge through the :mod:`repro.stats` registry under the
``"epoch"`` schema, so aggregating epochs — within a run or across runs —
recomputes IPC and the average depths from merged raw totals instead of
averaging averages.

Sampling is observation-only: the simulator reaches every epoch boundary
through the same clamped kernel steps it would use for the end of the
run, so enabling epochs never changes simulated results (pinned by the
bit-identity tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats import (
    MAX,
    StatField,
    StatsSchema,
    StatsStruct,
    WeightedAverage,
    register_schema,
)


@dataclass
class EpochStats(StatsStruct):
    """Merge semantics for epoch samples (see :meth:`EpochSample.stats_dict`)."""

    SCHEMA = register_schema(
        StatsSchema(
            "epoch",
            fields=(
                "epochs",
                "cycles",
                "instructions",
                "stall_cycles",
                "commands",
                "refreshes",
                "subarray_conflicts",
                "read_queue",
                "write_queue",
                "open_banks",
                "refreshing_banks",
                StatField("max_read_queue", merge=MAX),
                StatField("max_write_queue", merge=MAX),
            ),
            derived=(
                WeightedAverage("ipc", "instructions", "cycles"),
                WeightedAverage("avg_read_queue", "read_queue", "epochs"),
                WeightedAverage("avg_write_queue", "write_queue", "epochs"),
                WeightedAverage("avg_refreshing_banks", "refreshing_banks", "epochs"),
            ),
        )
    )

    epochs: int = 0
    cycles: int = 0
    instructions: int = 0
    stall_cycles: int = 0
    commands: int = 0
    refreshes: int = 0
    subarray_conflicts: int = 0
    read_queue: int = 0
    write_queue: int = 0
    open_banks: int = 0
    refreshing_banks: int = 0
    max_read_queue: int = 0
    max_write_queue: int = 0


@dataclass(frozen=True)
class EpochSample:
    """One epoch's worth of simulator state.

    Counter fields are deltas over the epoch; ``read_queue`` through
    ``refreshing_banks`` are boundary snapshots taken at ``start +
    cycles``.
    """

    start: int
    cycles: int
    instructions: int
    stall_cycles: int
    commands: int
    refreshes: int
    subarray_conflicts: int
    read_queue: int
    write_queue: int
    open_banks: int
    refreshing_banks: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stall_cycles": self.stall_cycles,
            "commands": self.commands,
            "refreshes": self.refreshes,
            "subarray_conflicts": self.subarray_conflicts,
            "read_queue": self.read_queue,
            "write_queue": self.write_queue,
            "open_banks": self.open_banks,
            "refreshing_banks": self.refreshing_banks,
            "ipc": self.ipc,
        }

    def stats_dict(self) -> dict:
        """Mergeable payload under the ``"epoch"`` schema.

        ``epochs`` (always 1) is the weight for the boundary-snapshot
        averages, and the boundary depths seed the MAX-merged peaks.
        """
        return {
            "epochs": 1,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stall_cycles": self.stall_cycles,
            "commands": self.commands,
            "refreshes": self.refreshes,
            "subarray_conflicts": self.subarray_conflicts,
            "read_queue": self.read_queue,
            "write_queue": self.write_queue,
            "open_banks": self.open_banks,
            "refreshing_banks": self.refreshing_banks,
            "max_read_queue": self.read_queue,
            "max_write_queue": self.write_queue,
        }


def merge_epoch_samples(samples) -> dict:
    """Aggregate samples under the registered ``"epoch"`` schema."""
    return EpochStats.SCHEMA.merge(sample.stats_dict() for sample in samples)


class EpochSampler:
    """Captures :class:`EpochSample` records at fixed cycle intervals."""

    def __init__(self, interval: int):
        if interval < 1:
            raise ValueError(f"epoch interval must be >= 1, got {interval}")
        self.interval = interval
        self.samples: list[EpochSample] = []
        self._snapshot: dict = {}
        self._epoch_start = 0

    # -- cumulative-counter snapshots ---------------------------------------
    @staticmethod
    def _counters(sim) -> dict:
        device = sim.memory.device.stats
        return {
            "instructions": sum(core.stats.instructions for core in sim.cores),
            "stall_cycles": sum(core.stats.stall_cycles for core in sim.cores),
            "commands": sum(
                controller.stats.issued_commands
                for controller in sim.memory.controllers
            ),
            "refreshes": device.all_bank_refreshes + device.per_bank_refreshes,
            "subarray_conflicts": device.subarray_conflicts,
        }

    @staticmethod
    def _occupancy(sim, cycle: int) -> dict:
        read_queue = 0
        write_queue = 0
        for controller in sim.memory.controllers:
            read_queue += controller.queues.read_count
            write_queue += controller.queues.write_count
        open_banks = 0
        refreshing = 0
        for channel in sim.memory.device.channels:
            for rank in channel.ranks:
                if rank.is_under_all_bank_refresh(cycle):
                    refreshing += len(rank.banks)
                for bank in rank.banks:
                    if bank.open_row is not None:
                        open_banks += 1
                    if not rank.is_under_all_bank_refresh(
                        cycle
                    ) and bank.is_refreshing(cycle):
                        refreshing += 1
        return {
            "read_queue": read_queue,
            "write_queue": write_queue,
            "open_banks": open_banks,
            "refreshing_banks": refreshing,
        }

    # -- protocol -----------------------------------------------------------
    def begin(self, sim, cycle: int) -> None:
        """Start the first epoch at ``cycle`` (the measurement start)."""
        self.samples.clear()
        self._epoch_start = cycle
        self._snapshot = self._counters(sim)

    def sample(self, sim, cycle: int) -> EpochSample:
        """Close the epoch ending at ``cycle`` and start the next one."""
        counters = self._counters(sim)
        deltas = {
            key: counters[key] - self._snapshot[key] for key in counters
        }
        sample = EpochSample(
            start=self._epoch_start,
            cycles=cycle - self._epoch_start,
            **deltas,
            **self._occupancy(sim, cycle),
        )
        self.samples.append(sample)
        self._snapshot = counters
        self._epoch_start = cycle
        return sample
