"""Structured logging for the runner, engine and workload layers.

One shared stdlib ``logging`` hierarchy rooted at ``"repro"``: call
:func:`get_logger` with a module name and log through it.  The root is
configured exactly once — level from the ``REPRO_LOG_LEVEL`` environment
variable (default ``WARNING``, so pytest runs and library use stay
quiet), a single stderr handler, and ``propagate = False`` so host
applications that configure the Python root logger do not get duplicate
lines.

Set ``REPRO_LOG_LEVEL=DEBUG`` to watch experiment planning, batch
execution and trace persistence as they happen.
"""

from __future__ import annotations

import logging
import os
import sys

#: Environment variable selecting the log level.
LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Level used when the variable is unset or names no known level.
DEFAULT_LEVEL = logging.WARNING

_ROOT_NAME = "repro"
_configured = False


def _resolve_level(name: str) -> int:
    level = logging.getLevelName(name.strip().upper())
    return level if isinstance(level, int) else DEFAULT_LEVEL


def configure(stream=None, force: bool = False) -> logging.Logger:
    """Configure (once) and return the ``repro`` root logger."""
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    if _configured and not force:
        return root
    root.handlers.clear()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    root.addHandler(handler)
    root.setLevel(_resolve_level(os.environ.get(LEVEL_ENV, "")))
    root.propagate = False
    _configured = True
    return root


def get_logger(name: str) -> logging.Logger:
    """Logger under the configured ``repro`` hierarchy.

    ``name`` is usually ``__name__``; names outside the hierarchy are
    nested under it so every repro logger shares the root's handler.
    """
    configure()
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
