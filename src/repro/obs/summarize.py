"""Trace analysis: overlap windows, bank utilization, row-hit runs.

This is the read side of the tracer — ``repro trace summarize`` feeds a
trace file through :func:`summarize_trace` and renders the result.  The
headline analysis is the refresh-access overlap reconstruction: for every
refresh window ``[cycle, done)`` it finds the column commands (RD/WR and
their autoprecharging variants) issued to the same rank while the
refresh was in flight.  Overlaps to *other* banks are exactly the
parallelism DARP's out-of-order scheduling creates; overlaps to the
*refreshing* bank itself are only possible with SARP's subarray-level
parallelization and are reported separately.

Every total the analysis produces is cross-checked against the run
aggregates embedded in the trace header (device command counts, DARP
decision counters); a complete trace (``dropped == 0``) must agree
exactly, and the CLI turns disagreement into a non-zero exit code.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter, defaultdict
from pathlib import Path
from typing import Iterable, Union

from repro.obs.record import COLUMN_OPS, COMMAND_OPS, REFRESH_OPS, TraceRecord
from repro.obs.trace import read_trace

_COMMAND_OPS = frozenset(COMMAND_OPS)


def _bank_key(channel: int, rank: int, bank: int) -> str:
    return f"ch{channel}.r{rank}.b{bank}"


def _overlap_windows(records: Iterable[TraceRecord]) -> dict:
    """Reconstruct refresh-access overlap windows.

    For each refresh, overlapping accesses are column commands on the
    same (channel, rank) whose issue cycle falls inside the refresh
    window.  Uses per-rank sorted cycle lists + binary search so the
    scan is O(records log records) rather than refreshes x accesses.
    """
    columns: dict[tuple[int, int], list[tuple[int, int]]] = defaultdict(list)
    refreshes = []
    for record in records:
        if record.op in COLUMN_OPS:
            columns[(record.channel, record.rank)].append(
                (record.cycle, record.bank)
            )
        elif record.op in REFRESH_OPS:
            refreshes.append(record)
    for entries in columns.values():
        entries.sort()
    windows = []
    refreshes_with_overlap = 0
    overlapped_commands = 0
    same_bank_overlaps = 0
    for refresh in refreshes:
        entries = columns.get((refresh.channel, refresh.rank), ())
        cycles = [cycle for cycle, _ in entries]
        lo = bisect_left(cycles, refresh.cycle)
        hi = bisect_right(cycles, refresh.done - 1)
        other_bank = 0
        same_bank = 0
        for _, bank in entries[lo:hi]:
            if refresh.op == "REFPB" and bank == refresh.bank:
                same_bank += 1
            else:
                other_bank += 1
        overlapped = other_bank + same_bank
        if overlapped:
            refreshes_with_overlap += 1
            overlapped_commands += overlapped
            same_bank_overlaps += same_bank
        windows.append(
            {
                "op": refresh.op,
                "channel": refresh.channel,
                "rank": refresh.rank,
                "bank": refresh.bank,
                "start": refresh.cycle,
                "end": refresh.done,
                "overlapped": overlapped,
                "same_bank": same_bank,
            }
        )
    return {
        "refreshes": len(refreshes),
        "refreshes_with_overlap": refreshes_with_overlap,
        "overlapped_commands": overlapped_commands,
        "same_bank_overlaps": same_bank_overlaps,
        "windows": windows,
    }


def _bank_utilization(records: list[TraceRecord]) -> dict:
    """Per-bank busy cycles (sum of command service windows) and share."""
    if not records:
        return {}
    commands = [
        r for r in records if r.cycle >= 0 and r.bank >= 0 and r.done > r.cycle
    ]
    if not commands:
        return {}
    span_start = min(r.cycle for r in commands)
    span_end = max(r.done for r in commands)
    span = max(1, span_end - span_start)
    busy: dict[str, int] = defaultdict(int)
    counts: dict[str, int] = defaultdict(int)
    for record in commands:
        key = _bank_key(record.channel, record.rank, record.bank)
        busy[key] += record.done - record.cycle
        counts[key] += 1
    return {
        key: {
            "commands": counts[key],
            "busy_cycles": busy[key],
            "utilization": busy[key] / span,
        }
        for key in sorted(busy)
    }


def _row_hit_runs(records: list[TraceRecord]) -> dict:
    """Column-command run lengths per row activation (row-buffer locality)."""
    runs: list[int] = []
    current: dict[str, int] = {}
    for record in sorted(records, key=lambda r: r.cycle):
        if record.bank < 0:
            continue
        key = _bank_key(record.channel, record.rank, record.bank)
        if record.op == "ACT":
            if key in current:
                runs.append(current[key])
            current[key] = 0
        elif record.op in COLUMN_OPS and key in current:
            current[key] += 1
    runs.extend(current.values())
    if not runs:
        return {"count": 0, "mean": 0.0, "max": 0}
    return {
        "count": len(runs),
        "mean": sum(runs) / len(runs),
        "max": max(runs),
    }


def _crosscheck(header: dict, op_counts: Counter, conflict_total: int) -> dict:
    """Compare trace totals against the header's run aggregates.

    Only complete traces (``dropped == 0``) are held to exact agreement;
    a ring buffer that wrapped cannot reproduce run totals by design.
    """
    device = header.get("device_stats")
    checks: dict[str, dict] = {}
    if device:
        expectations = {
            "activates": op_counts["ACT"],
            "reads": op_counts["RD"] + op_counts["RDA"],
            "writes": op_counts["WR"] + op_counts["WRA"],
            "precharges": op_counts["PRE"],
            "all_bank_refreshes": op_counts["REFAB"],
            "per_bank_refreshes": op_counts["REFPB"],
            "subarray_conflicts": conflict_total,
        }
        for key, traced in expectations.items():
            checks[f"device.{key}"] = {"trace": traced, "run": device.get(key, 0)}
    refresh = header.get("refresh_stats")
    if refresh and "darp" in str(header.get("mechanism", "")):
        for stat, op in (
            ("forced", "DARP_FORCED"),
            ("postponed", "DARP_POSTPONE"),
            ("write_mode_refreshes", "DARP_WRITE_MODE"),
        ):
            checks[f"refresh.{stat}"] = {
                "trace": op_counts[op],
                "run": refresh.get(stat, 0),
            }
    complete = header.get("dropped", 0) == 0
    agrees = all(c["trace"] == c["run"] for c in checks.values())
    return {
        "complete": complete,
        "checked": len(checks),
        "agrees": agrees if complete else True,
        "strict": complete,
        "checks": checks,
    }


def summarize_trace(header: dict, records: list[TraceRecord]) -> dict:
    """Full structured summary of one trace."""
    op_counts = Counter(record.op for record in records)
    conflict_total = sum(
        record.done for record in records if record.op == "SARP_CONFLICT"
    )
    command_records = [r for r in records if r.op in _COMMAND_OPS]
    summary = {
        "header": {
            key: header.get(key)
            for key in (
                "workload",
                "mechanism",
                "density_gb",
                "cycles",
                "warmup",
                "records",
                "dropped",
            )
        },
        "commands": dict(sorted(op_counts.items())),
        "refresh_overlap": _overlap_windows(records),
        "bank_utilization": _bank_utilization(command_records),
        "row_hit_runs": _row_hit_runs(command_records),
        "sarp_conflicts": conflict_total,
        "crosscheck": _crosscheck(header, op_counts, conflict_total),
    }
    # Degenerate traces (empty file, header-only) still produce a complete
    # all-zeros summary rather than None counters.
    head = summary["header"]
    if head["records"] is None:
        head["records"] = len(records)
    if head["dropped"] is None:
        head["dropped"] = 0
    return summary


def summarize_path(path: Union[str, Path]) -> dict:
    header, records = read_trace(path)
    return summarize_trace(header, records)


def format_summary(summary: dict, top_banks: int = 8) -> str:
    """Human-readable rendering of :func:`summarize_trace` output."""
    head = summary["header"]
    overlap = summary["refresh_overlap"]
    lines = [
        f"workload={head.get('workload')} mechanism={head.get('mechanism')} "
        f"density={head.get('density_gb')}Gb cycles={head.get('cycles')}",
        f"records={head.get('records')} dropped={head.get('dropped')}",
        "",
        "commands: "
        + " ".join(f"{op}={n}" for op, n in summary["commands"].items()),
        "",
        f"refresh-access overlap: {overlap['refreshes_with_overlap']} of "
        f"{overlap['refreshes']} refresh windows overlapped demand accesses; "
        f"{overlap['overlapped_commands']} commands issued under refresh "
        f"({overlap['same_bank_overlaps']} to the refreshing bank itself, "
        f"SARP)",
        f"sarp subarray conflicts: {summary['sarp_conflicts']}",
        "",
        f"row-hit runs: count={summary['row_hit_runs']['count']} "
        f"mean={summary['row_hit_runs']['mean']:.2f} "
        f"max={summary['row_hit_runs']['max']}",
    ]
    utilization = summary["bank_utilization"]
    if utilization:
        lines.append("")
        lines.append(f"busiest banks (top {top_banks}):")
        ranked = sorted(
            utilization.items(), key=lambda kv: -kv[1]["utilization"]
        )[:top_banks]
        for key, info in ranked:
            lines.append(
                f"  {key}: {info['utilization'] * 100:5.1f}% busy "
                f"({info['commands']} commands, {info['busy_cycles']} cycles)"
            )
    check = summary["crosscheck"]
    lines.append("")
    if not check["strict"]:
        lines.append(
            f"crosscheck: skipped (trace dropped "
            f"{head.get('dropped')} records; totals are partial)"
        )
    elif check["agrees"]:
        lines.append(
            f"crosscheck: OK — {check['checked']} trace totals match the "
            f"run's aggregate statistics"
        )
    else:
        lines.append("crosscheck: FAILED")
        for name, result in sorted(check["checks"].items()):
            if result["trace"] != result["run"]:
                lines.append(
                    f"  {name}: trace={result['trace']} run={result['run']}"
                )
    return "\n".join(lines) + "\n"
