"""Command-stream tracer: ring buffer plus JSONL and binary sinks.

The tracer is designed to be zero-cost when off: hot paths hold a plain
attribute (``self.tracer``) that is ``None`` unless tracing was enabled,
so the disabled path is a single identity check.  When on, records go
into a bounded :class:`collections.deque` — long runs keep the most
recent ``capacity`` events and count what they dropped, so the sinks can
say whether a trace is complete.

Two interchangeable on-disk formats:

* **JSONL** — first line is ``{"header": {...}}``, then one record
  object per line.  Greppable, diffable, self-describing.
* **binary** — magic ``REPROBS1``, a length-prefixed JSON header (with
  the op table injected under ``"_ops"``), a record count, then
  fixed-width packed records.  Roughly 6x smaller than JSONL and much
  faster to scan.

:func:`read_trace` sniffs the magic so consumers never care which sink
produced a file, and decodes both formats to identical
``(header, records)`` streams (a property pinned by tests).
"""

from __future__ import annotations

import json
import struct
from collections import deque
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.obs.record import ALL_OPS, TraceRecord

#: Magic prefix identifying the binary trace format, version 1.
BINARY_MAGIC = b"REPROBS1"

#: Packed record layout: cycle:int64, op:uint8, channel/rank/bank:int16,
#: row:int32, done:int64 (little-endian).  ``done`` shares cycle's width
#: because it doubles as a completion cycle.
_RECORD = struct.Struct("<qBhhhiq")

_LENGTH = struct.Struct("<I")


class CommandTracer:
    """Bounded in-memory sink for :class:`TraceRecord` events.

    ``command``/``decision`` are the only methods on the hot path; both
    are a deque append plus a counter bump.  ``total`` counts every
    record ever offered, so ``dropped`` (records evicted by the ring
    buffer) is ``total - len(records)``.
    """

    __slots__ = ("capacity", "records", "total")

    def __init__(self, capacity: int = 1 << 20) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        self.total = 0

    @property
    def dropped(self) -> int:
        return self.total - len(self.records)

    def command(self, command, cycle: int, done: int) -> None:
        """Record a DRAM command issue (called from the controller)."""
        self.total += 1
        self.records.append(
            TraceRecord(
                cycle=cycle,
                op=command.kind.name,
                channel=command.channel,
                rank=command.rank,
                bank=-1 if command.bank is None else command.bank,
                row=-1 if command.row is None else command.row,
                done=done,
            )
        )

    def decision(
        self,
        op: str,
        cycle: int,
        channel: int,
        rank: int,
        bank: int = -1,
        row: int = -1,
        count: int = 1,
    ) -> None:
        """Record a refresh-policy decision (DARP_*/SARP_CONFLICT)."""
        self.total += 1
        self.records.append(
            TraceRecord(
                cycle=cycle,
                op=op,
                channel=channel,
                rank=rank,
                bank=bank,
                row=row,
                done=count,
            )
        )

    def reset(self) -> None:
        """Drop everything recorded so far (warmup ends here)."""
        self.records.clear()
        self.total = 0


# -- sinks -----------------------------------------------------------------


def write_trace(
    path: Union[str, Path],
    header: dict,
    records: Iterable[TraceRecord],
    fmt: str = "jsonl",
) -> Path:
    """Persist a trace; returns the written path."""
    path = Path(path)
    if fmt == "jsonl":
        _write_jsonl(path, header, records)
    elif fmt == "binary":
        _write_binary(path, header, records)
    else:
        raise ValueError(f"unknown trace format {fmt!r}; expected jsonl or binary")
    return path


def read_trace(path: Union[str, Path]) -> tuple[dict, list[TraceRecord]]:
    """Load a trace written by either sink; the format is sniffed."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(BINARY_MAGIC))
    if magic == BINARY_MAGIC:
        return _read_binary(path)
    return _read_jsonl(path)


def _write_jsonl(path: Path, header: dict, records: Iterable[TraceRecord]) -> None:
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"header": header}, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")


def _read_jsonl(path: Path) -> tuple[dict, list[TraceRecord]]:
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first.strip():
            # An empty (or whitespace-only) file is a legitimate degenerate
            # trace — a run that recorded nothing — not a format error.
            return {}, []
        head = json.loads(first)
        if "header" not in head:
            raise ValueError(f"{path} does not start with a trace header line")
        records = [
            TraceRecord.from_dict(json.loads(line)) for line in handle if line.strip()
        ]
    return head["header"], records


def _write_binary(path: Path, header: dict, records: Iterable[TraceRecord]) -> None:
    records = list(records)
    # The op table rides inside the header so the format is self-contained
    # even if ALL_OPS grows in a later version; the reader strips it.
    payload = dict(header)
    payload["_ops"] = list(ALL_OPS)
    header_bytes = json.dumps(payload, sort_keys=True).encode("utf-8")
    op_index = {op: i for i, op in enumerate(ALL_OPS)}
    with path.open("wb") as handle:
        handle.write(BINARY_MAGIC)
        handle.write(_LENGTH.pack(len(header_bytes)))
        handle.write(header_bytes)
        handle.write(_LENGTH.pack(len(records)))
        for record in records:
            handle.write(
                _RECORD.pack(
                    record.cycle,
                    op_index[record.op],
                    record.channel,
                    record.rank,
                    record.bank,
                    record.row,
                    record.done,
                )
            )


def _read_binary(path: Path) -> tuple[dict, list[TraceRecord]]:
    data = path.read_bytes()
    if not data.startswith(BINARY_MAGIC):
        raise ValueError(f"{path} lacks the binary trace magic")
    offset = len(BINARY_MAGIC)
    (header_len,) = _LENGTH.unpack_from(data, offset)
    offset += _LENGTH.size
    header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    offset += header_len
    ops = header.pop("_ops", list(ALL_OPS))
    (count,) = _LENGTH.unpack_from(data, offset)
    offset += _LENGTH.size
    records = []
    for _ in range(count):
        cycle, op, channel, rank, bank, row, done = _RECORD.unpack_from(data, offset)
        offset += _RECORD.size
        records.append(
            TraceRecord(
                cycle=cycle,
                op=ops[op],
                channel=channel,
                rank=rank,
                bank=bank,
                row=row,
                done=done,
            )
        )
    return header, records


def trace_header(
    *,
    workload: str,
    mechanism: str,
    density_gb: int,
    cycles: int,
    warmup: int,
    seed: int,
    job_key: str,
    tracer: CommandTracer,
    extra: Optional[dict] = None,
) -> dict:
    """Standard trace header written by the engine job runner."""
    header = {
        "schema": "repro.obs.trace",
        "version": 1,
        "workload": workload,
        "mechanism": mechanism,
        "density_gb": density_gb,
        "cycles": cycles,
        "warmup": warmup,
        "seed": seed,
        "job_key": job_key,
        "capacity": tracer.capacity,
        "records": len(tracer.records),
        "dropped": tracer.dropped,
    }
    if extra:
        header.update(extra)
    return header
