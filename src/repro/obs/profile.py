"""Wall-clock span profiling for the kernel and the experiment engine.

A :class:`SpanProfiler` aggregates named spans into (count, total, max)
triples; :func:`enable` installs one as the module-global ``ACTIVE`` that
instrumented sites consult.  Sites read the global through the module
attribute (``profile.ACTIVE``), never a ``from``-import, so enabling
mid-process takes effect everywhere immediately; when ``ACTIVE`` is
``None`` the hot-path cost is one attribute load and an identity check.

The profiler measures the *host's* wall clock, not simulated time — it
answers "where do my experiment seconds go" (kernel stepping, horizon
scans, per-job engine time), which is the data the ROADMAP's hot-path
optimisation item needs.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Optional


class SpanProfiler:
    """Aggregates named wall-clock spans."""

    __slots__ = ("spans",)

    def __init__(self) -> None:
        #: name -> [count, total_s, max_s]
        self.spans: dict[str, list] = {}

    def add(self, name: str, seconds: float) -> None:
        entry = self.spans.get(name)
        if entry is None:
            self.spans[name] = [1, seconds, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds
            if seconds > entry[2]:
                entry[2] = seconds

    def hotspots(self) -> list[tuple[str, int, float, float]]:
        """(name, count, total_s, max_s) rows sorted by total descending."""
        rows = [
            (name, entry[0], entry[1], entry[2])
            for name, entry in self.spans.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows

    def as_dict(self) -> dict:
        return {
            name: {"count": count, "total_s": total, "max_s": peak}
            for name, count, total, peak in self.hotspots()
        }

    def format_table(self, top: Optional[int] = None) -> str:
        """Human-readable hot-spot table (``repro profile`` output)."""
        rows = self.hotspots()
        if top is not None:
            rows = rows[:top]
        if not rows:
            return "no spans recorded\n"
        width = max(len("span"), max(len(name) for name, *_ in rows))
        lines = [
            f"{'span':<{width}}  {'count':>10}  {'total (s)':>10}  "
            f"{'mean (ms)':>10}  {'max (ms)':>10}",
            "-" * (width + 48),
        ]
        for name, count, total, peak in rows:
            mean_ms = 1000.0 * total / count if count else 0.0
            lines.append(
                f"{name:<{width}}  {count:>10}  {total:>10.3f}  "
                f"{mean_ms:>10.3f}  {peak * 1000.0:>10.3f}"
            )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        self.spans.clear()


#: The process-wide active profiler; ``None`` means profiling is off.
ACTIVE: Optional[SpanProfiler] = None


def enable() -> SpanProfiler:
    """Install (or return the already-active) process-wide profiler."""
    global ACTIVE
    if ACTIVE is None:
        ACTIVE = SpanProfiler()
    return ACTIVE


def disable() -> Optional[SpanProfiler]:
    """Remove the active profiler and return it (with its data)."""
    global ACTIVE
    profiler, ACTIVE = ACTIVE, None
    return profiler


def active() -> Optional[SpanProfiler]:
    return ACTIVE


@contextmanager
def span(name: str):
    """Context manager timing one span when profiling is on.

    For code where a ``with`` block is affordable; the kernel's innermost
    loops call :meth:`SpanProfiler.add` directly instead.
    """
    profiler = ACTIVE
    if profiler is None:
        yield
        return
    start = perf_counter()
    try:
        yield
    finally:
        profiler.add(name, perf_counter() - start)
