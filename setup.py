"""Setup shim for environments without the `wheel` package.

The project is configured through pyproject.toml; this file only exists so
``pip install -e . --no-use-pep517`` works in fully offline environments
where the PEP 517 editable build backend (which needs ``wheel``) is not
available.
"""

from setuptools import setup

setup()
