"""Structured logging: hierarchy, env-var level selection, quiet default."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs import log as obs_log


@pytest.fixture
def reconfigure():
    """Force a reconfiguration inside the test, restore defaults after."""

    def apply(level_name=None, monkeypatch=None, stream=None):
        if monkeypatch is not None:
            if level_name is None:
                monkeypatch.delenv(obs_log.LEVEL_ENV, raising=False)
            else:
                monkeypatch.setenv(obs_log.LEVEL_ENV, level_name)
        return obs_log.configure(stream=stream, force=True)

    yield apply
    # The monkeypatched env is gone by teardown-time of *this* fixture?
    # No — fixtures tear down LIFO, so restore explicitly from the real
    # environment to leave the session logger in its default state.
    obs_log.configure(force=True)


class TestHierarchy:
    def test_module_names_nest_under_repro(self):
        assert obs_log.get_logger("repro.sim.runner").name == "repro.sim.runner"
        assert obs_log.get_logger("tests.helper").name == "repro.tests.helper"
        assert obs_log.get_logger("repro").name == "repro"

    def test_root_does_not_propagate(self):
        root = obs_log.configure()
        assert root.propagate is False
        assert len(root.handlers) == 1


class TestLevels:
    def test_quiet_by_default(self, reconfigure, monkeypatch):
        stream = io.StringIO()
        reconfigure(None, monkeypatch, stream)
        log = obs_log.get_logger("repro.test_quiet")
        log.debug("hidden")
        log.info("hidden too")
        log.warning("visible")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "WARNING repro.test_quiet: visible" in output

    def test_env_var_lowers_threshold(self, reconfigure, monkeypatch):
        stream = io.StringIO()
        reconfigure("DEBUG", monkeypatch, stream)
        obs_log.get_logger("repro.test_debug").debug("now visible")
        assert "DEBUG repro.test_debug: now visible" in stream.getvalue()

    def test_invalid_level_falls_back_to_default(self, reconfigure, monkeypatch):
        root = reconfigure("chatty-please", monkeypatch)
        assert root.level == logging.WARNING

    def test_configure_is_once_unless_forced(self):
        first = obs_log.configure()
        handler = first.handlers[0]
        again = obs_log.configure(stream=io.StringIO())  # ignored: configured
        assert again.handlers[0] is handler


def test_runner_logs_batch_planning(reconfigure, monkeypatch):
    """The engine layers actually emit through this logger at DEBUG."""
    from repro.sim.runner import ExperimentRunner

    from tests.conftest import small_system, small_workload

    stream = io.StringIO()
    reconfigure("DEBUG", monkeypatch, stream)
    runner = ExperimentRunner(cycles=300, warmup=50)
    runner.simulate(small_system("refab"), small_workload())
    output = stream.getvalue()
    assert "repro.sim.runner" in output
    assert "repro.engine.jobs" in output
    assert "simulating" in output
