"""Tests for the serial/parallel executors and the engine-backed runner."""

import pytest

from repro.engine.executor import ParallelExecutor, SerialExecutor
from repro.engine.jobs import SimulationJob
from repro.engine.progress import ProgressCollector
from repro.engine.store import InMemoryStore
from repro.sim.runner import ExperimentRunner

from tests.conftest import small_system, small_workload

CYCLES = 1200
WARMUP = 200

MECHANISMS = ("refab", "refpb", "dsarp", "none")


def job_batch() -> list[SimulationJob]:
    return [
        SimulationJob(
            config=small_system(mechanism),
            workload=small_workload(),
            cycles=CYCLES,
            warmup=WARMUP,
            seed=0,
        )
        for mechanism in MECHANISMS
    ]


class TestSerialExecutor:
    def test_results_in_batch_order(self):
        results = SerialExecutor().run(job_batch())
        assert [result.mechanism for result in results] == list(MECHANISMS)

    def test_duplicate_jobs_simulated_once(self):
        executor = SerialExecutor()
        jobs = job_batch()
        results = executor.run(jobs + jobs)
        assert executor.stats.simulated == len(jobs)
        assert executor.stats.jobs == 2 * len(jobs)
        # Duplicates resolve to the same object.
        for first, second in zip(results[: len(jobs)], results[len(jobs) :]):
            assert second is first

    def test_store_consulted_and_warmed(self):
        store = InMemoryStore()
        first = SerialExecutor()
        first.run(job_batch(), store=store)
        assert first.stats.simulated == len(MECHANISMS)
        assert len(store) == len(MECHANISMS)

        second = SerialExecutor()
        results = second.run(job_batch(), store=store)
        assert second.stats.simulated == 0
        assert second.stats.store_hits == len(MECHANISMS)
        assert [result.mechanism for result in results] == list(MECHANISMS)

    def test_store_warmed_incrementally(self):
        # Each completed job must be persisted immediately, so an
        # interrupted batch still warms the store with finished work.
        store = InMemoryStore()
        jobs = job_batch()

        class StopAfterFirst(Exception):
            pass

        def explode_after_first(event):
            if event.index >= 1:
                raise StopAfterFirst()

        with pytest.raises(StopAfterFirst):
            SerialExecutor().run(jobs, store=store, progress=explode_after_first)
        assert len(store) == 2  # the two jobs that completed before the abort

    def test_progress_events(self):
        collector = ProgressCollector()
        store = InMemoryStore()
        SerialExecutor().run(job_batch(), store=store, progress=collector)
        assert collector.simulated == len(MECHANISMS)
        SerialExecutor().run(job_batch(), store=store, progress=collector)
        assert collector.store_hits == len(MECHANISMS)
        assert {event.total for event in collector.events} == {len(MECHANISMS)}


class TestParallelExecutor:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_to_serial(self, workers):
        serial = SerialExecutor().run(job_batch())
        parallel = ParallelExecutor(workers=workers).run(job_batch())
        assert parallel == serial

    def test_store_warmed_by_parallel_run(self):
        store = InMemoryStore()
        executor = ParallelExecutor(workers=2)
        executor.run(job_batch(), store=store)
        assert executor.stats.simulated == len(MECHANISMS)
        assert len(store) == len(MECHANISMS)

    def test_shard_stats_after_clean_run(self):
        executor = ParallelExecutor(workers=2)
        executor.run(job_batch())
        # The batch flowed through the shard planner, and a clean run
        # records no degradation of any kind.
        assert executor.stats.shards == len(MECHANISMS)
        assert executor.stats.retries == 0
        assert executor.stats.timeouts == 0
        assert executor.stats.worker_failures == 0

    def test_progress_events_carry_attempts(self):
        collector = ProgressCollector()
        ParallelExecutor(workers=2).run(job_batch(), progress=collector)
        assert {event.attempts for event in collector.events} == {1}


class TestRunnerEngineIntegration:
    def runner(self, **kwargs) -> ExperimentRunner:
        kwargs.setdefault("cycles", CYCLES)
        kwargs.setdefault("warmup", WARMUP)
        return ExperimentRunner(**kwargs)

    def test_simulate_many_matches_simulate(self):
        pairs = [
            (small_system(mechanism), small_workload()) for mechanism in MECHANISMS
        ]
        batched = self.runner().simulate_many(pairs)
        single = [
            self.runner().simulate(config, workload) for config, workload in pairs
        ]
        assert batched == single

    def test_compare_many_matches_compare(self):
        workloads = [
            small_workload(("stream_copy", "random_access")),
            small_workload(("mcf_like", "gcc_like")),
        ]
        config = small_system("refab")
        batched = self.runner().compare_many(workloads, config, ("refab", "none"))
        for workload, comparison in zip(workloads, batched):
            expected = self.runner().compare(workload, config, ("refab", "none"))
            assert comparison.workload == workload.name
            assert comparison.weighted_speedup == expected.weighted_speedup

    def test_parallel_runner_matches_serial_runner(self):
        workloads = [
            small_workload(("stream_copy", "random_access")),
            small_workload(("mcf_like", "gcc_like")),
        ]
        config = small_system("refab")
        serial = self.runner().compare_many(workloads, config, MECHANISMS)
        parallel = self.runner(executor=ParallelExecutor(workers=2)).compare_many(
            workloads, config, MECHANISMS
        )
        for a, b in zip(serial, parallel):
            assert a.weighted_speedup == b.weighted_speedup
            assert a.energy_per_access_nj == b.energy_per_access_nj

    def test_shared_store_avoids_resimulation(self):
        store = InMemoryStore()
        workload = small_workload()
        config = small_system("refab")

        first = self.runner(store=store)
        first.compare(workload, config, MECHANISMS)
        simulated_once = first.executor.stats.simulated
        assert simulated_once > 0

        # A brand-new runner (fresh in-memory cache, as in a new process)
        # resolves everything from the shared store.
        second = self.runner(store=store)
        second.compare(workload, config, MECHANISMS)
        assert second.executor.stats.simulated == 0
        assert second.executor.stats.store_hits == simulated_once
        assert second.summary()["simulated"] == 0

    def test_progress_events_share_one_index_space(self):
        # Memory hits and executor events must use the same index/total
        # numbering (the full planned batch), or [i/total] lines lie.
        collector = ProgressCollector()
        runner = self.runner(progress=collector)
        refab, refpb = small_system("refab"), small_system("refpb")
        workload = small_workload()
        runner.simulate(refab, workload)
        collector.events.clear()

        # Batch of 3: a memory hit, a fresh job, and an in-batch duplicate.
        runner.simulate_many([(refab, workload), (refpb, workload), (refpb, workload)])
        assert {event.total for event in collector.events} == {3}
        assert sorted(event.index for event in collector.events) == [0, 1, 2]
        assert collector.simulated == 1
        assert collector.memory_hits == 2

    def test_summary_counts_memory_hits(self):
        runner = self.runner()
        config, workload = small_system("refab"), small_workload()
        runner.simulate(config, workload)
        runner.simulate(config, workload)
        summary = runner.summary()
        assert summary["simulated"] == 1
        assert summary["memory_hits"] == 1
        assert summary["jobs"] == 2
