"""Unit tests for DRAM device command legality and state updates."""

import pytest

from repro.config.dram_config import DRAMConfig
from repro.dram.commands import Command, CommandType
from repro.dram.device import DRAMDevice
from repro.dram.power_integrity import scaled_tfaw_trrd


def make_device(sarp: bool = False, density: int = 8) -> DRAMDevice:
    return DRAMDevice(DRAMConfig.for_density(density), sarp_enabled=sarp)


def act(channel=0, rank=0, bank=0, row=0):
    return Command(kind=CommandType.ACT, channel=channel, rank=rank, bank=bank, row=row)


def rd(channel=0, rank=0, bank=0, row=0, auto=True):
    kind = CommandType.RDA if auto else CommandType.RD
    return Command(kind=kind, channel=channel, rank=rank, bank=bank, row=row)


def wr(channel=0, rank=0, bank=0, row=0, auto=True):
    kind = CommandType.WRA if auto else CommandType.WR
    return Command(kind=kind, channel=channel, rank=rank, bank=bank, row=row)


def refab(channel=0, rank=0):
    return Command(kind=CommandType.REFAB, channel=channel, rank=rank)


def refpb(channel=0, rank=0, bank=0):
    return Command(kind=CommandType.REFPB, channel=channel, rank=rank, bank=bank)


class TestActivateLegality:
    def test_activate_then_read_sequence(self):
        device = make_device()
        t = device.timings
        assert device.can_issue(act(row=5), 0)
        device.issue(act(row=5), 0)
        # Reads must wait tRCD.
        assert not device.can_issue(rd(row=5), t.tRCD - 1)
        assert device.can_issue(rd(row=5), t.tRCD)
        done = device.issue(rd(row=5), t.tRCD)
        assert done == t.tRCD + t.tCL + t.tBL

    def test_activate_rejected_when_row_open(self):
        device = make_device()
        device.issue(act(row=5), 0)
        assert not device.can_issue(act(row=6), 100)

    def test_column_command_requires_matching_row(self):
        device = make_device()
        device.issue(act(row=5), 0)
        assert not device.can_issue(rd(row=6), 50)

    def test_trrd_between_banks(self):
        device = make_device()
        t = device.timings
        device.issue(act(bank=0, row=1), 0)
        assert not device.can_issue(act(bank=1, row=1), t.tRRD - 1)
        assert device.can_issue(act(bank=1, row=1), t.tRRD)

    def test_tfaw_limits_activation_burst(self):
        device = make_device()
        t = device.timings
        for i in range(4):
            device.issue(act(bank=i, row=1), i * t.tRRD)
        fifth_earliest = 4 * t.tRRD
        assert not device.can_issue(act(bank=4, row=1), fifth_earliest)
        assert device.can_issue(act(bank=4, row=1), t.tFAW)

    def test_different_ranks_independent_tfaw(self):
        device = make_device()
        t = device.timings
        for i in range(4):
            device.issue(act(rank=0, bank=i, row=1), i * t.tRRD)
        # The other rank is unconstrained by rank 0's activation history.
        assert device.can_issue(act(rank=1, bank=0, row=1), 4 * t.tRRD)

    def test_illegal_issue_raises(self):
        device = make_device()
        with pytest.raises(ValueError):
            device.issue(rd(row=5), 0)


class TestPrechargeAndAutoPrecharge:
    def test_autoprecharge_closes_row(self):
        device = make_device()
        t = device.timings
        device.issue(act(row=5), 0)
        device.issue(rd(row=5, auto=True), t.tRCD)
        assert device.bank(0, 0, 0).open_row is None
        # Re-activating the same bank must respect the precharge latency.
        reopen = t.tRCD + t.tRTP + t.tRP
        assert not device.can_issue(act(row=7), reopen - 1)

    def test_explicit_precharge_waits_for_tras(self):
        device = make_device()
        t = device.timings
        device.issue(act(row=5), 0)
        pre = Command(kind=CommandType.PRE, channel=0, rank=0, bank=0)
        assert not device.can_issue(pre, t.tRAS - 1)
        assert device.can_issue(pre, t.tRAS)
        device.issue(pre, t.tRAS)
        assert device.bank(0, 0, 0).open_row is None


class TestAllBankRefresh:
    def test_refab_blocks_rank_for_trfc(self):
        device = make_device()
        t = device.timings
        assert device.can_issue(refab(), 0)
        device.issue(refab(), 0)
        assert not device.can_issue(act(row=1), t.tRFCab - 1)
        assert device.can_issue(act(row=1), t.tRFCab)
        assert device.stats.all_bank_refreshes == 1

    def test_refab_requires_all_banks_precharged(self):
        device = make_device()
        device.issue(act(bank=3, row=5), 0)
        assert not device.can_issue(refab(), 10)

    def test_refab_other_rank_still_accessible(self):
        device = make_device()
        device.issue(refab(rank=0), 0)
        assert device.can_issue(act(rank=1, row=1), 10)

    def test_refab_refreshes_every_bank(self):
        device = make_device()
        device.issue(refab(), 0)
        counts = device.refresh_counts_per_bank()
        for (ch, rk, bk), count in counts.items():
            expected = 1 if (ch == 0 and rk == 0) else 0
            assert count == expected

    def test_duration_override(self):
        device = make_device()
        command = refab()
        command.duration = 50
        done = device.issue(command, 0)
        assert done == 50
        assert device.can_issue(act(row=1), 50)


class TestPerBankRefresh:
    def test_refpb_blocks_only_target_bank(self):
        device = make_device()
        t = device.timings
        device.issue(refpb(bank=2), 0)
        assert not device.can_issue(act(bank=2, row=1), 10)
        assert device.can_issue(act(bank=3, row=1), 10)
        assert device.can_issue(act(bank=2, row=1), t.tRFCpb)

    def test_refpb_cannot_overlap_within_rank(self):
        device = make_device()
        t = device.timings
        device.issue(refpb(bank=0), 0)
        assert not device.can_issue(refpb(bank=1), t.tRFCpb - 1)
        assert device.can_issue(refpb(bank=1), t.tRFCpb)

    def test_refpb_allowed_in_other_rank_concurrently(self):
        device = make_device()
        device.issue(refpb(rank=0, bank=0), 0)
        assert device.can_issue(refpb(rank=1, bank=0), 1)

    def test_refpb_requires_precharged_bank(self):
        device = make_device()
        device.issue(act(bank=0, row=5), 0)
        assert not device.can_issue(refpb(bank=0), 10)

    def test_refpb_latency_shorter_than_refab(self):
        device = make_device()
        assert device.timings.tRFCpb < device.timings.tRFCab


class TestSARP:
    def test_sarp_allows_access_to_other_subarray_during_refresh(self):
        device = make_device(sarp=True)
        bank = device.bank(0, 0, 0)
        device.issue(refpb(bank=0), 0)
        refreshing = bank.refreshing_subarray
        other_subarray_row = (
            (refreshing + 1) % bank.subarrays_per_bank
        ) * bank.rows_per_subarray
        conflicting_row = refreshing * bank.rows_per_subarray
        assert device.can_issue(act(bank=0, row=other_subarray_row), 10)
        assert not device.can_issue(act(bank=0, row=conflicting_row), 10)

    def test_without_sarp_refreshing_bank_is_unavailable(self):
        device = make_device(sarp=False)
        device.issue(refpb(bank=0), 0)
        assert not device.can_issue(act(bank=0, row=60000), 10)

    def test_sarp_allows_access_during_all_bank_refresh(self):
        device = make_device(sarp=True)
        device.issue(refab(), 0)
        bank = device.bank(0, 0, 0)
        other_row = (
            (bank.refreshing_subarray + 1) % bank.subarrays_per_bank
        ) * bank.rows_per_subarray
        assert device.can_issue(act(bank=0, row=other_row), 10)

    def test_sarp_inflates_tfaw_during_refresh(self):
        device = make_device(sarp=True)
        t = device.timings
        device.issue(refab(), 0)
        bank = device.bank(0, 0, 0)
        safe_row = (
            (bank.refreshing_subarray + 1) % bank.subarrays_per_bank
        ) * bank.rows_per_subarray
        scaled_tfaw, scaled_trrd = scaled_tfaw_trrd(t.tFAW, t.tRRD, all_bank=True)
        # Issue activates as fast as the scaled tRRD allows.
        cycle = 0
        for i in range(4):
            cmd = act(bank=i, row=safe_row)
            while not device.can_issue(cmd, cycle):
                cycle += 1
            device.issue(cmd, cycle)
        fifth = act(bank=4, row=safe_row)
        # The fifth activate must wait for the *scaled* four-activate window.
        assert not device.can_issue(fifth, cycle + scaled_trrd)

    def test_subarray_conflict_recording(self):
        device = make_device(sarp=True)
        device.issue(refpb(bank=0), 0)
        bank = device.bank(0, 0, 0)
        conflicting_row = bank.refreshing_subarray * bank.rows_per_subarray
        device.record_subarray_conflict(act(bank=0, row=conflicting_row))
        assert device.stats.subarray_conflicts == 1


class TestDataBusSharing:
    def test_reads_from_different_banks_share_channel_bus(self):
        device = make_device()
        t = device.timings
        device.issue(act(bank=0, row=1), 0)
        device.issue(act(bank=1, row=1), t.tRRD)
        first_rd_cycle = t.tRCD
        device.issue(rd(bank=0, row=1), first_rd_cycle)
        # The second read cannot be issued until the bus frees a burst later.
        assert not device.can_issue(rd(bank=1, row=1), first_rd_cycle + 1)
        assert device.can_issue(rd(bank=1, row=1), first_rd_cycle + t.tBL)

    def test_channels_have_independent_buses(self):
        device = make_device()
        t = device.timings
        device.issue(act(channel=0, row=1), 0)
        device.issue(act(channel=1, row=1), 0)
        device.issue(rd(channel=0, row=1), t.tRCD)
        assert device.can_issue(rd(channel=1, row=1), t.tRCD)
