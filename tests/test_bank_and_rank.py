"""Unit tests for the bank state machine and rank activation constraints."""

import pytest

from repro.config.dram_config import DRAMTimings
from repro.dram.bank import Bank
from repro.dram.rank import Rank


def make_bank(index: int = 0, subarrays: int = 8, rows: int = 65536) -> Bank:
    return Bank(
        index=index,
        rows=rows,
        subarrays_per_bank=subarrays,
        rows_per_refresh=8,
    )


def make_rank(num_banks: int = 8) -> Rank:
    return Rank(index=0, banks=[make_bank(i) for i in range(num_banks)])


@pytest.fixture
def timings():
    return DRAMTimings()


class TestBankActivate:
    def test_activate_opens_row_and_sets_gates(self, timings):
        bank = make_bank()
        bank.do_activate(100, row=42, timings=timings)
        assert bank.open_row == 42
        assert bank.t_rd == 100 + timings.tRCD
        assert bank.t_wr == 100 + timings.tRCD
        assert bank.t_pre >= 100 + timings.tRAS
        assert bank.t_act >= 100 + timings.tRC
        assert bank.activations == 1

    def test_activate_records_subarray(self, timings):
        bank = make_bank()
        row_in_subarray_3 = 3 * bank.rows_per_subarray + 5
        bank.do_activate(0, row=row_in_subarray_3, timings=timings)
        assert bank.subarrays[3].activations == 1


class TestBankColumnCommands:
    def test_read_returns_burst_end(self, timings):
        bank = make_bank()
        bank.do_activate(0, row=1, timings=timings)
        burst_end = bank.do_read(20, timings, autoprecharge=False)
        assert burst_end == 20 + timings.tCL + timings.tBL
        assert bank.open_row == 1
        assert bank.reads == 1

    def test_read_with_autoprecharge_closes_row(self, timings):
        bank = make_bank()
        bank.do_activate(0, row=1, timings=timings)
        bank.do_read(20, timings, autoprecharge=True)
        assert bank.open_row is None
        assert bank.t_act >= 20 + timings.tRTP + timings.tRP
        assert bank.precharges == 1

    def test_write_sets_longer_precharge_gate_than_read(self, timings):
        read_bank = make_bank()
        write_bank = make_bank()
        read_bank.do_activate(0, row=1, timings=timings)
        write_bank.do_activate(0, row=1, timings=timings)
        read_bank.do_read(30, timings, autoprecharge=False)
        write_bank.do_write(30, timings, autoprecharge=False)
        assert write_bank.t_pre > read_bank.t_pre

    def test_explicit_precharge(self, timings):
        bank = make_bank()
        bank.do_activate(0, row=7, timings=timings)
        bank.do_precharge(50, timings)
        assert bank.open_row is None
        assert bank.t_act >= 50 + timings.tRP


class TestBankRefresh:
    def test_refresh_marks_subarray_and_advances_counter(self):
        bank = make_bank()
        assert bank.refresh_row_counter == 0
        bank.do_refresh(100, duration=200, sarp_enabled=False)
        assert bank.is_refreshing(150)
        assert not bank.is_refreshing(300)
        assert bank.refreshing_subarray == 0
        assert bank.refresh_row_counter == 8
        assert bank.refreshes == 1
        assert bank.rows_refreshed == 8
        # Without SARP the bank cannot activate until the refresh finishes.
        assert bank.t_act >= 300

    def test_refresh_with_sarp_does_not_block_bank(self):
        bank = make_bank()
        bank.do_refresh(100, duration=200, sarp_enabled=True)
        assert bank.t_act < 300

    def test_refresh_row_counter_wraps(self):
        bank = make_bank(rows=64)
        bank.rows_per_refresh = 32
        bank.do_refresh(0, duration=10, sarp_enabled=False)
        bank.do_refresh(20, duration=10, sarp_enabled=False)
        assert bank.refresh_row_counter == 0

    def test_refresh_conflict_detection(self):
        bank = make_bank()
        bank.do_refresh(0, duration=100, sarp_enabled=True)
        refreshing = bank.refreshing_subarray
        row_in_refreshing = refreshing * bank.rows_per_subarray
        row_elsewhere = (
            (refreshing + 1) % bank.subarrays_per_bank
        ) * bank.rows_per_subarray
        assert bank.refresh_conflicts_with(50, row_in_refreshing)
        assert not bank.refresh_conflicts_with(50, row_elsewhere)
        # After the refresh finishes there is no conflict.
        assert not bank.refresh_conflicts_with(150, row_in_refreshing)

    def test_end_refresh_clears_marker(self):
        bank = make_bank()
        bank.do_refresh(0, duration=100, sarp_enabled=True)
        bank.end_refresh_if_done(50)
        assert bank.refreshing_subarray is not None
        bank.end_refresh_if_done(100)
        assert bank.refreshing_subarray is None

    def test_is_idle(self, timings):
        bank = make_bank()
        assert bank.is_idle(0)
        bank.do_activate(0, row=1, timings=timings)
        assert not bank.is_idle(10)
        bank.do_precharge(40, timings)
        assert bank.is_idle(50)

    def test_record_subarray_conflict(self):
        bank = make_bank()
        bank.record_subarray_conflict(row=0)
        assert bank.subarrays[0].refresh_conflicts == 1


class TestRankActivationConstraints:
    def test_trrd_enforced(self):
        rank = make_rank()
        assert rank.can_activate(0, trrd=4, tfaw=20)
        rank.record_activate(0, trrd=4)
        assert not rank.can_activate(3, trrd=4, tfaw=20)
        assert rank.can_activate(4, trrd=4, tfaw=20)

    def test_tfaw_enforced(self):
        rank = make_rank()
        for cycle in (0, 4, 8, 12):
            assert rank.can_activate(cycle, trrd=4, tfaw=20)
            rank.record_activate(cycle, trrd=4)
        # A fifth activate must wait until the first leaves the 20-cycle window.
        assert not rank.can_activate(16, trrd=4, tfaw=20)
        assert rank.can_activate(20, trrd=4, tfaw=20)

    def test_refresh_markers(self):
        rank = make_rank()
        rank.start_all_bank_refresh(0, duration=100, sarp_enabled=False)
        assert rank.is_under_all_bank_refresh(50)
        assert rank.is_refreshing(50)
        assert not rank.is_under_all_bank_refresh(100)
        assert rank.refab_count == 1
        for bank in rank.banks:
            assert bank.refreshes == 1

    def test_per_bank_refresh_only_touches_one_bank(self):
        rank = make_rank()
        rank.start_per_bank_refresh(0, bank_index=3, duration=100, sarp_enabled=False)
        assert rank.is_under_per_bank_refresh(50)
        assert rank.banks[3].is_refreshing(50)
        assert not rank.banks[0].is_refreshing(50)
        assert rank.refpb_count == 1

    def test_all_banks_precharged(self, timings):
        rank = make_rank()
        assert rank.all_banks_precharged(0)
        rank.banks[2].do_activate(0, row=5, timings=timings)
        assert not rank.all_banks_precharged(10)
        assert rank.open_banks() == [rank.banks[2]]
