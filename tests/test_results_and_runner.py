"""Tests for result records, the simulator and the experiment runner."""

import pytest

from repro.sim.results import CoreResult, MechanismComparison, SimulationResult, WorkloadResult
from repro.sim.runner import ExperimentRunner, run_mechanism_comparison, run_workload
from repro.sim.simulator import Simulator
from repro.workloads.benchmark_suite import get_benchmark
from repro.workloads.mixes import make_workload

from tests.conftest import small_system, small_workload


def make_simulation(workload="wl", mechanism="refab", ipcs=(1.0, 2.0), energy=10.0):
    cores = [
        CoreResult(
            core_id=i,
            benchmark=f"b{i}",
            instructions=1000,
            ipc=ipc,
            mpki=10.0,
            dram_reads=100,
            dram_writes=50,
            stall_cycles=10,
        )
        for i, ipc in enumerate(ipcs)
    ]
    return SimulationResult(
        workload=workload,
        mechanism=mechanism,
        density_gb=8,
        cycles=1000,
        warmup_cycles=100,
        cores=cores,
        device_stats={"reads": 200, "writes": 100},
        controller_stats={},
        refresh_stats={},
        energy={"energy_per_access_nj": energy},
    )


class TestResultRecords:
    def test_simulation_result_properties(self):
        result = make_simulation()
        assert result.ipcs == [1.0, 2.0]
        assert result.total_instructions == 2000
        assert result.reads_serviced == 200
        assert result.energy_per_access_nj == 10.0

    def test_workload_result_metrics(self):
        result = WorkloadResult(simulation=make_simulation(), alone_ipcs=[2.0, 2.0])
        assert result.weighted_speedup == pytest.approx(0.5 + 1.0)
        assert result.maximum_slowdown == pytest.approx(2.0)
        assert 0 < result.harmonic_speedup <= 1.0
        assert set(result.as_dict()) >= {"workload", "mechanism", "weighted_speedup"}

    def test_mechanism_comparison_normalization(self):
        comparison = MechanismComparison(workload="wl", density_gb=8)
        comparison.results["refab"] = WorkloadResult(
            make_simulation(ipcs=(1.0, 1.0)),
            [1.0, 1.0],
        )
        comparison.results["dsarp"] = WorkloadResult(
            make_simulation(ipcs=(1.2, 1.2)),
            [1.0, 1.0],
        )
        normalized = comparison.normalized_to("refab")
        assert normalized["refab"] == pytest.approx(1.0)
        assert normalized["dsarp"] == pytest.approx(1.2)
        assert comparison.improvement_percent("dsarp", "refab") == pytest.approx(20.0)
        with pytest.raises(KeyError):
            comparison.normalized_to("missing")


class TestSimulator:
    def test_result_structure(self, refab_small_result):
        result = refab_small_result
        assert result.mechanism == "refab"
        assert result.density_gb == 32
        assert len(result.cores) == 2
        assert result.cycles == 6000
        assert all(core.instructions > 0 for core in result.cores)
        assert result.device_stats["reads"] > 0
        assert result.energy_per_access_nj > 0

    def test_invalid_cycles_rejected(self):
        simulator = Simulator(small_system("none"), small_workload())
        with pytest.raises(ValueError):
            simulator.run(0)

    def test_warmup_resets_statistics(self):
        config = small_system("none")
        workload = small_workload()
        with_warmup = Simulator(config, workload).run(2000, warmup=2000)
        without = Simulator(config, workload).run(4000, warmup=0)
        # The measured window is shorter, so fewer instructions are counted.
        assert with_warmup.total_instructions < without.total_instructions
        assert with_warmup.cycles == 2000

    def test_deterministic_given_same_seed(self):
        config = small_system("refpb")
        workload = small_workload()
        a = Simulator(config, workload, seed=1).run(3000, warmup=500)
        b = Simulator(config, workload, seed=1).run(3000, warmup=500)
        assert a.ipcs == b.ipcs
        assert a.device_stats == b.device_stats


class TestExperimentRunner:
    def test_simulation_cache_hit(self):
        runner = ExperimentRunner(cycles=2000, warmup=500)
        config = small_system("refab")
        workload = small_workload()
        first = runner.simulate(config, workload)
        assert runner.cache_size() == 1
        second = runner.simulate(config, workload)
        assert second is first
        assert runner.cache_size() == 1

    def test_alone_ipc_cached_across_densities(self):
        runner = ExperimentRunner(cycles=1500, warmup=300)
        benchmark = get_benchmark("stream_copy")
        ipc_8 = runner.alone_ipc(benchmark, small_system("refab", density_gb=8))
        before = runner.cache_size()
        ipc_32 = runner.alone_ipc(benchmark, small_system("dsarp", density_gb=32))
        # The alone run is pinned to a refresh-free 8 Gb system, so the
        # second query reuses the cached simulation.
        assert runner.cache_size() == before
        assert ipc_8 == ipc_32 > 0

    def test_alone_ipc_key_includes_seed(self):
        # Regression: the alone-IPC cache used to omit the seed from its
        # key even though the underlying simulation is keyed on it, so a
        # runner whose seed changed (or runners sharing a cache) could
        # serve a stale alone IPC computed under a different seed.
        runner = ExperimentRunner(cycles=1500, warmup=300, seed=0)
        benchmark = get_benchmark("stream_copy")
        config = small_system("refab")
        runner.alone_ipc(benchmark, config)
        before = runner.cache_size()
        runner.seed = 1
        runner.alone_ipc(benchmark, config)
        # A different seed is a different simulation, not a cache hit.
        assert runner.cache_size() == before + 1

    def test_run_workload_produces_metrics(self):
        runner = ExperimentRunner(cycles=2000, warmup=500)
        workload = small_workload()
        result = runner.run_workload(workload, small_system("refab"))
        assert 0 < result.weighted_speedup <= workload.num_cores
        assert result.mechanism == "refab"

    def test_compare_contains_all_mechanisms(self):
        runner = ExperimentRunner(cycles=2000, warmup=500)
        workload = small_workload()
        comparison = runner.compare(
            workload, small_system("refab"), ("refab", "none")
        )
        assert set(comparison.weighted_speedup) == {"refab", "none"}
        assert set(comparison.energy_per_access_nj) == {"refab", "none"}

    def test_module_level_helpers(self):
        workload = make_workload([get_benchmark("mcf_like"), get_benchmark("gcc_like")])
        result = run_workload(
            workload,
            density_gb=8,
            mechanism="refab",
            cycles=1500,
            warmup=300,
        )
        assert result.weighted_speedup > 0
        comparison = run_mechanism_comparison(
            density_gb=8,
            mechanisms=("refab", "none"),
            workload=workload,
            cycles=1500,
            warmup=300,
        )
        assert set(comparison.results) == {"refab", "none"}
