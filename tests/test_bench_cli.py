"""Tests for the ``repro bench`` command-line interface."""

import io
import json

import pytest

from repro.bench import all_specs
from repro.cli import main


def run_cli(argv):
    stdout, stderr = io.StringIO(), io.StringIO()
    code = main(argv, stdout=stdout, stderr=stderr)
    return code, stdout.getvalue(), stderr.getvalue()


class TestBenchList:
    def test_lists_every_registered_benchmark_with_tier(self):
        code, out, _ = run_cli(["bench", "list"])
        assert code == 0
        for spec in all_specs():
            assert spec.name in out
        assert "[quick]" in out
        assert "[full " in out


class TestBenchRun:
    def test_run_only_writes_schema_valid_document(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        json_path = tmp_path / "BENCH_test.json"
        code, out, err = run_cli(
            ["bench", "run", "--only", "figure05_trfc_trend", "--json", str(json_path)]
        )
        assert code == 0, err
        assert "1 benchmarks run, 0 failed" in out
        data = json.loads(json_path.read_text())
        assert data["schema"] == "repro.bench"
        assert data["schema_version"] == 1
        assert [b["name"] for b in data["benchmarks"]] == ["figure05_trfc_trend"]
        assert data["benchmarks"][0]["checks_passed"] is True
        # The text artifact landed in the bench dir, not the repo tree.
        assert (tmp_path / "figure05_trfc_trend.txt").exists()

    def test_default_json_path_is_dated_in_bench_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        code, out, _ = run_cli(["bench", "run", "--only", "figure05_trfc_trend"])
        assert code == 0
        written = list(tmp_path.glob("BENCH_*.json"))
        assert len(written) == 1
        assert str(written[0]) in out

    def test_repeated_only_is_deduplicated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        json_path = tmp_path / "deduped.json"
        code, _, _ = run_cli(
            [
                "bench",
                "run",
                "--only",
                "figure05_trfc_trend",
                "--only",
                "figure05_trfc_trend",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        data = json.loads(json_path.read_text())
        assert [b["name"] for b in data["benchmarks"]] == ["figure05_trfc_trend"]
        # ... so the document stays loadable by compare.
        code, _, _ = run_cli(["bench", "compare", str(json_path), str(json_path)])
        assert code == 0

    def test_unknown_benchmark_is_a_usage_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        code, _, err = run_cli(["bench", "run", "--only", "figure99"])
        assert code == 2
        assert "unknown benchmark" in err


class TestBenchCompare:
    @pytest.fixture()
    def current_document(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        json_path = tmp_path / "current.json"
        code, _, err = run_cli(
            ["bench", "run", "--only", "figure05_trfc_trend", "--json", str(json_path)]
        )
        assert code == 0, err
        return json_path

    def test_self_compare_exits_zero(self, current_document):
        code, out, _ = run_cli(
            ["bench", "compare", str(current_document), str(current_document)]
        )
        assert code == 0
        assert "PASS" in out

    def test_synthetic_slowdown_exits_nonzero(self, tmp_path, current_document):
        slowed = json.loads(current_document.read_text())
        for bench in slowed["benchmarks"]:
            bench["wall_clock_s"] = bench["wall_clock_s"] * 10 + 1.0
        slowed_path = tmp_path / "slowed.json"
        slowed_path.write_text(json.dumps(slowed))
        code, out, _ = run_cli(
            [
                "bench",
                "compare",
                str(current_document),
                str(slowed_path),
                "--max-regression",
                "25%",
            ]
        )
        assert code == 1
        assert "REGRESSION" in out

    def test_fidelity_drift_exits_nonzero(self, tmp_path, current_document):
        drifted = json.loads(current_document.read_text())
        name, value = next(iter(drifted["benchmarks"][0]["metrics"].items()))
        drifted["benchmarks"][0]["metrics"][name] = value + 1.0
        drifted_path = tmp_path / "drifted.json"
        drifted_path.write_text(json.dumps(drifted))
        code, out, _ = run_cli(
            ["bench", "compare", str(current_document), str(drifted_path)]
        )
        assert code == 1
        assert "FIDELITY" in out

    def test_schema_mismatch_is_a_usage_error(self, tmp_path, current_document):
        migrated = json.loads(current_document.read_text())
        migrated["schema_version"] = 99
        migrated_path = tmp_path / "migrated.json"
        migrated_path.write_text(json.dumps(migrated))
        code, _, err = run_cli(
            ["bench", "compare", str(current_document), str(migrated_path)]
        )
        assert code == 2
        assert "schema version mismatch" in err

    def test_missing_file_is_a_usage_error(self, tmp_path, current_document):
        code, _, err = run_cli(
            ["bench", "compare", str(current_document), str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "error" in err

    def test_report_file_written(self, tmp_path, current_document):
        report = tmp_path / "deep" / "report.md"
        code, out, _ = run_cli(
            [
                "bench",
                "compare",
                str(current_document),
                str(current_document),
                "--report",
                str(report),
            ]
        )
        assert code == 0
        assert report.read_text() == out

    def test_bare_number_above_one_is_rejected_as_ambiguous(self, current_document):
        # `--max-regression 25` almost certainly means 25%; refusing beats
        # silently installing a 2500% threshold that disables the gate.
        with pytest.raises(SystemExit):
            run_cli(
                [
                    "bench",
                    "compare",
                    str(current_document),
                    str(current_document),
                    "--max-regression",
                    "25",
                ]
            )

    def test_percentage_threshold_parsing(self, current_document):
        for flag in ("25%", "0.25"):
            code, _, _ = run_cli(
                [
                    "bench",
                    "compare",
                    str(current_document),
                    str(current_document),
                    "--max-regression",
                    flag,
                ]
            )
            assert code == 0
        with pytest.raises(SystemExit):
            run_cli(
                [
                    "bench",
                    "compare",
                    str(current_document),
                    str(current_document),
                    "--max-regression",
                    "fast",
                ]
            )
