"""Trend reporter: trajectories, drift flagging and the history helper.

All documents here are synthetic (no simulation): the drift verdict must
reuse the compare gate's exact semantics — wall-clock regressions beyond
the threshold, any fidelity drift, missing benchmarks — and the
``drift gate:`` line plus :data:`DRIFT_MARKER` must be grep-able from
the CLI output, which is what the CI report-smoke step greps.
"""

from __future__ import annotations

import io

import pytest

from repro.bench.run import BenchDocument, BenchRecord, append_history
from repro.cli import main
from repro.report.trend import (
    DRIFT_MARKER,
    TrendError,
    build_trend_report,
    load_history,
    write_trend_report,
)


def invoke(argv):
    stdout, stderr = io.StringIO(), io.StringIO()
    code = main(argv, stdout=stdout, stderr=stderr)
    return code, stdout.getvalue(), stderr.getvalue()


def make_document(stamp, wall_a=1.0, metric_a=5.0, include_b=True):
    benchmarks = [
        BenchRecord(
            name="bench_a", tier="quick", wall_clock_s=wall_a,
            metrics={"fidelity": metric_a},
        )
    ]
    if include_b:
        benchmarks.append(
            BenchRecord(name="bench_b", tier="quick", wall_clock_s=0.5)
        )
    return BenchDocument(
        tier="quick", created_utc=stamp, environment={}, benchmarks=benchmarks
    )


@pytest.fixture()
def history(tmp_path):
    directory = tmp_path / "history"
    append_history(directory, make_document("2026-08-01T10:00:00Z"))
    append_history(directory, make_document("2026-08-02T10:00:00Z", wall_a=1.02))
    return directory


class TestHistoryHelper:
    def test_filenames_sort_chronologically(self, history):
        names = [name for name, _ in load_history(history)]
        assert names == sorted(names)
        assert names == [
            "BENCH_20260801T100000Z.json",
            "BENCH_20260802T100000Z.json",
        ]

    def test_same_second_snapshots_never_overwrite(self, tmp_path):
        doc = make_document("2026-08-01T10:00:00Z")
        first = append_history(tmp_path, doc)
        second = append_history(tmp_path, doc)
        assert first != second
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            first.name,
            second.name,
        ]

    def test_missing_directory_is_a_trend_error(self, tmp_path):
        with pytest.raises(TrendError, match="does not exist"):
            load_history(tmp_path / "nope")


class TestTrendReport:
    def test_stable_history_passes_the_gate(self, history):
        report = build_trend_report(history)
        assert report.ok
        assert report.verdict_line().startswith("drift gate: PASS")
        assert DRIFT_MARKER not in report.to_markdown()

    def test_single_snapshot_skips_the_gate(self, tmp_path):
        directory = tmp_path / "one"
        append_history(directory, make_document("2026-08-01T10:00:00Z"))
        report = build_trend_report(directory)
        assert "drift gate: skipped" in report.verdict_line()

    def test_fidelity_drift_is_flagged(self, history):
        current = make_document("2026-08-03T10:00:00Z", metric_a=6.0)
        report = build_trend_report(history, current=current)
        assert not report.ok
        assert [t.name for t in report.drifted] == ["bench_a"]
        assert DRIFT_MARKER in report.verdict_line()
        assert "fidelity" in report.drifted[0].drift_detail

    def test_wall_clock_regression_is_flagged(self, history):
        current = make_document("2026-08-03T10:00:00Z", wall_a=2.0)
        report = build_trend_report(history, current=current)
        assert [t.name for t in report.drifted] == ["bench_a"]

    def test_missing_benchmark_is_flagged(self, history):
        current = make_document("2026-08-03T10:00:00Z", include_b=False)
        report = build_trend_report(history, current=current)
        assert [t.name for t in report.drifted] == ["bench_b"]

    def test_trajectories_align_across_sparse_snapshots(self, tmp_path):
        directory = tmp_path / "sparse"
        append_history(
            directory, make_document("2026-08-01T10:00:00Z", include_b=False)
        )
        append_history(directory, make_document("2026-08-02T10:00:00Z"))
        report = build_trend_report(directory)
        by_name = {t.name: t for t in report.trends}
        assert by_name["bench_b"].wall_clock_s == [None, 0.5]
        assert by_name["bench_a"].metrics["fidelity"] == [5.0, 5.0]

    def test_markdown_has_sparklines_and_tables(self, history):
        text = build_trend_report(history).to_markdown()
        assert "## Wall clock" in text
        assert "## Fidelity metrics" in text
        assert any(level in text for level in "▁▂▃▄▅▆▇█")


class TestTrendCli:
    def test_cli_prints_grepable_verdict(self, history):
        code, stdout, _ = invoke(["report", "trend", "--history", str(history)])
        assert code == 0
        assert "drift gate: PASS" in stdout

    def test_fail_on_drift_exit_code(self, history, tmp_path):
        current = make_document("2026-08-03T10:00:00Z", metric_a=9.0)
        current_path = tmp_path / "current.json"
        current.save(current_path)
        code, stdout, _ = invoke(
            ["report", "trend", "--history", str(history),
             "--current", str(current_path), "--fail-on-drift"]
        )
        assert code == 1
        assert DRIFT_MARKER in stdout
        # Without the flag the same drift is reported but not fatal.
        code, stdout, _ = invoke(
            ["report", "trend", "--history", str(history),
             "--current", str(current_path)]
        )
        assert code == 0
        assert DRIFT_MARKER in stdout

    def test_out_writes_bundle(self, history, tmp_path):
        out = tmp_path / "bundle"
        code, _, _ = invoke(
            ["report", "trend", "--history", str(history), "--out", str(out)]
        )
        assert code == 0
        assert (out / "trend.md").exists()
        assert (out / "trend.json").exists()
        assert (out / "spark_bench_a.svg").exists()

    def test_missing_history_is_a_usage_error(self, tmp_path):
        code, _, stderr = invoke(
            ["report", "trend", "--history", str(tmp_path / "nope")]
        )
        assert code == 2
        assert "does not exist" in stderr


class TestCommittedHistory:
    def test_repo_history_renders_and_passes(self):
        """The committed benchmarks/history/ snapshots must stay coherent."""
        import pathlib

        history = (
            pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "history"
        )
        snapshots = load_history(history)
        assert len(snapshots) >= 2, (
            "benchmarks/history/ needs at least two committed snapshots for "
            "'repro report trend' to render a trajectory"
        )
        report = build_trend_report(history)
        assert report.trends, "committed history renders no benchmarks"

    def test_bench_run_history_flag_appends_snapshot(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "scratch"))
        history = tmp_path / "history"
        code, _, stderr = invoke(
            ["bench", "run", "--only", "figure05_trfc_trend",
             "--json", str(tmp_path / "bench.json"),
             "--history", str(history), "--no-txt"]
        )
        assert code == 0, stderr
        written = list(history.glob("BENCH_*.json"))
        assert len(written) == 1
        assert "history snapshot appended" in stderr
        BenchDocument.load(written[0])  # schema-valid


def test_write_trend_report_bundle_is_deterministic(history, tmp_path):
    report = build_trend_report(history)
    first = write_trend_report(report, tmp_path / "a")
    second = write_trend_report(report, tmp_path / "b")
    for one, two in zip(first, second):
        assert one.read_bytes() == two.read_bytes()
