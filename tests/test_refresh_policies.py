"""Unit tests for every refresh policy (the paper's core mechanisms)."""


from repro.config.presets import paper_system
from repro.config.refresh_config import RefreshMechanism
from repro.controller.memory_controller import MemorySystem
from repro.core.adaptive import AdaptiveRefreshPolicy
from repro.core.all_bank import AllBankRefreshPolicy
from repro.core.darp import DARPPolicy
from repro.core.elastic import ElasticRefreshPolicy
from repro.core.factory import create_refresh_policy
from repro.core.no_refresh import NoRefreshPolicy
from repro.core.per_bank import PerBankRefreshPolicy


def memory_for(mechanism: str, **kwargs) -> MemorySystem:
    return MemorySystem(paper_system(mechanism=mechanism, **kwargs))


def run_cycles(memory: MemorySystem, cycles: int, start: int = 0):
    for cycle in range(start, start + cycles):
        memory.tick(cycle)


class TestFactory:
    def test_mapping(self):
        config = paper_system()
        cases = {
            "none": NoRefreshPolicy,
            "refab": AllBankRefreshPolicy,
            "sarpab": AllBankRefreshPolicy,
            "fgr2x": AllBankRefreshPolicy,
            "fgr4x": AllBankRefreshPolicy,
            "refpb": PerBankRefreshPolicy,
            "sarppb": PerBankRefreshPolicy,
            "elastic": ElasticRefreshPolicy,
            "darp": DARPPolicy,
            "dsarp": DARPPolicy,
            "ar": AdaptiveRefreshPolicy,
        }
        for name, expected_type in cases.items():
            policy = create_refresh_policy(config.with_mechanism(name), channel_id=0)
            assert isinstance(policy, expected_type), name

    def test_sarp_enabled_only_for_sarp_mechanisms(self):
        for name, expected in (("refpb", False), ("sarppb", True), ("dsarp", True), ("refab", False)):
            memory = memory_for(name)
            assert memory.device.sarp_enabled is expected


class TestNoRefresh:
    def test_never_issues(self):
        memory = memory_for("none")
        run_cycles(memory, memory.device.timings.tREFIab * 2)
        assert memory.device.stats.all_bank_refreshes == 0
        assert memory.device.stats.per_bank_refreshes == 0


class TestAllBankPolicy:
    def test_refresh_rate_matches_trefi(self):
        memory = memory_for("refab")
        t = memory.device.timings
        intervals = 4
        run_cycles(memory, t.tREFIab * intervals + t.tRFCab)
        # 2 channels x 2 ranks, one refresh per rank per interval.
        expected = 4 * intervals
        assert abs(memory.device.stats.all_bank_refreshes - expected) <= 4

    def test_blocks_demand_while_pending(self):
        memory = memory_for("refab")
        controller = memory.controllers[0]
        policy = controller.refresh_policy
        t = memory.device.timings
        assert not policy.blocks_demand(0, 0, 0)
        # Advance the schedule so a refresh becomes pending without letting
        # the controller issue it (call the accumulator directly).
        policy._accumulate_due(t.tREFIab + 1)
        assert policy.pending_refreshes(0) >= 1 or policy.pending_refreshes(1) >= 1
        blocked_rank = 0 if policy.pending_refreshes(0) else 1
        assert policy.blocks_demand(t.tREFIab + 1, blocked_rank, 0)


class TestPerBankPolicy:
    def test_round_robin_order(self):
        memory = memory_for("refpb")
        controller = memory.controllers[0]
        policy = controller.refresh_policy
        t = memory.device.timings
        policy._accumulate_due(t.tREFIpb * 3 + 1)
        # The pending queue for the staggered rank preserves bank order 0,1,2...
        for rank in range(policy.num_ranks):
            pending = list(policy._pending[rank])
            if pending:
                assert pending == sorted(pending)

    def test_blocks_only_head_bank(self):
        memory = memory_for("refpb")
        policy = memory.controllers[0].refresh_policy
        t = memory.device.timings
        policy._accumulate_due(t.tREFIpb * policy.num_ranks + 1)
        for rank in range(policy.num_ranks):
            head = policy.pending_bank(rank)
            if head is None:
                continue
            assert policy.blocks_demand(0, rank, head)
            assert not policy.blocks_demand(0, rank, (head + 1) % policy.num_banks)

    def test_refresh_rate_eight_times_refab(self):
        memory = memory_for("refpb")
        t = memory.device.timings
        intervals = 2
        run_cycles(memory, t.tREFIab * intervals + t.tRFCpb)
        expected = 4 * 8 * intervals  # 4 ranks, 8 per-bank refreshes per tREFIab
        assert abs(memory.device.stats.per_bank_refreshes - expected) <= 8


class TestElasticPolicy:
    def test_tracks_refab_rate_under_load(self):
        # With the steady-state backlog, elastic must pay roughly one refresh
        # per tREFIab per rank even though it may shift them slightly.
        memory = memory_for("elastic")
        t = memory.device.timings
        intervals = 5
        run_cycles(memory, t.tREFIab * intervals + t.tRFCab)
        refab = memory_for("refab")
        run_cycles(refab, t.tREFIab * intervals + t.tRFCab)
        assert memory.device.stats.all_bank_refreshes >= refab.device.stats.all_bank_refreshes - 8

    def test_effective_postpone_budget_reduced(self):
        policy = create_refresh_policy(paper_system(mechanism="elastic"), 0)
        assert policy._effective_postpone == max(
            1,
            policy.refresh_config.max_postpone - policy.refresh_config.steady_state_backlog,
        )


class TestDARPPolicy:
    def test_debt_never_exceeds_jedec_limits(self):
        memory = memory_for("darp")
        t = memory.device.timings
        run_cycles(memory, t.tREFIab * 3)
        for controller in memory.controllers:
            policy = controller.refresh_policy
            for rank in range(policy.num_ranks):
                for bank in range(policy.num_banks):
                    debt = policy.refresh_debt(rank, bank)
                    assert -policy.refresh_config.max_pullin <= debt
                    assert debt <= policy.refresh_config.max_postpone

    def test_refresh_work_conserved(self):
        # DARP must not refresh less than the round-robin baseline would
        # (modulo the +-8 commands the standard allows per bank).
        memory = memory_for("darp")
        baseline = memory_for("refpb")
        t = memory.device.timings
        cycles = t.tREFIab * 4
        run_cycles(memory, cycles)
        run_cycles(baseline, cycles)
        assert (
            memory.device.stats.per_bank_refreshes
            >= baseline.device.stats.per_bank_refreshes - 8 * 4
        )

    def test_blocks_demand_only_when_credit_exhausted(self):
        policy = create_refresh_policy(paper_system(mechanism="darp"), 0)
        memory = memory_for("darp")
        policy.bind(memory.controllers[0])
        assert not policy.blocks_demand(0, 0, 0)
        policy._debt[0][0] = policy.refresh_config.max_postpone
        assert policy.blocks_demand(0, 0, 0)

    def test_write_mode_candidate_picks_least_loaded_bank(self):
        memory = memory_for("darp")
        controller = memory.controllers[0]
        policy = controller.refresh_policy
        # Load bank (0, 0) with a request; the candidate must avoid it.
        memory.access(0, is_write=True, core_id=0, cycle=0)
        loaded_key = None
        for key in controller.queues.bank_keys:
            if controller.queues.demand_count(key) > 0:
                loaded_key = key
        if loaded_key is not None and loaded_key[0] == 0:
            candidate = policy._write_mode_candidate(0)
            assert candidate != loaded_key[1]

    def test_ablation_flag_disables_out_of_order(self):
        config = paper_system(mechanism="darp", enable_out_of_order=False)
        policy = create_refresh_policy(config, 0)
        memory = MemorySystem(config)
        run_cycles(memory, memory.device.timings.tREFIab * 2)
        # It still refreshes (like baseline per-bank refresh).
        assert memory.device.stats.per_bank_refreshes > 0


class TestAdaptivePolicy:
    def test_issues_refresh_work(self):
        memory = memory_for("ar")
        t = memory.device.timings
        run_cycles(memory, t.tREFIab * 3)
        assert memory.device.stats.all_bank_refreshes >= 4

    def test_mode_selection_prefers_1x_under_pressure(self):
        memory = memory_for("ar")
        controller = memory.controllers[0]
        policy = controller.refresh_policy
        # With an idle rank the policy may use the fine-granularity mode.
        assert policy._select_mode(0) == 4
        # Under demand pressure it falls back to the cheaper 1x mode.
        address = 0
        while controller.queues.rank_demand_count(0) < policy.refresh_config.ar_pressure_threshold:
            request = memory.access(address, is_write=False, core_id=0, cycle=0)
            address += 128
        assert policy._select_mode(0) == 1


class TestRefreshStats:
    def test_stats_dict_keys(self):
        for mechanism in RefreshMechanism:
            policy = create_refresh_policy(paper_system(mechanism=mechanism), 0)
            stats = policy.stats_dict()
            assert set(stats) == {
                "all_bank_issued",
                "per_bank_issued",
                "postponed",
                "pulled_in",
                "forced",
                "write_mode_refreshes",
            }
