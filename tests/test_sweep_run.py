"""End-to-end tests of sweep execution, analysis, artifacts and the CLI."""

import io
import json

import pytest

from repro.engine.store import JsonlStore
from repro.sim.runner import ExperimentRunner
from repro.sweep import (
    Axis,
    SweepCell,
    SweepResult,
    SweepSpec,
    WorkloadSpec,
    best_per_workload,
    load_run_dir,
    pareto_frontier,
    run_sweep,
    sensitivity,
    summarize,
    write_run_dir,
)

CYCLES, WARMUP = 1200, 200


def tiny_spec() -> SweepSpec:
    return SweepSpec(
        name="tiny",
        description="two-axis smoke sweep",
        axes=(Axis("tfaw", (10, 20)), Axis("subarrays_per_bank", (4, 8))),
        mechanisms=("refpb", "sarppb"),
        baseline="refpb",
        base={"density_gb": 32},
        workloads=WorkloadSpec(kind="intensive", count=1, num_cores=4),
    )


@pytest.fixture(scope="module")
def tiny_result() -> SweepResult:
    runner = ExperimentRunner(cycles=CYCLES, warmup=WARMUP)
    return run_sweep(tiny_spec(), runner=runner)


class TestRunSweep:
    def test_cell_grid_shape(self, tiny_result):
        # 4 points x 1 workload x 2 mechanisms.
        assert len(tiny_result.cells) == 8
        assert len(tiny_result.points) == 4
        assert tiny_result.workload_names() == ["mix100_00"]
        mechanisms = {cell.mechanism for cell in tiny_result.cells}
        assert mechanisms == {"refpb", "sarppb"}

    def test_cells_carry_positive_metrics(self, tiny_result):
        for cell in tiny_result.cells:
            assert cell.weighted_speedup > 0
            assert cell.energy_per_access_nj > 0

    def test_warm_store_resweep_is_free(self, tmp_path):
        store_path = tmp_path / "cache.jsonl"
        cold_runner = ExperimentRunner(
            cycles=CYCLES, warmup=WARMUP, store=JsonlStore(store_path)
        )
        cold = run_sweep(tiny_spec(), runner=cold_runner)
        assert cold_runner.summary()["simulated"] > 0

        # Fresh runner and store object; only the file is shared.
        warm_runner = ExperimentRunner(
            cycles=CYCLES, warmup=WARMUP, store=JsonlStore(store_path)
        )
        warm = run_sweep(tiny_spec(), runner=warm_runner)
        assert warm_runner.summary()["simulated"] == 0
        assert [cell.to_dict() for cell in warm.cells] == [
            cell.to_dict() for cell in cold.cells
        ]


class TestArtifacts:
    def test_run_dir_round_trip(self, tiny_result, tmp_path):
        out = write_run_dir(tmp_path / "run", tiny_result)
        assert (out / "spec.json").exists()
        assert (out / "results.jsonl").exists()
        assert (out / "summary.md").exists()
        loaded = load_run_dir(out)
        assert loaded.spec == tiny_result.spec
        assert [c.to_dict() for c in loaded.cells] == [
            c.to_dict() for c in tiny_result.cells
        ]

    def test_results_jsonl_lines_are_self_contained(self, tiny_result, tmp_path):
        out = write_run_dir(tmp_path / "run", tiny_result)
        lines = (out / "results.jsonl").read_text().splitlines()
        assert len(lines) == len(tiny_result.cells)
        record = json.loads(lines[0])
        assert {"point", "workload", "mechanism", "weighted_speedup"} <= set(record)

    def test_summary_mentions_pareto_and_sensitivity(self, tiny_result):
        text = summarize(tiny_result)
        assert "Pareto frontier" in text
        assert "Sensitivity to tfaw" in text
        assert "Sensitivity to subarrays_per_bank" in text
        assert "Best configuration per workload" in text


def synthetic_result() -> SweepResult:
    """A hand-built 2-point x 2-mechanism grid with known orderings."""
    spec = SweepSpec(
        name="synthetic",
        axes=(Axis("tfaw", (10, 20)),),
        mechanisms=("refpb", "sarppb"),
        baseline="refpb",
    )

    def cell(tfaw, mechanism, ws, energy):
        return SweepCell(
            point={"tfaw": tfaw},
            workload="wl",
            category=100,
            mechanism=mechanism,
            weighted_speedup=ws,
            harmonic_speedup=ws,
            maximum_slowdown=1.0,
            energy_per_access_nj=energy,
        )

    cells = [
        cell(10, "refpb", 1.0, 50.0),
        cell(10, "sarppb", 1.2, 40.0),  # dominates everything
        cell(20, "refpb", 0.9, 55.0),
        cell(20, "sarppb", 1.1, 45.0),
    ]
    return SweepResult(spec=spec, points=[{"tfaw": 10}, {"tfaw": 20}], cells=cells)


class TestAnalysis:
    def test_pareto_frontier_flags_non_dominated(self):
        frontier = pareto_frontier(synthetic_result())
        flagged = [
            (entry.point["tfaw"], entry.mechanism)
            for entry in frontier
            if entry.on_frontier
        ]
        assert flagged == [(10, "sarppb")]
        # Frontier entries sort first, by descending weighted speedup.
        assert frontier[0].on_frontier
        assert [e.weighted_speedup for e in frontier] == sorted(
            (e.weighted_speedup for e in frontier), reverse=True
        )

    def test_sensitivity_computes_gains_vs_baseline(self):
        tables = sensitivity(synthetic_result())
        gains = tables["tfaw"]
        assert gains[10]["sarppb"] == pytest.approx(20.0)
        assert gains[20]["sarppb"] == pytest.approx(100.0 * (1.1 / 0.9 - 1.0))
        assert "refpb" not in gains[10]  # the baseline is not its own gain

    def test_best_per_workload_picks_max_ws(self):
        best = best_per_workload(synthetic_result())
        assert best["wl"].point == {"tfaw": 10}
        assert best["wl"].mechanism == "sarppb"
        assert best["wl"].weighted_speedup == pytest.approx(1.2)

    def test_best_per_workload_separates_workload_axes(self):
        # A num_cores axis rebuilds the workload under the same name, and
        # WS scales with core count — same-named cells from different core
        # counts must rank separately, not collapse to "most cores wins".
        spec = SweepSpec(
            name="cores",
            axes=(Axis("num_cores", (2, 8)),),
            mechanisms=("refab", "dsarp"),
            baseline="refab",
        )
        cells = [
            SweepCell(
                point={"num_cores": cores},
                workload="mix100_00",
                category=100,
                mechanism="dsarp",
                weighted_speedup=float(cores),
                harmonic_speedup=1.0,
                maximum_slowdown=1.0,
                energy_per_access_nj=30.0,
            )
            for cores in (2, 8)
        ]
        best = best_per_workload(
            SweepResult(spec=spec, points=[{"num_cores": 2}, {"num_cores": 8}], cells=cells)
        )
        assert set(best) == {"mix100_00 (num_cores=2)", "mix100_00 (num_cores=8)"}
        assert best["mix100_00 (num_cores=2)"].weighted_speedup == pytest.approx(2.0)


class TestSweepCli:
    def run_cli(self, argv):
        from repro.cli import main

        stdout, stderr = io.StringIO(), io.StringIO()
        code = main(argv, stdout=stdout, stderr=stderr)
        return code, stdout.getvalue(), stderr.getvalue()

    def test_sweep_from_spec_file(self, tmp_path):
        spec_path = tiny_spec().save(tmp_path / "spec.json")
        out_dir = tmp_path / "artifact"
        store = tmp_path / "cache.jsonl"
        argv = [
            "sweep",
            str(spec_path),
            "--out",
            str(out_dir),
            "--store",
            str(store),
            "--cycles",
            str(CYCLES),
            "--warmup",
            str(WARMUP),
        ]
        code, out, err = self.run_cli(argv)
        assert code == 0, err
        assert "Pareto frontier" in out
        assert (out_dir / "summary.md").exists()
        assert "— 0 simulated" not in err

        # Second invocation against the same store: zero new simulations,
        # identical summary.
        code, second_out, second_err = self.run_cli(argv)
        assert code == 0
        assert "— 0 simulated" in second_err
        assert second_out == out

    def test_sweep_builtin_dry_run(self):
        code, out, err = self.run_cli(
            ["sweep", "table5_subarray_sensitivity", "--dry-run"]
        )
        assert code == 0
        assert "subarrays_per_bank" in err

    def test_sweep_unknown_spec_fails_cleanly(self):
        code, out, err = self.run_cli(["sweep", "no_such_spec.json"])
        assert code == 2
        assert "neither a spec file nor a built-in sweep" in err

    def test_sweep_accepts_a_run_directory(self, tmp_path):
        # Run directories advertise themselves as re-runnable: pointing
        # the CLI at one must pick up its spec.json.
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        tiny_spec().save(run_dir / "spec.json")
        code, _, err = self.run_cli(["sweep", str(run_dir), "--dry-run"])
        assert code == 0, err
        assert "tiny" in err

    def test_sweep_rejects_directory_without_spec(self, tmp_path):
        code, _, err = self.run_cli(["sweep", str(tmp_path), "--dry-run"])
        assert code == 2
        assert "without a spec.json" in err

    def test_list_includes_builtin_sweeps_and_docstring_summaries(self):
        code, out, _ = self.run_cli(["list"])
        assert code == 0
        assert "table5_subarray_sensitivity" in out
        # Descriptions come from the experiment functions' docstrings.
        assert "Table 5: % WS improvement of SARPpb over REFpb" in out
