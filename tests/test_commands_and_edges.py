"""Command-type semantics and simulator edge cases."""


from repro.config.presets import paper_system
from repro.dram.commands import Command, CommandType
from repro.sim.simulator import Simulator
from repro.workloads.benchmark_suite import get_benchmark
from repro.workloads.mixes import make_workload


class TestCommandTypes:
    def test_column_classification(self):
        for kind in (CommandType.RD, CommandType.WR, CommandType.RDA, CommandType.WRA):
            assert kind.is_column
        for kind in (CommandType.ACT, CommandType.PRE, CommandType.REFAB, CommandType.REFPB):
            assert not kind.is_column

    def test_read_write_classification(self):
        assert CommandType.RD.is_read and CommandType.RDA.is_read
        assert CommandType.WR.is_write and CommandType.WRA.is_write
        assert not CommandType.RD.is_write
        assert not CommandType.WR.is_read

    def test_refresh_classification(self):
        assert CommandType.REFAB.is_refresh and CommandType.REFPB.is_refresh
        assert not CommandType.ACT.is_refresh

    def test_autoprecharge_flag(self):
        assert CommandType.RDA.autoprecharges and CommandType.WRA.autoprecharges
        assert not CommandType.RD.autoprecharges

    def test_command_repr_mentions_location(self):
        command = Command(kind=CommandType.ACT, channel=1, rank=0, bank=3, row=42)
        text = repr(command)
        assert "ACT" in text and "bk=3" in text


class TestSimulatorEdgeCases:
    def test_single_core_workload(self):
        workload = make_workload([get_benchmark("mcf_like")])
        config = paper_system(density_gb=8, mechanism="refab", num_cores=1)
        result = Simulator(config, workload).run(3000, warmup=300)
        assert len(result.cores) == 1
        assert result.cores[0].instructions > 0

    def test_non_intensive_workload_barely_touches_dram(self):
        workload = make_workload(
            [get_benchmark("povray_like"), get_benchmark("gcc_like")],
        )
        config = paper_system(density_gb=8, mechanism="none", num_cores=2)
        result = Simulator(config, workload).run(3000, warmup=1000)
        # After warmup the small footprints live in the LLC: near-peak IPC
        # and an order of magnitude fewer DRAM reads than instructions.
        assert all(core.mpki < 10 for core in result.cores)
        assert sum(result.ipcs) > 2.0

    def test_intensive_workload_classified_correctly(self):
        workload = make_workload(
            [get_benchmark("stream_copy"), get_benchmark("mcf_like")],
        )
        config = paper_system(density_gb=8, mechanism="none", num_cores=2)
        result = Simulator(config, workload).run(4000, warmup=1000)
        assert all(core.mpki >= 10 for core in result.cores)

    def test_different_seeds_produce_different_results(self):
        workload = make_workload(
            [get_benchmark("random_access"), get_benchmark("mcf_like")],
        )
        config = paper_system(density_gb=8, mechanism="none", num_cores=2)
        a = Simulator(config, workload, seed=1).run(2000, warmup=200)
        b = Simulator(config, workload, seed=2).run(2000, warmup=200)
        assert a.device_stats != b.device_stats

    def test_functional_warmup_override(self):
        workload = make_workload([get_benchmark("gcc_like")])
        config = paper_system(density_gb=8, mechanism="none", num_cores=1)
        cold = Simulator(config, workload, functional_warmup_accesses=0)
        warm = Simulator(config, workload)
        cold_result = cold.run(1500)
        warm_result = warm.run(1500)
        # The pre-warmed cache serves the small footprint immediately, so the
        # cold run issues at least as many DRAM reads in the same window.
        assert cold_result.cores[0].dram_reads >= warm_result.cores[0].dram_reads

    def test_mechanism_recorded_in_result(self):
        workload = make_workload([get_benchmark("gcc_like")])
        for mechanism in ("refab", "dsarp"):
            config = paper_system(density_gb=8, mechanism=mechanism, num_cores=1)
            result = Simulator(config, workload).run(1200, warmup=100)
            assert result.mechanism == mechanism
