"""Property-based tests of cross-cutting invariants."""

from hypothesis import given, settings, strategies as st

from repro.config.dram_config import DRAMConfig
from repro.config.presets import paper_system
from repro.controller.memory_controller import MemorySystem
from repro.dram.commands import Command, CommandType
from repro.dram.device import DRAMDevice


class TestDeviceInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),   # channel
                st.integers(min_value=0, max_value=1),   # rank
                st.integers(min_value=0, max_value=7),   # bank
                st.integers(min_value=0, max_value=65535),  # row
                st.sampled_from(["act", "rd", "wr", "pre", "refab", "refpb"]),
                st.integers(min_value=1, max_value=40),  # cycle delta
            ),
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_accepted_commands_keep_state_consistent(self, steps):
        """Issuing only commands the device accepts never corrupts state."""
        device = DRAMDevice(DRAMConfig.for_density(8), sarp_enabled=False)
        cycle = 0
        for channel, rank, bank, row, kind_name, delta in steps:
            cycle += delta
            kind = {
                "act": CommandType.ACT,
                "rd": CommandType.RDA,
                "wr": CommandType.WRA,
                "pre": CommandType.PRE,
                "refab": CommandType.REFAB,
                "refpb": CommandType.REFPB,
            }[kind_name]
            open_row = device.bank(channel, rank, bank).open_row
            if kind.is_column and open_row is not None:
                row = open_row
            command = Command(kind=kind, channel=channel, rank=rank, bank=bank, row=row)
            if device.can_issue(command, cycle):
                device.issue(command, cycle)
            # Invariants that must hold at all times:
            for ch, rk, bk, bank_obj in device.iter_banks():
                rank_obj = device.rank(ch, rk)
                # A non-SARP bank never has an open row while refreshing.
                if bank_obj.is_refreshing(cycle):
                    assert bank_obj.open_row is None
                # Rank-level refresh implies every bank is refreshing.
                if rank_obj.is_under_all_bank_refresh(cycle):
                    assert bank_obj.open_row is None

    @given(st.integers(min_value=0, max_value=2**30), st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_memory_system_accepts_or_rejects_cleanly(self, address, is_write):
        memory = MemorySystem(paper_system(mechanism="none", num_cores=1))
        request = memory.access(address, is_write, core_id=0, cycle=0)
        assert request is not None
        assert request.location.channel < 2
        # The request is present in exactly one queue.
        controller = memory.controllers[request.location.channel]
        assert controller.queues.total_demand() == 1


class TestRefreshDebtInvariant:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_darp_debt_bounded_for_any_prefix(self, cycles):
        """DARP's per-bank refresh debt honours the JEDEC bounds at any time."""
        memory = MemorySystem(paper_system(mechanism="darp", num_cores=1))
        for cycle in range(min(cycles, 3000)):
            memory.tick(cycle)
        for controller in memory.controllers:
            policy = controller.refresh_policy
            for rank in range(policy.num_ranks):
                for bank in range(policy.num_banks):
                    debt = policy.refresh_debt(rank, bank)
                    assert -policy.refresh_config.max_pullin <= debt <= policy.refresh_config.max_postpone
