"""Unit and property tests for the last-level cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.llc import LastLevelCache
from repro.cache.set_assoc import SetAssociativeCache
from repro.config.cpu_config import CacheConfig


def small_cache(size=8 * 1024, assoc=4, line=64) -> SetAssociativeCache:
    return SetAssociativeCache(size_bytes=size, associativity=assoc, line_bytes=line)


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        first = cache.access(0, is_write=False)
        second = cache.access(0, is_write=False)
        assert not first.hit
        assert second.hit
        assert cache.hits == 1
        assert cache.misses == 1

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.access(0, is_write=False)
        assert cache.access(63, is_write=False).hit
        assert not cache.access(64, is_write=False).hit

    def test_lru_eviction_order(self):
        cache = small_cache(size=4 * 64 * 1, assoc=4, line=64)  # 1 set, 4 ways
        for i in range(4):
            cache.access(i * 64, is_write=False)
        cache.access(0, is_write=False)  # touch line 0, making line 1 the LRU
        cache.access(4 * 64, is_write=False)  # evicts line 1
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_dirty_eviction_produces_writeback(self):
        cache = small_cache(size=4 * 64, assoc=4, line=64)
        cache.access(0, is_write=True)
        for i in range(1, 4):
            cache.access(i * 64, is_write=False)
        result = cache.access(4 * 64, is_write=False)
        assert result.writeback_address == 0
        assert cache.writebacks == 1

    def test_clean_eviction_has_no_writeback(self):
        cache = small_cache(size=4 * 64, assoc=4, line=64)
        for i in range(5):
            result = cache.access(i * 64, is_write=False)
        assert result.writeback_address is None
        assert cache.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = small_cache(size=4 * 64, assoc=4, line=64)
        cache.access(0, is_write=False)
        cache.access(0, is_write=True)
        for i in range(1, 4):
            cache.access(i * 64, is_write=False)
        result = cache.access(4 * 64, is_write=False)
        assert result.writeback_address == 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=1000, associativity=3, line_bytes=64)

    def test_miss_rate_and_reset(self):
        cache = small_cache()
        cache.access(0, is_write=False)
        cache.access(0, is_write=False)
        assert cache.miss_rate == pytest.approx(0.5)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.miss_rate == 0.0

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 20), st.booleans()), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, accesses):
        cache = small_cache(size=2 * 1024, assoc=2, line=64)
        capacity_lines = 2 * 1024 // 64
        for address, is_write in accesses:
            cache.access(address, is_write)
            assert cache.occupancy() <= capacity_lines

    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_most_recent_line_always_resident(self, addresses):
        cache = small_cache(size=2 * 1024, assoc=2, line=64)
        for address in addresses:
            cache.access(address, is_write=False)
            assert cache.contains(address)


class TestLastLevelCache:
    def test_wraps_paper_geometry(self):
        llc = LastLevelCache(CacheConfig())
        assert llc.miss_rate == 0.0
        result = llc.access(0, is_write=False)
        assert not result.hit
        assert llc.misses == 1
        assert llc.mpki(1000) == 1.0

    def test_line_address(self):
        llc = LastLevelCache(CacheConfig())
        assert llc.line_address(130) == 128

    def test_contains_does_not_disturb_lru(self):
        llc = LastLevelCache(
            CacheConfig(size_bytes=4 * 64, associativity=4, line_bytes=64),
        )
        llc.access(0, is_write=False)
        assert llc.contains(0)
        assert not llc.contains(64)
        assert llc.hits == 0 and llc.misses == 1

    def test_mpki_zero_for_no_instructions(self):
        llc = LastLevelCache(CacheConfig())
        assert llc.mpki(0) == 0.0
