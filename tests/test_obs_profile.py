"""Span profiler: aggregation, the module-global protocol, CLI surface."""

from __future__ import annotations

import io

import pytest

import repro.obs.profile as obs_profile
from repro.cli import main
from repro.obs.profile import SpanProfiler


@pytest.fixture(autouse=True)
def profiler_off():
    """Every test starts and ends with profiling disabled."""
    obs_profile.disable()
    yield
    obs_profile.disable()


class TestSpanProfiler:
    def test_aggregates_count_total_max(self):
        profiler = SpanProfiler()
        profiler.add("kernel.step", 0.5)
        profiler.add("kernel.step", 1.5)
        profiler.add("other", 0.1)
        rows = profiler.hotspots()
        assert rows[0] == ("kernel.step", 2, 2.0, 1.5)
        assert rows[1] == ("other", 1, 0.1, 0.1)

    def test_hotspots_sorted_by_total_descending(self):
        profiler = SpanProfiler()
        profiler.add("small", 0.1)
        profiler.add("large", 5.0)
        profiler.add("medium", 1.0)
        assert [name for name, *_ in profiler.hotspots()] == [
            "large",
            "medium",
            "small",
        ]

    def test_format_table_and_top(self):
        profiler = SpanProfiler()
        for index in range(5):
            profiler.add(f"span{index}", float(index + 1))
        table = profiler.format_table(top=2)
        assert "span4" in table
        assert "span3" in table
        assert "span0" not in table
        assert "total (s)" in table

    def test_format_table_empty(self):
        assert SpanProfiler().format_table() == "no spans recorded\n"

    def test_reset(self):
        profiler = SpanProfiler()
        profiler.add("x", 1.0)
        profiler.reset()
        assert profiler.spans == {}


class TestGlobalProtocol:
    def test_enable_disable_cycle(self):
        assert obs_profile.active() is None
        profiler = obs_profile.enable()
        assert obs_profile.active() is profiler
        assert obs_profile.enable() is profiler  # idempotent
        returned = obs_profile.disable()
        assert returned is profiler
        assert obs_profile.active() is None

    def test_span_records_when_enabled(self):
        profiler = obs_profile.enable()
        with obs_profile.span("unit"):
            pass
        assert profiler.spans["unit"][0] == 1

    def test_span_noop_when_disabled(self):
        with obs_profile.span("ignored"):
            pass
        assert obs_profile.active() is None

    def test_simulation_records_kernel_spans(self):
        from repro.sim.simulator import Simulator

        from tests.conftest import small_system, small_workload

        profiler = obs_profile.enable()
        Simulator(small_system("refab"), small_workload()).run(500, warmup=100)
        spans = profiler.spans
        assert "sim.warmup" in spans
        assert "sim.measure" in spans
        assert "kernel.step_event" in spans
        assert "controller.horizon_scan" in spans


def test_profile_cli_prints_hotspot_table(monkeypatch):
    # A real experiment costs ~10s of simulator construction; a registry
    # stub keeps the CLI path end-to-end (parser -> runner -> engine ->
    # profiler table) while simulating one small cell.
    import repro.cli as cli

    from tests.conftest import small_system, small_workload

    def tiny(runner, scale):
        return runner.simulate(small_system("refab"), small_workload())

    experiment = cli.Experiment("tiny", tiny, tiny)
    monkeypatch.setitem(cli.EXPERIMENTS, "tiny", experiment)
    stdout, stderr = io.StringIO(), io.StringIO()
    code = main(
        ["profile", "tiny", "--cycles", "400", "--warmup", "80", "--top", "3"],
        stdout=stdout,
        stderr=stderr,
    )
    assert code == 0
    table = stdout.getvalue()
    assert "engine.job" in table
    assert "total (s)" in table
    # --top bounds the table to header + rule + N rows.
    assert len(table.strip().splitlines()) == 2 + 3
    # The CLI tears the global profiler down when it is done.
    assert obs_profile.active() is None
