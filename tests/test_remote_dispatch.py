"""End-to-end drills for remote shard dispatch and the calibrated cost model.

The loopback drills run real simulation jobs through a serve-only
coordinator and ``run_worker`` child processes — the same code path as
``repro worker`` — and hold the engine to its core guarantee: results
bit-identical to serial execution, through worker SIGKILL and late joins.
"""

import multiprocessing
import os
import signal
from time import monotonic, sleep

import pytest

from repro.engine.executor import ParallelExecutor, SerialExecutor
from repro.engine.jobs import SimulationJob
from repro.engine.progress import SOURCE_SIMULATED
from repro.engine.queue import CostModel, estimate_cost
from repro.engine.remote import run_worker
from repro.engine.sqlite_store import SqliteStore

from tests.conftest import small_system, small_workload

CYCLES = 1200
WARMUP = 200

MECHANISMS = ("refab", "refpb", "darp", "dsarp")
SEEDS = (0, 1)


def job_batch(cycles=CYCLES, warmup=WARMUP) -> list[SimulationJob]:
    return [
        SimulationJob(
            config=small_system(mechanism),
            workload=small_workload(),
            cycles=cycles,
            warmup=warmup,
            seed=seed,
        )
        for seed in SEEDS
        for mechanism in MECHANISMS
    ]


def spawn_worker(port: int, workers: int = 1) -> multiprocessing.Process:
    """A ``repro worker`` equivalent as a child process (same runtime)."""
    # Not daemonic: the worker runtime forks simulation children of its
    # own, which daemonic processes are forbidden to do.
    process = multiprocessing.Process(
        target=run_worker,
        args=("127.0.0.1", port),
        kwargs={"workers": workers},
    )
    process.start()
    return process


def reap(*processes, timeout_s: float = 30.0) -> None:
    for process in processes:
        process.join(timeout=timeout_s)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)


@pytest.fixture(scope="module")
def serial_results():
    return SerialExecutor().run(job_batch())


class TestLoopbackDispatch:
    def test_remote_results_identical_to_serial(self, serial_results):
        executor = ParallelExecutor(
            workers=0, serve=("127.0.0.1", 0), min_workers=1
        )
        worker = spawn_worker(executor.coordinator.port)
        try:
            results = executor.run(job_batch())
        finally:
            executor.shutdown_remote()
            reap(worker)
        assert results == serial_results
        assert executor.stats.remote_workers == 1
        assert executor.stats.simulated == len(job_batch())
        assert executor.stats.bytes_sent > 0
        assert executor.stats.bytes_received > 0
        assert executor.stats.reassignments == 0

    def test_worker_joining_mid_batch_picks_up_queued_shards(
        self, serial_results
    ):
        # Serve-only with min_workers=0: the batch starts with nobody to
        # run it and the queued shards must wait for the first join
        # rather than falling back to a local worker.
        executor = ParallelExecutor(workers=0, serve=("127.0.0.1", 0))
        port = executor.coordinator.port
        import threading

        outcome = {}

        def run_batch():
            outcome["results"] = executor.run(job_batch())

        runner = threading.Thread(target=run_batch)
        runner.start()
        sleep(0.5)  # let shards queue with no worker connected
        assert runner.is_alive(), "batch completed with no worker attached"
        worker = spawn_worker(port)
        try:
            runner.join(timeout=120)
            assert not runner.is_alive(), "batch never drained"
        finally:
            executor.shutdown_remote()
            reap(worker)
        assert outcome["results"] == serial_results
        assert executor.stats.remote_workers == 1

    def test_sigkill_mid_sweep_reassigns_and_stays_identical(
        self, serial_results, tmp_path
    ):
        store = SqliteStore(tmp_path / "remote.sqlite")
        executor = ParallelExecutor(
            workers=0, serve=("127.0.0.1", 0), min_workers=2
        )
        first = spawn_worker(executor.coordinator.port)
        second = spawn_worker(executor.coordinator.port)
        victim = {"pid": None}

        def assassin(event) -> None:
            # SIGKILL one remote worker the moment the first simulated
            # result lands, guaranteeing the batch is mid-flight.
            if victim["pid"] is None and event.source == SOURCE_SIMULATED:
                victim["pid"] = second.pid
                os.kill(second.pid, signal.SIGKILL)

        try:
            survived = executor.run(job_batch(), store=store, progress=assassin)
        finally:
            executor.shutdown_remote()
            reap(first, second)

        assert victim["pid"] is not None, "assassin never fired"
        assert survived == serial_results
        assert executor.stats.remote_workers == 2
        assert executor.stats.worker_failures >= 1
        assert executor.stats.reassignments >= 1

        # Every completed result was committed incrementally, so a fresh
        # serial run replays the batch from the store for free.
        resumed = SerialExecutor()
        replayed = resumed.run(job_batch(), store=SqliteStore(store.path))
        assert replayed == serial_results
        assert resumed.stats.simulated == 0


class TestCostModel:
    def make_job(self, mechanism="refab", cycles=1000):
        return SimulationJob(
            config=small_system(mechanism),
            workload=small_workload(),
            cycles=cycles,
            warmup=200,
            seed=0,
        )

    def test_uncalibrated_estimate_is_the_static_cost(self):
        model = CostModel()
        job = self.make_job()
        assert not model.is_calibrated(job)
        assert model.estimate(job) == estimate_cost(job)

    def test_observation_calibrates_the_key(self):
        model = CostModel()
        job = self.make_job()
        model.observe(job, 2.0)
        assert model.is_calibrated(job)
        assert model.estimate(job) == pytest.approx(2.0)
        # EWMA, not last-write-wins: a new sample moves the estimate by
        # alpha of the difference.
        model.observe(job, 4.0)
        assert model.estimate(job) == pytest.approx(2.0 + model.alpha * 2.0)

    def test_unseen_keys_scale_by_the_global_ratio(self):
        model = CostModel()
        short = self.make_job(cycles=1000)
        long = self.make_job(cycles=4000)
        model.observe(short, 1.0)
        assert not model.is_calibrated(long)
        # The global seconds-per-unit EWMA keeps unseen keys in seconds:
        # the longer job's estimate scales with its static cost.
        ratio = 1.0 / estimate_cost(short)
        assert model.estimate(long) == pytest.approx(estimate_cost(long) * ratio)

    def test_nonpositive_and_keyless_observations_ignored(self):
        model = CostModel()
        job = self.make_job()
        model.observe(job, 0.0)
        model.observe(job, -1.0)

        class Bare:
            pass

        model.observe(Bare(), 5.0)
        assert model.observations == 0
        assert model.snapshot() == {}

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            CostModel(alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(alpha=1.5)

    def test_executor_calibrates_across_batches(self):
        # The parallel executor feeds observed wall-clock back into its
        # cost model, so a repeat batch plans on measured seconds; the
        # calibrated_jobs stat records how many jobs benefited.
        executor = ParallelExecutor(workers=1)
        batch = job_batch(cycles=400, warmup=100)
        executor.run(batch)
        assert executor.stats.calibrated_jobs == 0
        assert executor.cost_model.observations == len(batch)
        executor.run(batch)
        assert executor.stats.calibrated_jobs == len(batch)
