"""Tables 3-6 must be bit-identical through the sweep path.

:mod:`repro.sim.experiments` now delegates the paper's sensitivity tables
to declarative sweeps (:mod:`repro.sweep.builtin`).  These tests pin the
hand-rolled reference implementations the tables previously used and
assert the sweep path reproduces their results *exactly* — same floats,
not approximately — so the abstraction provably subsumes the legacy loops.
"""

from dataclasses import replace

import pytest

from repro.config.presets import paper_system
from repro.metrics.speedup import average_percent_improvement
from repro.sim.experiments import (
    ExperimentScale,
    table3_core_count,
    table4_tfaw_sensitivity,
    table5_subarray_sensitivity,
    table6_refresh_interval,
)
from repro.sim.runner import ExperimentRunner
from repro.workloads.mixes import memory_intensive_workloads

TINY_SCALE = ExperimentScale(
    workloads_per_category=1, sensitivity_workloads=1, densities=(32,)
)


@pytest.fixture(scope="module")
def shared_runner():
    """One runner for legacy and sweep paths, so simulations are shared."""
    return ExperimentRunner(cycles=1200, warmup=200)


# ---------------------------------------------------------------------------
# Reference implementations: the hand-rolled loops the tables used before
# the sweep subsystem existed, copied verbatim (modulo local helpers).
# ---------------------------------------------------------------------------
def legacy_table3(runner, scale, core_counts=(2, 4, 8), density_gb=32):
    result = {}
    for cores in core_counts:
        workloads = memory_intensive_workloads(
            count=scale.sensitivity_workloads, num_cores=cores
        )
        ws_gains, hs_gains, slowdown_reductions, energy_reductions = [], [], [], []
        base_config = paper_system(density_gb=density_gb, num_cores=cores)
        comparisons = runner.compare_many(workloads, base_config, ("refab", "dsarp"))
        for comparison in comparisons:
            refab = comparison.results["refab"]
            dsarp = comparison.results["dsarp"]
            ws_gains.append(
                (dsarp.weighted_speedup / refab.weighted_speedup - 1.0) * 100.0
            )
            hs_gains.append(
                (dsarp.harmonic_speedup / refab.harmonic_speedup - 1.0) * 100.0
            )
            slowdown_reductions.append(
                (1.0 - dsarp.maximum_slowdown / refab.maximum_slowdown) * 100.0
            )
            energy_reductions.append(
                (1.0 - dsarp.energy_per_access_nj / refab.energy_per_access_nj) * 100.0
            )
        result[cores] = {
            "weighted_speedup_improvement": sum(ws_gains) / len(ws_gains),
            "harmonic_speedup_improvement": sum(hs_gains) / len(hs_gains),
            "maximum_slowdown_reduction": sum(slowdown_reductions)
            / len(slowdown_reductions),
            "energy_per_access_reduction": sum(energy_reductions)
            / len(energy_reductions),
        }
    return result


def legacy_table4(runner, scale, tfaw_values=(5, 10, 15, 20, 25, 30), density_gb=32):
    workloads = memory_intensive_workloads(count=scale.sensitivity_workloads)
    result = {}
    for tfaw in tfaw_values:
        trrd = max(1, tfaw // 5)
        gains = []
        base = paper_system(density_gb=density_gb)
        base = replace(base, dram=base.dram.with_tfaw(tfaw, trrd))
        for comparison in runner.compare_many(workloads, base, ("refpb", "sarppb")):
            normalized = comparison.normalized_to("refpb")
            gains.append((normalized["sarppb"] - 1.0) * 100.0)
        result[tfaw] = average_percent_improvement(gains)
    return result


def legacy_table5(
    runner,
    scale,
    subarray_counts=(1, 2, 4, 8, 16, 32, 64),
    density_gb=32,
):
    workloads = memory_intensive_workloads(count=scale.sensitivity_workloads)
    result = {}
    for count in subarray_counts:
        gains = []
        base = paper_system(density_gb=density_gb, subarrays_per_bank=count)
        for comparison in runner.compare_many(workloads, base, ("refpb", "sarppb")):
            normalized = comparison.normalized_to("refpb")
            gains.append((normalized["sarppb"] - 1.0) * 100.0)
        result[count] = average_percent_improvement(gains)
    return result


def legacy_table6(runner, scale, retention_ms=64.0):
    workloads = memory_intensive_workloads(count=scale.sensitivity_workloads)
    result = {}
    for density in scale.densities:
        base_config = paper_system(density_gb=density, retention_ms=retention_ms)
        over_refab, over_refpb = [], []
        for comparison in runner.compare_many(
            workloads, base_config, ("refab", "refpb", "dsarp")
        ):
            normalized = comparison.normalized_to("refab")
            over_refab.append((normalized["dsarp"] - 1.0) * 100.0)
            over_refpb.append(
                (normalized["dsarp"] / normalized["refpb"] - 1.0) * 100.0
            )
        result[density] = {
            "max_refpb": max(over_refpb),
            "gmean_refpb": average_percent_improvement(over_refpb),
            "max_refab": max(over_refab),
            "gmean_refab": average_percent_improvement(over_refab),
        }
    return result


class TestSweepSubsumesLegacyTables:
    def test_table3_identical(self, shared_runner):
        legacy = legacy_table3(shared_runner, TINY_SCALE, core_counts=(2, 4))
        via_sweep = table3_core_count(
            runner=shared_runner, scale=TINY_SCALE, core_counts=(2, 4)
        )
        assert via_sweep == legacy  # exact equality, not approx

    def test_table4_identical(self, shared_runner):
        legacy = legacy_table4(shared_runner, TINY_SCALE, tfaw_values=(10, 20))
        via_sweep = table4_tfaw_sensitivity(
            runner=shared_runner, scale=TINY_SCALE, tfaw_values=(10, 20)
        )
        assert via_sweep == legacy

    def test_table5_identical(self, shared_runner):
        legacy = legacy_table5(shared_runner, TINY_SCALE, subarray_counts=(1, 8))
        via_sweep = table5_subarray_sensitivity(
            runner=shared_runner, scale=TINY_SCALE, subarray_counts=(1, 8)
        )
        assert via_sweep == legacy

    def test_table6_identical(self, shared_runner):
        legacy = legacy_table6(shared_runner, TINY_SCALE)
        via_sweep = table6_refresh_interval(runner=shared_runner, scale=TINY_SCALE)
        assert via_sweep == legacy
