"""Tests for the work-stealing shard queue behind the parallel executor."""

import os
import signal
import time

import pytest

from repro.engine.queue import (
    SHARDS_PER_WORKER,
    JobFailedError,
    ShardDispatcher,
    plan_shards,
)


class FakeJob:
    """Picklable stand-in returning its value; cost is configurable."""

    def __init__(self, value, cost=1.0):
        self.value = value
        self.cost = cost

    def estimated_cost(self):
        return self.cost

    def run(self):
        return self.value


class SleepyJob(FakeJob):
    """Runs for a fixed wall-clock time before returning."""

    def __init__(self, value, duration_s):
        super().__init__(value)
        self.duration_s = duration_s

    def run(self):
        time.sleep(self.duration_s)
        return self.value


class HangingJob(FakeJob):
    """Never finishes inside any reasonable test budget."""

    def run(self):
        time.sleep(600)
        return self.value


class CrashOnceJob(FakeJob):
    """Raises on the first attempt, succeeds once a marker file exists."""

    def __init__(self, value, marker_path):
        super().__init__(value)
        self.marker_path = str(marker_path)

    def run(self):
        if not os.path.exists(self.marker_path):
            with open(self.marker_path, "w") as handle:
                handle.write("attempted")
            raise RuntimeError("transient fault")
        return self.value


class AlwaysFailsJob(FakeJob):
    def run(self):
        raise RuntimeError("permanent fault")


class Stats:
    """Duck-typed ExecutorStats double the dispatcher increments."""

    def __init__(self):
        self.shards = 0
        self.steals = 0
        self.retries = 0
        self.timeouts = 0
        self.worker_failures = 0


def run_dispatcher(jobs, workers=2, collected=None, **kwargs):
    stats = Stats()

    def on_result(slot, result, elapsed_s, attempts):
        if collected is not None:
            collected.append((slot, result, attempts))

    dispatcher = ShardDispatcher(
        workers=workers, stats=stats, on_result=on_result, **kwargs
    )
    results = dispatcher.run(jobs)
    return results, stats


class TestPlanShards:
    def test_empty_batch_plans_nothing(self):
        assert plan_shards([], workers=4) == []

    def test_every_slot_covered_exactly_once(self):
        jobs = [FakeJob(i, cost=1.0 + i) for i in range(17)]
        shards = plan_shards(jobs, workers=3)
        slots = [slot for shard in shards for slot in shard.slots]
        assert sorted(slots) == list(range(17))
        for shard in shards:
            assert shard.jobs == tuple(jobs[slot] for slot in shard.slots)

    def test_shard_count_bounded(self):
        jobs = [FakeJob(i) for i in range(100)]
        assert len(plan_shards(jobs, workers=4)) == 4 * SHARDS_PER_WORKER
        # Never more shards than jobs.
        assert len(plan_shards(jobs[:3], workers=4)) == 3

    def test_plan_is_deterministic(self):
        jobs = [FakeJob(i, cost=(i * 7) % 13 + 1) for i in range(29)]
        first = plan_shards(jobs, workers=4)
        second = plan_shards(jobs, workers=4)
        assert [shard.slots for shard in first] == [shard.slots for shard in second]

    def test_costs_are_balanced(self):
        # 1 heavy job + many light ones: LPT must isolate the heavy job
        # rather than serializing light work behind it.
        jobs = [FakeJob(0, cost=100.0)] + [FakeJob(i, cost=1.0) for i in range(1, 25)]
        shards = plan_shards(jobs, workers=2, shards_per_worker=2)
        heavy = next(shard for shard in shards if 0 in shard.slots)
        assert len(heavy) == 1
        # Heaviest shards dispatch first.
        assert [shard.cost for shard in shards] == sorted(
            (shard.cost for shard in shards), reverse=True
        )

    def test_preferred_workers_round_robin(self):
        jobs = [FakeJob(i) for i in range(16)]
        shards = plan_shards(jobs, workers=4)
        assert [shard.preferred_worker for shard in shards] == [
            shard.shard_id % 4 for shard in shards
        ]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            plan_shards([FakeJob(0)], workers=0)


class TestDispatcher:
    def test_results_aligned_with_batch(self):
        jobs = [FakeJob(f"v{i}") for i in range(10)]
        collected = []
        results, stats = run_dispatcher(jobs, workers=2, collected=collected)
        assert results == [f"v{i}" for i in range(10)]
        assert stats.shards == len(plan_shards(jobs, workers=2))
        assert {slot for slot, _, _ in collected} == set(range(10))
        assert all(attempts == 1 for _, _, attempts in collected)

    def test_single_worker_runs_whole_batch(self):
        jobs = [FakeJob(i) for i in range(5)]
        results, stats = run_dispatcher(jobs, workers=1)
        assert results == list(range(5))
        assert stats.worker_failures == 0

    def test_validates_arguments(self):
        stats = Stats()
        with pytest.raises(ValueError):
            ShardDispatcher(workers=0, stats=stats, on_result=lambda *a: None)
        with pytest.raises(ValueError):
            ShardDispatcher(
                workers=1, stats=stats, on_result=lambda *a: None, max_retries=-1
            )
        with pytest.raises(ValueError):
            ShardDispatcher(
                workers=1, stats=stats, on_result=lambda *a: None, job_timeout=0
            )

    def test_transient_crash_is_retried(self, tmp_path):
        marker = tmp_path / "attempted.flag"
        jobs = [FakeJob("ok0"), CrashOnceJob("recovered", marker), FakeJob("ok2")]
        collected = []
        results, stats = run_dispatcher(
            jobs, workers=2, collected=collected, retry_backoff_s=0.01
        )
        assert results == ["ok0", "recovered", "ok2"]
        assert stats.retries == 1
        retried = next(entry for entry in collected if entry[0] == 1)
        assert retried[2] == 2  # delivered on the second attempt

    def test_permanent_failure_raises_after_drain(self):
        jobs = [FakeJob("ok0"), AlwaysFailsJob("never"), FakeJob("ok2")]
        collected = []
        with pytest.raises(JobFailedError) as excinfo:
            run_dispatcher(
                jobs,
                workers=2,
                collected=collected,
                max_retries=1,
                retry_backoff_s=0.01,
            )
        assert set(excinfo.value.failures) == {1}
        assert "permanent fault" in excinfo.value.failures[1]
        # The healthy jobs still completed and were delivered.
        assert {slot for slot, _, _ in collected} == {0, 2}

    def test_hanging_job_times_out(self):
        jobs = [FakeJob("ok0"), HangingJob("never"), FakeJob("ok2")]
        collected = []
        with pytest.raises(JobFailedError) as excinfo:
            run_dispatcher(
                jobs,
                workers=2,
                collected=collected,
                job_timeout=0.4,
                max_retries=1,
                retry_backoff_s=0.01,
            )
        assert set(excinfo.value.failures) == {1}
        assert "timed out" in excinfo.value.failures[1]
        assert {slot for slot, _, _ in collected} == {0, 2}

    def test_timeout_stats_counted(self):
        stats = Stats()
        dispatcher = ShardDispatcher(
            workers=1,
            stats=stats,
            on_result=lambda *a: None,
            job_timeout=0.3,
            max_retries=1,
            retry_backoff_s=0.01,
        )
        with pytest.raises(JobFailedError):
            dispatcher.run([HangingJob("never")])
        # One timeout per attempt: the original and the single retry.
        assert stats.timeouts == 2
        assert stats.retries == 1
        assert stats.worker_failures == 0  # timeouts are counted separately

    def test_killed_worker_recovers(self):
        jobs = [SleepyJob(i, duration_s=0.2) for i in range(8)]
        stats = Stats()
        state = {"dispatcher": None, "killed": False}

        def on_result(slot, result, elapsed_s, attempts):
            if not state["killed"]:
                pids = state["dispatcher"].worker_pids()
                if pids:
                    state["killed"] = True
                    os.kill(pids[0], signal.SIGKILL)

        dispatcher = ShardDispatcher(
            workers=2, stats=stats, on_result=on_result, retry_backoff_s=0.01
        )
        state["dispatcher"] = dispatcher
        results = dispatcher.run(jobs)
        assert results == list(range(8))
        assert state["killed"]
        assert stats.worker_failures >= 1

    def test_worker_pids_empty_outside_run(self):
        dispatcher = ShardDispatcher(
            workers=2, stats=Stats(), on_result=lambda *a: None
        )
        assert dispatcher.worker_pids() == []
