"""Property-based timing-invariant tests for the DRAM substrate.

An independent :class:`TimingAuditor` replays the raw (cycle, command)
stream a device accepted and re-checks the JEDEC windows from first
principles — tRRD spacing and the four-ACT tFAW window per rank, bank
unavailability during tRFC, REFab rank exclusivity and the LPDDR rule that
REFpb operations never overlap within a rank.  The auditor shares no code
with :meth:`DRAMDevice.can_issue`, so an accounting bug in the device (or a
kernel that skips past a deadline) cannot hide itself.

Two drivers feed it:

* randomized command streams pushed directly through ``Bank``/``Rank``/
  ``Device`` (seeded, with shrinking-style minimal-prefix reporting), and
* full simulations under **both** execution kernels, whose audited command
  streams must additionally be identical command for command.
"""

from __future__ import annotations

import random

import pytest

from repro.config.dram_config import DRAMConfig
from repro.config.presets import paper_system
from repro.dram.commands import Command, CommandType
from repro.dram.device import DRAMDevice
from repro.sim.simulator import Simulator
from repro.workloads.benchmark_suite import get_benchmark
from repro.workloads.mixes import make_workload


class AuditViolation(AssertionError):
    """A timing window was violated by an accepted command."""


class TimingAuditor:
    """Re-derives timing legality from the accepted command stream alone.

    Under SARP a refreshing bank may legally accept ACTIVATEs to other
    subarrays and tFAW/tRRD are inflated (never shortened), so with
    ``sarp`` set the bank/rank exclusivity checks are relaxed while the
    base-window checks — which remain lower bounds — stay on.
    """

    def __init__(self, config: DRAMConfig, sarp: bool = False):
        self.timings = config.timings
        self.sarp = sarp
        #: (channel, rank) -> recent ACT cycles (newest last).
        self.acts: dict[tuple[int, int], list[int]] = {}
        #: (channel, rank, bank) -> refresh busy-until cycle.
        self.bank_refresh_until: dict[tuple[int, int, int], int] = {}
        #: (channel, rank) -> all-bank refresh busy-until cycle.
        self.refab_until: dict[tuple[int, int], int] = {}
        #: (channel, rank) -> per-bank refresh busy-until cycle.
        self.refpb_until: dict[tuple[int, int], int] = {}

    def _fail(self, command: Command, cycle: int, message: str) -> None:
        raise AuditViolation(f"cycle {cycle}: {command!r}: {message}")

    def observe(self, command: Command, cycle: int) -> None:
        timings = self.timings
        kind = command.kind
        rank_key = (command.channel, command.rank)
        bank_key = (command.channel, command.rank, command.bank)

        if not self.sarp:
            # During tRFC the refreshing bank (REFpb) or whole rank (REFab)
            # accepts no commands at all.
            if cycle < self.refab_until.get(rank_key, 0):
                self._fail(command, cycle, "rank is under all-bank refresh (tRFCab)")
            if kind is not CommandType.REFAB and cycle < self.bank_refresh_until.get(
                bank_key, 0
            ):
                self._fail(command, cycle, "bank is under refresh (tRFC)")

        if kind is CommandType.ACT:
            history = self.acts.setdefault(rank_key, [])
            if history:
                # tRRD: minimum spacing between ACTs in a rank.  The SARP
                # inflation only lengthens the true constraint, so the base
                # value stays a sound lower bound.
                if cycle - history[-1] < timings.tRRD:
                    self._fail(
                        command,
                        cycle,
                        f"tRRD violated (previous ACT at {history[-1]})",
                    )
            if len(history) >= 4 and cycle - history[-4] < timings.tFAW:
                self._fail(
                    command,
                    cycle,
                    f"tFAW violated (four ACTs since {history[-4]})",
                )
            history.append(cycle)
            del history[:-4]
        elif kind is CommandType.REFAB:
            duration = command.duration or timings.tRFCab
            if cycle < self.refpb_until.get(rank_key, 0):
                self._fail(command, cycle, "REFab during an ongoing REFpb")
            self.refab_until[rank_key] = cycle + duration
        elif kind is CommandType.REFPB:
            duration = command.duration or timings.tRFCpb
            # LPDDR: REFpb operations may not overlap within a rank.
            if cycle < self.refpb_until.get(rank_key, 0):
                self._fail(command, cycle, "overlapping REFpb within the rank")
            if cycle < self.refab_until.get(rank_key, 0):
                self._fail(command, cycle, "REFpb during an all-bank refresh")
            self.refpb_until[rank_key] = cycle + duration
            self.bank_refresh_until[bank_key] = cycle + duration


# ---------------------------------------------------------------------------
# Randomized direct command streams (with minimal-prefix shrinking)
# ---------------------------------------------------------------------------
KINDS = ("act", "rd", "wr", "pre", "refab", "refpb")
KIND_MAP = {
    "act": CommandType.ACT,
    "rd": CommandType.RDA,
    "wr": CommandType.WRA,
    "pre": CommandType.PRE,
    "refab": CommandType.REFAB,
    "refpb": CommandType.REFPB,
}


def drive_random_stream(
    seed: int,
    steps: int = 400,
    sarp: bool = False,
    max_steps: int | None = None,
) -> list[tuple[int, Command]]:
    """Push a seeded random command stream through a device.

    Every command the device *accepts* is audited; the accepted stream is
    returned so failures can be shrunk.  ``max_steps`` truncates the drive
    for minimal-prefix shrinking.
    """
    rng = random.Random(seed)
    config = DRAMConfig.for_density(8)
    device = DRAMDevice(config, sarp_enabled=sarp)
    auditor = TimingAuditor(config, sarp=sarp)
    accepted: list[tuple[int, Command]] = []
    cycle = 0
    limit = steps if max_steps is None else min(steps, max_steps)
    org = config.organization
    for _ in range(limit):
        cycle += rng.randrange(1, 30)
        channel = rng.randrange(org.channels)
        rank = rng.randrange(org.ranks_per_channel)
        bank = rng.randrange(org.banks_per_rank)
        kind = KIND_MAP[rng.choice(KINDS)]
        row = rng.randrange(org.rows_per_bank)
        open_row = device.bank(channel, rank, bank).open_row
        if kind.is_column and open_row is not None:
            row = open_row
        command = Command(kind=kind, channel=channel, rank=rank, bank=bank, row=row)
        if device.can_issue(command, cycle):
            auditor.observe(command, cycle)
            device.issue(command, cycle)
            accepted.append((cycle, command))
    return accepted


def shrink_failure(seed: int, steps: int, sarp: bool) -> str:
    """Minimal-prefix shrink of a failing seed, for the failure report.

    Replays ever-shorter prefixes of the same seeded stream to find the
    smallest step count that still violates, then reports the seed, the
    minimal length, and the tail of the offending accepted stream — enough
    to reproduce with ``drive_random_stream(seed, max_steps=n)``.
    """
    low, high = 1, steps
    while low < high:
        mid = (low + high) // 2
        try:
            drive_random_stream(seed, steps=steps, sarp=sarp, max_steps=mid)
        except AuditViolation:
            high = mid
        else:
            low = mid + 1
    try:
        drive_random_stream(seed, steps=steps, sarp=sarp, max_steps=low)
    except AuditViolation as error:
        tail = drive_random_stream(seed, steps=steps, sarp=sarp, max_steps=low - 1)[-5:]
        return (
            f"seed={seed} minimal_steps={low} violation={error}\n"
            f"  last accepted commands before the violation: {tail}"
        )
    return f"seed={seed}: violation did not reproduce during shrinking"


@pytest.mark.parametrize("sarp", [False, True], ids=["strict", "sarp"])
def test_random_streams_never_violate_timing_windows(sarp):
    for seed in range(20):
        try:
            accepted = drive_random_stream(seed, sarp=sarp)
        except AuditViolation:
            pytest.fail(shrink_failure(seed, steps=400, sarp=sarp))
        # Sanity: the stream exercised the device (not vacuously empty).
        assert accepted


# ---------------------------------------------------------------------------
# Full simulations under either kernel
# ---------------------------------------------------------------------------
def audited_run(kernel: str, mechanism: str, seed: int = 0):
    """Run a small simulation with every issued command audited.

    Returns the accepted (cycle, command summary) stream so the two
    kernels can additionally be compared command for command.
    """
    config = paper_system(
        density_gb=32, mechanism=mechanism, num_cores=2
    ).with_kernel(kernel)
    workload = make_workload(
        [get_benchmark("random_access"), get_benchmark("stream_copy")],
        name="audit",
        seed=seed,
    )
    simulator = Simulator(config, workload)
    device = simulator.memory.device
    auditor = TimingAuditor(config.dram, sarp=device.sarp_enabled)
    stream: list[tuple] = []
    original_issue = device.issue

    def issue(command, cycle):
        auditor.observe(command, cycle)
        stream.append(
            (cycle, command.kind.name, command.channel, command.rank, command.bank)
        )
        return original_issue(command, cycle)

    device.issue = issue
    simulator.run(1500, warmup=300)
    return stream


@pytest.mark.parametrize("mechanism", ["refab", "refpb", "darp", "dsarp"])
def test_simulated_streams_identical_and_legal_under_both_kernels(mechanism):
    cycle_stream = audited_run("cycle", mechanism)
    event_stream = audited_run("event", mechanism)
    # The auditor already raised on any window violation; on top of that
    # the two kernels must issue the exact same commands at the same
    # cycles — a stronger property than equal result dicts.
    assert event_stream == cycle_stream
    assert cycle_stream
